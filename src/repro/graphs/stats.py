"""Graph statistics used for dataset validation and reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a friendship graph."""

    nodes: int
    edges: int
    average_degree: float
    median_degree: float
    max_degree: int
    degree_gini: float
    clustering_sample: float

    def as_row(self) -> Tuple[int, int, float]:
        """The Table-3 view: (nodes, edges, average degree)."""
        return (self.nodes, self.edges, round(self.average_degree, 2))


def _gini(values: np.ndarray) -> float:
    """Gini coefficient — our scalar proxy for degree heavy-tailedness."""
    if len(values) == 0:
        return 0.0
    sorted_values = np.sort(values.astype(float))
    n = len(sorted_values)
    cumulative = np.cumsum(sorted_values)
    if cumulative[-1] == 0:
        return 0.0
    return float((n + 1 - 2 * np.sum(cumulative) / cumulative[-1]) / n)


def graph_stats(graph: nx.Graph, clustering_sample_size: int = 500, seed: int = 0) -> GraphStats:
    """Compute :class:`GraphStats`; clustering is estimated on a node sample
    because exact clustering on 90k-node graphs is needlessly slow."""
    degrees = np.array([d for _, d in graph.degree()], dtype=int)
    rng = np.random.default_rng(seed)
    if graph.number_of_nodes() > clustering_sample_size:
        sample_nodes = rng.choice(
            np.array(graph.nodes), size=clustering_sample_size, replace=False
        )
        clustering = nx.average_clustering(graph, nodes=list(sample_nodes))
    elif graph.number_of_nodes() > 0:
        clustering = nx.average_clustering(graph)
    else:
        clustering = 0.0
    return GraphStats(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        average_degree=float(degrees.mean()) if len(degrees) else 0.0,
        median_degree=float(np.median(degrees)) if len(degrees) else 0.0,
        max_degree=int(degrees.max()) if len(degrees) else 0,
        degree_gini=_gini(degrees),
        clustering_sample=float(clustering),
    )


def degree_ccdf(graph: nx.Graph) -> List[Tuple[int, float]]:
    """Complementary CDF of the degree distribution, for tail inspection."""
    degrees = sorted((d for _, d in graph.degree()), reverse=True)
    n = len(degrees)
    if n == 0:
        return []
    ccdf = []
    unique = sorted(set(degrees))
    degrees_array = np.array(degrees)
    for k in unique:
        ccdf.append((k, float(np.mean(degrees_array >= k))))
    return ccdf
