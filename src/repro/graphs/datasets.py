"""Synthetic stand-ins for the paper's three evaluation datasets.

Table 3 of the paper:

========== ======== =========== ===========
Dataset    Nodes    Edges       Avg. degree
========== ======== =========== ===========
Facebook   90,269   3,646,662   40.40
Epinions   75,879     508,837    6.71
Slashdot   82,169     948,464   11.54
========== ======== =========== ===========

Table 3 follows the SNAP convention of counting *directed* edges: the
average degree column equals ``edges / nodes`` (e.g. 508,837 / 75,879 =
6.71), and friendship being mutual means each social link contributes two
directed edges.  The simulator works on undirected friendship graphs, so the
generators target ``edges / 2`` undirected links — giving every node the
Table-3 average *friend count* — via the Holme–Kim power-law cluster model,
then top up / trim random edges to hit the exact target.  ``scale`` shrinks
both counts proportionally (average degree is preserved), which is how the
default benchmarks stay laptop-sized; ``scale=1.0`` regenerates the
full-size graphs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Shape of one evaluation dataset."""

    name: str
    nodes: int
    #: Directed edge count as published in Table 3 (SNAP convention).
    edges: int
    #: Triangle-closure probability for the Holme-Kim generator; higher for
    #: the friendship graph (Facebook) than for the trust/interaction graphs.
    triangle_probability: float

    @property
    def average_degree(self) -> float:
        """Table 3's average degree: directed edges per node (= friend count)."""
        return self.edges / self.nodes

    @property
    def undirected_edges(self) -> int:
        """The number of mutual friendship links the generator targets."""
        return self.edges // 2


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "facebook": DatasetSpec("facebook", 90_269, 3_646_662, 0.30),
    "epinions": DatasetSpec("epinions", 75_879, 508_837, 0.10),
    "slashdot": DatasetSpec("slashdot", 82_169, 948_464, 0.10),
}


def _adjust_edge_count(graph: nx.Graph, target_edges: int, rng: random.Random) -> None:
    """Add or remove random edges until the graph has exactly the target.

    Removal never disconnects degree-1 nodes (every user keeps at least one
    friend, matching the connected crawls the paper uses).
    """
    nodes = list(graph.nodes)
    # Track the edge count locally: graph.number_of_edges() is O(E) in
    # networkx, which made this loop quadratic at full WOSN scale
    # (3.6M edges).  The RNG draw sequence is unchanged.
    edge_count = graph.number_of_edges()
    while edge_count < target_edges:
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            edge_count += 1
    if edge_count > target_edges:
        removable = [
            (u, v)
            for u, v in graph.edges
            if graph.degree[u] > 1 and graph.degree[v] > 1
        ]
        rng.shuffle(removable)
        for u, v in removable:
            if edge_count <= target_edges:
                break
            if graph.degree[u] > 1 and graph.degree[v] > 1:
                graph.remove_edge(u, v)
                edge_count -= 1


def generate_dataset(name: str, scale: float = 1.0, seed: int = 0) -> nx.Graph:
    """Generate the synthetic graph for dataset ``name`` at ``scale``.

    The result is relabeled to contiguous integer node ids ``0..n-1`` and
    carries ``graph.graph["dataset"]`` / ``["scale"]`` metadata.
    """
    spec = DATASET_SPECS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")

    n = max(20, round(spec.nodes * scale))
    target_edges = max(n, round(spec.undirected_edges * scale))
    # Holme-Kim attaches m edges per new node, so total edges ~ m * n:
    # m ~ undirected average degree / 2 = Table-3 average degree / 2.
    m = max(1, min(n - 1, round(spec.average_degree / 2.0)))

    rng = random.Random(seed)
    graph = nx.powerlaw_cluster_graph(
        n=n, m=m, p=spec.triangle_probability, seed=rng.randrange(2**32)
    )
    _adjust_edge_count(graph, target_edges, rng)

    graph = nx.convert_node_labels_to_integers(graph)
    graph.graph["dataset"] = spec.name
    graph.graph["scale"] = scale
    return graph


def generate_scale_free(
    n: int, avg_degree: float = 12.0, seed: int = 0
) -> np.ndarray:
    """Deterministic Barabási–Albert scale-free edge list.

    The Table-3 generators go through networkx's Holme–Kim model, whose
    per-node Python objects cap out far below the roadmap's 1M-node
    target.  This generator keeps pure preferential attachment but works
    on preallocated int64 arrays — ~16 bytes per edge, no graph objects —
    so a million-node graph is a seconds-scale operation (the standing
    ``synth_graph`` benchmark tracks exactly that).

    Returns an ``(E, 2)`` int64 array of undirected edges over nodes
    ``0..n-1``; every new node attaches ``m = round(avg_degree / 2)``
    edges to endpoints sampled proportionally to their current degree.
    Same ``(n, avg_degree, seed)`` → byte-identical edge array.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    m = max(1, min(n - 1, round(avg_degree / 2.0)))
    rng = random.Random(seed)

    n_new = n - m
    edges = np.empty((m * n_new, 2), dtype=np.int64)
    #: Flat endpoint pool: every edge contributes both endpoints, so a
    #: uniform draw from the pool IS degree-proportional sampling.
    pool = np.empty(2 * m * n_new, dtype=np.int64)
    targets = np.arange(m, dtype=np.int64)
    pool_len = 0
    edge_count = 0
    for source in range(m, n):
        edges[edge_count : edge_count + m, 0] = source
        edges[edge_count : edge_count + m, 1] = targets
        edge_count += m
        pool[pool_len : pool_len + m] = targets
        pool_len += m
        pool[pool_len : pool_len + m] = source
        pool_len += m
        if source + 1 == n:
            break
        chosen: set = set()
        while len(chosen) < m:
            chosen.add(int(pool[rng.randrange(pool_len)]))
        # Sorted for determinism: set iteration order is hash-dependent.
        targets = np.fromiter(sorted(chosen), dtype=np.int64, count=m)
    return edges[:edge_count]


def scale_free_graph(n: int, avg_degree: float = 12.0, seed: int = 0) -> nx.Graph:
    """The :func:`generate_scale_free` edge list as a simulator-ready
    :class:`networkx.Graph` with the usual dataset metadata."""
    edges = generate_scale_free(n, avg_degree=avg_degree, seed=seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges.tolist())
    graph.graph["dataset"] = "synthetic"
    graph.graph["scale"] = 1.0
    return graph


def table3_rows(scale: float = 1.0, seed: int = 0) -> List[Tuple[str, int, int, float]]:
    """Regenerate Table 3: (dataset, nodes, edges, average degree).

    Edge counts and average degrees follow the paper's directed-edge
    convention (edges = 2 × mutual links; average degree = edges / nodes).
    At ``scale=1.0`` the spec numbers are reported directly (the generators
    hit them by construction); at smaller scales the generated graphs are
    measured so the row reflects what the experiments actually use.
    """
    rows = []
    for name, spec in sorted(DATASET_SPECS.items()):
        if scale == 1.0:
            rows.append((spec.name, spec.nodes, spec.edges, round(spec.average_degree, 2)))
        else:
            graph = generate_dataset(name, scale=scale, seed=seed)
            directed_edges = 2 * graph.number_of_edges()
            rows.append(
                (
                    spec.name,
                    graph.number_of_nodes(),
                    directed_edges,
                    round(directed_edges / graph.number_of_nodes(), 2),
                )
            )
    return rows
