"""Graph down-sampling for laptop-scale experiment runs.

Random-node induced subgraphs destroy the degree distribution's tail, so
:func:`sample_subgraph` uses a random-walk (respondent-driven) sampler that
preferentially keeps hubs, preserving the heavy-tailed shape the mirror
selection exploits.  All samples are reduced to their largest connected
component so every node can learn about others through contacts.
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx


def largest_component(graph: nx.Graph) -> nx.Graph:
    """The induced subgraph on the largest connected component, relabeled."""
    if graph.number_of_nodes() == 0:
        return graph.copy()
    component = max(nx.connected_components(graph), key=len)
    sub = graph.subgraph(component).copy()
    sub = nx.convert_node_labels_to_integers(sub)
    sub.graph.update(graph.graph)
    return sub


def sample_subgraph(
    graph: nx.Graph,
    target_nodes: int,
    seed: int = 0,
    restart_probability: float = 0.15,
) -> nx.Graph:
    """Random-walk sample of ``target_nodes`` nodes from ``graph``.

    A walk with restarts visits nodes proportionally to degree (hub-biased),
    collecting distinct nodes until the target is reached; the induced
    subgraph's largest component is returned.  Deterministic for a fixed
    ``seed``.
    """
    if target_nodes <= 0:
        raise ValueError(f"target_nodes must be positive, got {target_nodes}")
    if target_nodes >= graph.number_of_nodes():
        return largest_component(graph)

    rng = random.Random(seed)
    nodes = list(graph.nodes)
    start = rng.choice(nodes)
    visited = {start}
    current = start
    stall_budget = 50 * target_nodes  # bail out on pathological graphs
    steps = 0
    while len(visited) < target_nodes and steps < stall_budget:
        steps += 1
        neighbors = list(graph.neighbors(current))
        if not neighbors or rng.random() < restart_probability:
            current = rng.choice(nodes)
        else:
            current = rng.choice(neighbors)
        visited.add(current)

    sample = graph.subgraph(visited).copy()
    sample.graph.update(graph.graph)
    sample.graph["sampled_from"] = graph.number_of_nodes()
    return largest_component(sample)
