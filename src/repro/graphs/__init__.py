"""Social graphs for the SOUP evaluation.

The paper evaluates on three real-world datasets (Table 3): the WOSN'09
Facebook graph (90,269 nodes / 3,646,662 edges), SNAP Epinions (75,879 /
508,837) and SNAP Slashdot (82,169 / 948,464).  Those crawls are not
redistributable here, so :mod:`repro.graphs.datasets` generates synthetic
graphs matching each dataset's node count, edge count and heavy-tailed
degree shape — the only graph properties the simulation consumes.  A loader
for the real edge lists (:mod:`repro.graphs.loader`) is provided for users
who have the files.
"""

from repro.graphs.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    generate_dataset,
    table3_rows,
)
from repro.graphs.loader import load_edge_list
from repro.graphs.sampling import largest_component, sample_subgraph
from repro.graphs.stats import GraphStats, graph_stats

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "generate_dataset",
    "table3_rows",
    "load_edge_list",
    "largest_component",
    "sample_subgraph",
    "GraphStats",
    "graph_stats",
]
