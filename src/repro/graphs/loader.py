"""Loader for real SNAP/WOSN edge lists.

If a user of this reproduction has the original dataset files (e.g.
``soc-Epinions1.txt`` from the Stanford SNAP collection), this loader turns
them into the undirected friendship graphs the simulator consumes.  Directed
trust edges (Epinions, Slashdot) are symmetrized, matching the paper's use
of them as social graphs.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

import networkx as nx


def load_edge_list(path: Union[str, Path], comment_prefix: str = "#") -> nx.Graph:
    """Load a whitespace-separated edge list into an undirected graph.

    Supports plain text and ``.gz`` files.  Self-loops are dropped; node ids
    are relabeled to contiguous integers.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"edge list not found: {path}")

    opener = gzip.open if path.suffix == ".gz" else open
    graph = nx.Graph()
    with opener(path, "rt") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comment_prefix):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line in {path}: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u != v:
                graph.add_edge(u, v)

    graph = nx.convert_node_labels_to_integers(graph)
    graph.graph["dataset"] = path.stem
    graph.graph["scale"] = 1.0
    return graph
