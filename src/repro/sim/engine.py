"""The epoch-based SOUP replication simulator (paper Sec. 5).

The simulator executes the real protocol objects from :mod:`repro.core` —
knowledge bases, experience sets, Eq. (1), Algorithm 1, protective dropping
— over a node population whose behaviour follows Sec. 5.1's models:
power-law online times with diurnal patterns, asynchronous joins,
exponentially decaying activity, and Gaussian storage.

Time advances in epochs (default: one hour).  Within an epoch, online nodes
interact: they contact other nodes (harvesting bootstrap recommendations)
and request friends' profiles from the friends' announced mirrors, recording
per-mirror success/failure into experience sets.  At the end of every
selection round (default: daily), nodes exchange experience sets with their
friends, apply Eq. (1), run Algorithm 1, place/withdraw replicas (subject to
protective dropping at the mirrors) and publish their new mirror sets.

Availability is measured every epoch as the fraction of joined benign users
whose data is reachable: the user is online, or some node that actually
stores their replica is online.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.obs import MetricsRegistry, get_tracer, pop_registry, push_registry
from repro.obs.analysis import (
    AnomalyConfig,
    detect_churn_storms,
    detect_mirror_flapping,
    detect_repair_loops,
)
from repro.obs.profiling import PROFILER

from repro.behavior.activity import ActivityModel
from repro.behavior.capacity import sample_capacities
from repro.behavior.churn import join_epochs, top_online_nodes
from repro.behavior.online import OnlineModel, sample_timezones
from repro.core.config import SoupConfig
from repro.core.dropping import ReplicaStore
from repro.core.knowledge import KnowledgeBase
from repro.core.ranking import BootstrapRanker, Recommendation, RegularRanker
from repro.core.selection import select_mirrors
from repro.core.experience import ExperienceReport, ExperienceSet
from repro.graphs.datasets import generate_dataset
from repro.sim import invariants as invariants_mod
from repro.sim.attacks import FloodingAttack, SlanderAttack
from repro.sim.faults import FaultInjector
from repro.sim.invariants import InvariantChecker
from repro.sim.metrics import ReliabilityMetrics, SimulationResult
from repro.sim.scenario import OnlineDistribution, ScenarioConfig, sample_distribution

logger = logging.getLogger("repro.sim.engine")


@dataclass
class _NodeState:
    """Full per-node protocol state."""

    node_id: int
    friends: List[int]
    kb: KnowledgeBase
    bootstrap: BootstrapRanker
    ranker: RegularRanker
    store: ReplicaStore
    #: ES_u(w) for each friend w, accumulated between exchanges.
    experience_sets: Dict[int, ExperienceSet] = field(default_factory=dict)
    #: Reports received from friends about *my* mirrors, pending ingestion.
    pending_reports: List[ExperienceReport] = field(default_factory=list)
    #: The mirror set Algorithm 1 last chose.
    selected_mirrors: List[int] = field(default_factory=list)
    #: The mirror set published in the directory (announced).
    announced_mirrors: List[int] = field(default_factory=list)
    #: Mirrors that rejected our storage request last round (excluded once).
    rejected_by: Set[int] = field(default_factory=set)
    #: Selected mirrors that were offline at selection time; the replica
    #: push is retried whenever owner and mirror are online together.
    pending_placements: Set[int] = field(default_factory=set)
    #: Mirrors the failure detector declared dead (repair runs only);
    #: excluded from selection until observed online again.
    dead_mirrors: Set[int] = field(default_factory=set)
    #: Consecutive silent epochs per announced mirror (suspicion levels).
    mirror_suspicion: Dict[int, int] = field(default_factory=dict)
    #: ε estimate of the last selection; above the configured target the
    #: node is running on a *partial* mirror set.
    last_estimated_error: Optional[float] = None
    joined: bool = False
    departed: bool = False
    join_epoch: int = 0
    is_altruist: bool = False
    is_slanderer: bool = False
    is_sybil: bool = False
    is_traitor: bool = False
    has_experience: bool = False

    def experience_set_for(self, friend: int) -> ExperienceSet:
        es = self.experience_sets.get(friend)
        if es is None:
            es = ExperienceSet(observed_friend=friend)
            self.experience_sets[friend] = es
        return es


class SoupSimulation:
    """One simulation run over a friendship graph."""

    def __init__(self, graph: nx.Graph, config: ScenarioConfig) -> None:
        self.config = config
        self.soup = config.soup
        self.rng = random.Random(config.seed)
        self.np_rng = np.random.default_rng(config.seed)

        base_n = graph.number_of_nodes()
        self.n_base = base_n
        self.n_altruists = int(round(base_n * config.altruist_fraction))
        self.n_sybils = int(round(base_n * config.sybil_fraction))
        self.n_traitors = int(round(base_n * config.traitor_fraction))
        self.n_total = base_n + self.n_altruists + self.n_sybils + self.n_traitors

        #: Columnar hot path: membership flags mirrored into packed numpy
        #: arrays so the per-epoch passes (join activation, benign mask,
        #: reachability, interaction ages) are vector ops instead of
        #: full-population Python loops, and per-node rankers keep their
        #: aged counters in packed arrays.  The arrays shadow the per-node
        #: flags bit-for-bit — every transition funnels through
        #: :meth:`note_departed` / :meth:`_activate_joins` — and the
        #: reference mode keeps the original traversals, which the
        #: equivalence suite holds byte-identical to this path.
        self._columnar = config.engine_mode == "columnar"

        self._build_population(graph)
        self._build_online_matrix()
        self._build_attacks()
        self._build_architecture()

        self._col_joined = np.array([n.joined for n in self.nodes], dtype=bool)
        self._col_departed = np.array([n.departed for n in self.nodes], dtype=bool)
        self._col_benign = np.array(
            [not (n.is_sybil or n.is_traitor) for n in self.nodes], dtype=bool
        )
        self._col_join_epochs = np.array(
            [n.join_epoch for n in self.nodes], dtype=np.int64
        )

        #: mirror -> set of owners whose replica it currently stores
        #: (ground truth; kept in sync with every ReplicaStore).
        self.replica_locations: Dict[int, Set[int]] = {
            node_id: set() for node_id in range(self.n_total)
        }
        self._pair_owners = np.zeros(0, dtype=np.int64)
        self._pair_mirrors = np.zeros(0, dtype=np.int64)

        self.result = SimulationResult(
            n_nodes=self.n_total,
            n_epochs=config.n_epochs,
            epochs_per_day=config.epochs_per_day,
        )
        self._drops_this_round = 0
        self._placements_this_round = 0
        self._served_this_epoch: Dict[int, int] = {}

        #: owner -> mirrors that dropped the owner's replica since the
        #: owner's last selection round.  The owner still announces them
        #: (it has not been told), which the invariant checker must not
        #: confuse with a genuinely lost transfer.
        self._stale_announced: Dict[int, Set[int]] = {}
        #: Optional fault-injection plan (deterministic; see repro.sim.faults).
        self.faults = FaultInjector.from_spec(config.faults, base_seed=config.seed)
        #: Reliability-layer counters (repair runs only).
        if config.repair:
            self.result.reliability = ReliabilityMetrics()
        #: owner -> epoch its replica set first fell into deficit (a mirror
        #: declared dead); cleared when fully restored, yielding the repair
        #: latency samples.
        self._deficit_since: Dict[int, int] = {}
        #: Optional per-epoch runtime invariant checker.
        self.invariant_checker: Optional[InvariantChecker] = (
            InvariantChecker(config.invariant_names)
            if (config.check_invariants or invariants_mod.FORCE_CHECKS)
            else None
        )
        #: Per-run metrics registry, installed as current for the duration
        #: of :meth:`run` and snapshotted per epoch into the result.
        self.metrics = MetricsRegistry()
        self._tracer = get_tracer()
        #: Per-owner count of epochs the owner's data was unreachable —
        #: the same flags the availability metric averages, so the trace
        #: analyzer's attribution table reconciles exactly against it.
        self._owner_unavailable_epochs = np.zeros(self.n_total, dtype=np.int64)
        #: In-engine event streams for the anomaly rules shared with
        #: repro.obs.analysis (repair loops, churn storms, flapping).
        self.anomaly_config = AnomalyConfig()
        self._repair_epochs_by_owner: Dict[int, List[int]] = {}
        self._drops_by_epoch: Dict[int, int] = {}
        self._mirror_toggles: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # invariant bookkeeping
    # ------------------------------------------------------------------
    def _trace_drop(self, owner: int, mirror: int, reason: str, epoch: int) -> None:
        self._drops_by_epoch[epoch] = self._drops_by_epoch.get(epoch, 0) + 1
        if self._tracer.enabled:
            self._tracer.emit(
                "replica_dropped", owner=owner, mirror=mirror,
                reason=reason, epoch=epoch,
            )

    def mark_stale_announcement(self, owner: int, mirror: int) -> None:
        """Record that ``mirror`` dropped ``owner``'s replica before the
        owner could rebuild its announced set."""
        self._stale_announced.setdefault(owner, set()).add(mirror)

    def note_departed(self, node_id: int) -> None:
        """Mark a node departed, keeping the columnar flags in sync.

        Every departure — scheduled mass departure or injected crash —
        must go through here rather than writing ``node.departed``
        directly, or the packed arrays the columnar mode measures from
        would silently disagree with the object state."""
        self.nodes[node_id].departed = True
        self._col_departed[node_id] = True
        if self.dht_probe is not None:
            self.dht_probe.on_depart(node_id)

    def stale_announcements_of(self, owner: int) -> Set[int]:
        return self._stale_announced.get(owner, set())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_population(self, graph: nx.Graph) -> None:
        config = self.config
        base_n = self.n_base

        probabilities = sample_distribution(
            config.online_distribution, base_n, self.np_rng
        )
        altruist_p = np.ones(self.n_altruists)
        # Sybils keep a solid online presence to press the attack.
        sybil_p = np.full(self.n_sybils, 0.5)
        # Traitors offer "exceptional online time" — until they vanish.
        traitor_p = np.ones(self.n_traitors)
        self.online_probabilities = np.concatenate(
            [probabilities, altruist_p, sybil_p, traitor_p]
        )

        self.timezones = sample_timezones(self.n_total, self.np_rng)
        capacities = sample_capacities(
            self.n_total,
            self.np_rng,
            median_profiles=self.soup.storage_median_profiles,
            sigma_profiles=self.soup.storage_sigma_profiles,
            min_profiles=self.soup.storage_min_profiles,
        )
        # Altruistic nodes contribute server-class storage (Sec. 5.2.4).
        capacities[base_n : base_n + self.n_altruists] = (
            10 * self.soup.storage_median_profiles
        )
        # Traitors bait selection with "exceptional storage capacities".
        first_traitor = base_n + self.n_altruists + self.n_sybils
        capacities[first_traitor:] = 10 * self.soup.storage_median_profiles
        #: Sampled storage capacities (profiles) — architecture strategies
        #: read these for slot accounting and elections.
        self.capacities = capacities

        self.nodes: List[_NodeState] = []
        for node_id in range(self.n_total):
            friends = (
                sorted(graph.neighbors(node_id)) if node_id < base_n else []
            )
            kb = KnowledgeBase(owner=node_id, default_ttl=self.soup.kb_ttl)
            for friend in friends:
                kb.add_node(friend, is_friend=True)
            state = _NodeState(
                node_id=node_id,
                friends=friends,
                kb=kb,
                bootstrap=BootstrapRanker(self.soup),
                ranker=RegularRanker(kb, self.soup, columnar=self._columnar),
                store=ReplicaStore(node_id, float(capacities[node_id]), self.soup),
                is_altruist=base_n <= node_id < base_n + self.n_altruists,
                is_sybil=base_n + self.n_altruists
                <= node_id
                < first_traitor,
                is_traitor=node_id >= first_traitor,
            )
            self.nodes.append(state)

        # Sybils befriend each other (cheap) but not honest nodes — "malicious
        # identities usually have difficulties establishing social
        # connections to regular nodes" (Sec. 4.6).
        sybil_ids = [n.node_id for n in self.nodes if n.is_sybil]
        for sybil in sybil_ids:
            others = [s for s in sybil_ids if s != sybil]
            picks = self.rng.sample(others, min(5, len(others)))
            state = self.nodes[sybil]
            state.friends = picks
            for pick in picks:
                state.kb.add_node(pick, is_friend=True)

        # Join schedule: base nodes and sybils join inside the bootstrap
        # window; altruists appear at their configured day (Fig. 8).
        window = max(1, int(config.join_window_days * config.epochs_per_day))
        joins = join_epochs(self.online_probabilities, window, self.np_rng)
        altruist_epoch = min(
            config.n_epochs - 1,
            int(config.altruist_join_day * config.epochs_per_day),
        )
        for node in self.nodes:
            node.join_epoch = (
                altruist_epoch if node.is_altruist else int(joins[node.node_id])
            )

        self.benign_ids = np.array(
            [n.node_id for n in self.nodes if not (n.is_sybil or n.is_traitor)],
            dtype=np.int64,
        )

    def _build_online_matrix(self) -> None:
        config = self.config
        model = OnlineModel(
            base_probabilities=self.online_probabilities,
            timezone_offsets=self.timezones,
            epoch_hours=24.0 / config.epochs_per_day,
            mean_session_epochs=config.mean_session_epochs,
        )
        self.online_matrix = model.generate_matrix(config.n_epochs, self.np_rng)

        # Mass departure (Fig. 9): the top-d nodes by online time go dark.
        if config.departure_fraction > 0.0:
            departure_epoch = int(config.departure_day * config.epochs_per_day)
            departing = top_online_nodes(
                self.online_probabilities[: self.n_base], config.departure_fraction
            )
            self.departure_epoch = departure_epoch
            self.departing_ids = set(departing)
            for node_id in departing:
                self.online_matrix[node_id, departure_epoch:] = False
        else:
            self.departure_epoch = None
            self.departing_ids = set()

        # Traitor betrayal (Sec. 4.4): perfect availability until the
        # betrayal day, then gone for good.
        if self.n_traitors > 0:
            betrayal_epoch = min(
                config.n_epochs - 1,
                int(config.betrayal_day * config.epochs_per_day),
            )
            self.betrayal_epoch = betrayal_epoch
            first_traitor = self.n_base + self.n_altruists + self.n_sybils
            self.online_matrix[first_traitor:, betrayal_epoch:] = False
        else:
            self.betrayal_epoch = None

        # Mask epochs before each node joins.
        for node in self.nodes:
            if node.join_epoch > 0:
                self.online_matrix[node.node_id, : node.join_epoch] = False

    def _build_attacks(self) -> None:
        config = self.config
        self.slander: Optional[SlanderAttack] = None
        if config.slander_fraction > 0.0:
            count = int(round(self.n_base * config.slander_fraction))
            attacker_ids = set(
                self.rng.sample(range(self.n_base), min(count, self.n_base))
            )
            self.slander = SlanderAttack(attacker_ids=attacker_ids)
            for attacker in attacker_ids:
                self.nodes[attacker].is_slanderer = True

        self.flooding: Optional[FloodingAttack] = None
        if self.n_sybils > 0:
            sybil_ids = {
                n.node_id for n in self.nodes if n.is_sybil
            }
            self.flooding = FloodingAttack(
                sybil_ids=sybil_ids, flood_requests=config.sybil_flood_requests
            )

        # Tie-strength extension (Sec. 8): per-edge strengths; attacker
        # edges (infiltration) are weak, per the sybil-defense literature.
        self.ties = None
        if config.use_tie_strength:
            from repro.extensions.ties import TieStrengthModel

            attacker_ids = (
                set(self.slander.attacker_ids) if self.slander is not None else set()
            )
            edges = {
                (node.node_id, friend)
                for node in self.nodes
                for friend in node.friends
                if node.node_id < friend
            }
            self.ties = TieStrengthModel()
            self.ties.assign(edges, self.np_rng, attacker_ids=attacker_ids)

    def _build_architecture(self) -> None:
        """Instantiate the configured architecture (repro.arch).

        The default ``"soup"`` run with ``measure_dht=False`` binds
        *nothing*: every per-epoch hook below stays behind an
        ``is not None`` check that is False, the strategies draw no RNG,
        and the equivalence suite keeps the path byte-identical.
        """
        config = self.config
        self.arch = None
        self.dht_probe = None
        self._selection_strategy = None
        self._read_path = None
        if config.architecture == "soup" and not config.measure_dht:
            return
        from repro.arch import create_architecture
        from repro.arch.dhtprobe import DhtProbe

        self.arch = create_architecture(config.architecture, config)
        self._selection_strategy = self.arch.selection
        self._read_path = self.arch.read_path
        overlay_strategies = (
            self.arch.placement is not None or self.arch.routing is not None
        )
        # DHT-layer strategies are measured *on* the probe ring, so an
        # architecture that overrides placement/routing implies the probe.
        if config.measure_dht or overlay_strategies:
            self.dht_probe = DhtProbe(self.arch)
        if overlay_strategies:
            friends_of = {
                node.node_id: node.friends
                for node in self.nodes
                if node.node_id < self.n_base
            }
            for strategy in (self.arch.placement, self.arch.routing):
                if strategy is not None:
                    strategy.bind_social_graph(friends_of, self.dht_probe.dht_id)

    # ------------------------------------------------------------------
    # architecture view (read-only helpers for repro.arch strategies)
    # ------------------------------------------------------------------
    def observed_uptime(self, epoch: int) -> np.ndarray:
        """Per-node fraction of epochs spent online through ``epoch``."""
        return self.online_matrix[:, : epoch + 1].mean(axis=1)

    def is_electable(self, node_id: int) -> bool:
        """Joined, benign, not departed — eligible for super-peer duty."""
        return bool(
            self._col_joined[node_id]
            and not self._col_departed[node_id]
            and self._col_benign[node_id]
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        config = self.config
        n_epochs = config.n_epochs
        round_period = config.round_period_epochs
        availability = np.zeros(n_epochs)
        overhead = np.zeros(n_epochs)
        logger.info(
            "run: nodes=%d epochs=%d repair=%s invariants=%s",
            self.n_total, n_epochs, config.repair,
            self.invariant_checker is not None,
        )

        cohorts = self._cohort_masks()
        cohort_series = {name: np.zeros(n_epochs) for name in cohorts}

        active_since_round: Set[int] = set()
        snapshot_epochs = {
            min(n_epochs - 1, day * config.epochs_per_day - 1): day
            for day in config.cdf_snapshot_days
        }

        self._tracer = get_tracer()
        push_registry(self.metrics)
        try:
            for epoch in range(n_epochs):
                if PROFILER.enabled:
                    PROFILER.set_epoch(epoch)
                with PROFILER.span("engine.epoch"):
                    self._run_epoch(
                        epoch, round_period, active_since_round,
                        availability, overhead, cohorts, cohort_series,
                        snapshot_epochs,
                    )
                if (
                    PROFILER.enabled
                    and PROFILER.trace
                    and self._tracer.enabled
                ):
                    self._tracer.emit(
                        "perf_profile",
                        epoch=epoch,
                        phases={
                            name: round(wall, 9)
                            for name, wall in PROFILER.epoch_phases(epoch).items()
                        },
                    )
        finally:
            if PROFILER.enabled:
                PROFILER.set_epoch(None)
            pop_registry()

        self.result.availability = availability
        self.result.replica_overhead = overhead
        self.result.cohort_availability = cohort_series
        self.result.top_half_replica_share = self._top_half_share()
        self.result.blacklisted_owner_count = sum(
            len(node.store.blacklisted_owners()) for node in self.nodes
        )
        self.result.unavailable_owner_epochs = {
            int(owner): int(count)
            for owner, count in enumerate(self._owner_unavailable_epochs)
            if count
        }
        findings = (
            detect_repair_loops(self._repair_epochs_by_owner, self.anomaly_config)
            + detect_churn_storms(self._drops_by_epoch, self.anomaly_config)
            + detect_mirror_flapping(self._mirror_toggles, self.anomaly_config)
        )
        anomalies: Dict[str, int] = {}
        for finding in findings:
            anomalies[finding.rule] = anomalies.get(finding.rule, 0) + 1
        self.result.anomalies = anomalies
        for rule, count in sorted(anomalies.items()):
            self.metrics.counter(f"engine.anomaly.{rule}").inc(count)
        if self.arch is not None:
            from repro.arch import gini

            if self.dht_probe is not None:
                self.arch.extra_metrics["dht"] = self.dht_probe.metrics()
            groups = self.arch.metrics()
            # Storage-share fairness over benign nodes: how evenly the
            # hosting burden is spread (0 = equal, →1 = concentrated).
            if len(self._pair_mirrors):
                hosted = np.bincount(self._pair_mirrors, minlength=self.n_total)
            else:
                hosted = np.zeros(self.n_total, dtype=np.int64)
            storage = groups.setdefault("storage", {})
            storage["gini"] = gini(hosted[self.benign_ids])
            storage["top_half_share"] = self.result.top_half_replica_share
            self.result.arch = groups
        self.result.metrics = self.metrics.snapshot()
        logger.info(
            "run complete: steady availability=%.3f",
            self.result.steady_state_availability(),
        )
        return self.result

    def _run_epoch(
        self,
        epoch: int,
        round_period: int,
        active_since_round: Set[int],
        availability: np.ndarray,
        overhead: np.ndarray,
        cohorts: Dict[str, np.ndarray],
        cohort_series: Dict[str, np.ndarray],
        snapshot_epochs: Dict[int, int],
    ) -> None:
        """One epoch of the main loop (split out for phase profiling)."""
        if self.faults is not None:
            self.faults.on_epoch_start(self, epoch)
        online_now = self.online_matrix[:, epoch]
        self._epoch_now = epoch
        if self.dht_probe is not None:
            self.dht_probe.begin_epoch(epoch, online_now)
        if self._read_path is not None:
            self._read_path.begin_epoch(epoch)
        self._activate_joins(epoch)
        online_ids = np.nonzero(online_now)[0]
        active_since_round.update(int(i) for i in online_ids)
        with PROFILER.span("engine.interactions"):
            self._run_interactions(epoch, online_ids)

        # A node without mirrors selects immediately instead of waiting
        # for the next round: "users are most active when they have just
        # joined" and gain a foothold right away (Sec. 4.3).  Pending
        # replica pushes to previously offline mirrors are also retried.
        pairs_dirty = False
        for node_id in online_ids:
            node = self.nodes[int(node_id)]
            if node.departed or not node.joined or node.is_sybil:
                continue
            if not node.announced_mirrors:
                self._select_and_place(node, epoch)
                pairs_dirty = True
            elif node.pending_placements:
                pairs_dirty |= self._retry_pending_placements(node, epoch)
        if self.config.repair:
            with PROFILER.span("engine.repair"):
                pairs_dirty |= self._run_repair(epoch, online_ids)
        if pairs_dirty:
            self._rebuild_pairs()

        if (epoch + 1) % round_period == 0:
            participants = [
                node_id
                for node_id in active_since_round
                if self.nodes[node_id].joined and not self.nodes[node_id].departed
            ]
            with PROFILER.span("engine.selection_round"):
                self._run_selection_round(participants, epoch)
            active_since_round.clear()
            self._rebuild_pairs()

        with PROFILER.span("engine.measure"):
            # The benign mask and availability flags are pure functions of
            # state frozen for the rest of the epoch, so the headline
            # measurement and every cohort share one computation.
            benign_mask = self._joined_benign_mask()
            flags = self._availability_flags(online_now)
            availability[epoch], overhead[epoch] = self._measure(
                online_now, epoch, benign_mask=benign_mask, flags=flags
            )
            for name, mask in cohorts.items():
                cohort_series[name][epoch] = self._measure_cohort(
                    online_now, mask, benign_mask=benign_mask, flags=flags
                )
        self.metrics.gauge("engine.availability").set(availability[epoch])
        self.metrics.gauge("engine.replica_overhead").set(overhead[epoch])

        if epoch in snapshot_epochs:
            day = snapshot_epochs[epoch]
            self.result.stored_profiles_snapshots[day] = [
                self.nodes[i].store.replica_count()
                for i in range(self.n_total)
                if not self.nodes[i].is_sybil
            ]

        if self.invariant_checker is not None:
            with PROFILER.span("engine.invariants"):
                try:
                    self.invariant_checker.check_epoch(self, epoch)
                except Exception as exc:
                    if self._tracer.enabled:
                        self._tracer.emit(
                            "invariant_checked",
                            epoch=epoch,
                            ok=False,
                            violation=str(exc).splitlines()[0],
                        )
                    raise
            if self._tracer.enabled:
                self._tracer.emit(
                    "invariant_checked",
                    epoch=epoch,
                    ok=True,
                    checks=len(self.invariant_checker.names),
                )
        self.result.metrics_by_epoch.append(self.metrics.snapshot_scalars())

    # ------------------------------------------------------------------
    # epoch phases
    # ------------------------------------------------------------------
    def _activate_joins(self, epoch: int) -> None:
        online_now = self.online_matrix[:, epoch]
        # A node joins the OSN at its first online appearance — it must be
        # online to contact a bootstrap node (Sec. 3.2).
        if self._columnar:
            ready = np.nonzero(
                ~self._col_joined
                & ~self._col_departed
                & (self._col_join_epochs <= epoch)
                & online_now
            )[0]
            for node_id in ready:
                self.nodes[int(node_id)].joined = True
            self._col_joined[ready] = True
            if self.dht_probe is not None:
                # Ascending node id — the same probe-join order as the
                # reference loop below, so both modes build an identical
                # shadow ring.
                for node_id in ready:
                    self.dht_probe.on_join(int(node_id))
        else:
            for node in self.nodes:
                if (
                    not node.joined
                    and node.join_epoch <= epoch
                    and not node.departed
                    and online_now[node.node_id]
                ):
                    node.joined = True
                    self._col_joined[node.node_id] = True
                    if self.dht_probe is not None:
                        self.dht_probe.on_join(node.node_id)
        if self.departure_epoch is not None and epoch == self.departure_epoch:
            for node_id in self.departing_ids:
                node = self.nodes[node_id]
                self.note_departed(node_id)
                # A departing node's stored replicas become unreachable.
                for owner in node.store.stored_owners():
                    self.replica_locations[node_id].discard(owner)
                    self.mark_stale_announcement(owner, node_id)
                    self._trace_drop(owner, node_id, "mirror-departed", epoch)

    def _run_interactions(self, epoch: int, online_ids: np.ndarray) -> None:
        """Online nodes contact others and request friends' profiles."""
        config = self.config
        if len(online_ids) == 0:
            return
        # Per-epoch serving load per mirror (Sec. 5.2.5 overload model).
        self._served_this_epoch: Dict[int, int] = {}
        if self._columnar:
            join_epochs_online = self._col_join_epochs[online_ids]
        else:
            join_epochs_online = np.array(
                [self.nodes[int(i)].join_epoch for i in online_ids]
            )
        ages_days = np.maximum(
            0.0, (epoch - join_epochs_online) / config.epochs_per_day
        )
        rates = config.activity.rates_per_day(ages_days) / config.epochs_per_day
        counts = self.np_rng.poisson(rates)

        for index, node_id in enumerate(online_ids):
            node = self.nodes[int(node_id)]
            if not node.joined or node.departed or node.is_sybil:
                continue
            interactions = int(counts[index])
            if node.join_epoch == epoch:
                # Join burst: a fresh node contacts several nodes right away
                # (bootstrap node, early friends — Sec. 4.3).
                interactions += 5
            for _ in range(interactions):
                self._one_interaction(node, epoch)

    def _one_interaction(self, node: _NodeState, epoch: int) -> None:
        """One user session: contact a node, then browse friend profiles."""
        config = self.config
        contact_friend = (
            node.friends
            and self.rng.random() < config.friend_contact_probability
        )
        if contact_friend:
            target_id = self.rng.choice(node.friends)
        else:
            target_id = self.rng.randrange(self.n_total)
            if target_id == node.node_id:
                return
        target = self.nodes[target_id]
        if target.joined and not target.departed:
            # Meeting a node makes it (and us) known — KB entries both ways.
            node.kb.add_node(target_id, is_friend=target_id in node.friends)
            if not target.is_sybil:
                target.kb.add_node(node.node_id)
            # Bootstrapping nodes harvest recommendations from every contact.
            if not node.has_experience:
                self._collect_recommendations(node, target)

        # Feed browsing: request several friends' profiles, recording
        # per-mirror outcomes in the respective experience sets (Fig. 4).
        if not node.friends:
            return
        browsed = self.rng.choices(
            node.friends, k=min(config.profiles_per_session, len(node.friends))
        )
        for friend_id in set(browsed):
            friend = self.nodes[friend_id]
            if friend.joined and not friend.departed:
                self._request_profile(node, friend, epoch)

    def _collect_recommendations(self, node: _NodeState, target: _NodeState) -> None:
        if target.is_slanderer and self.slander is not None:
            forged = self.slander.forge_recommendations(
                target.node_id, range(self.n_base), self.rng
            )
            node.bootstrap.add_recommendations(forged)
            return
        if target.is_sybil:
            # Sybils recommend fellow sybils to lure storage.
            accomplices = [
                s for s in (self.flooding.sybil_ids if self.flooding else set())
                if s != target.node_id
            ]
            picks = self.rng.sample(accomplices, min(3, len(accomplices)))
            node.bootstrap.add_recommendations(
                Recommendation(target.node_id, pick, quality=1.0) for pick in picks
            )
            return
        for mirror in target.announced_mirrors:
            node.bootstrap.add_recommendation(
                Recommendation(
                    recommender=target.node_id,
                    mirror=mirror,
                    quality=target.kb.experience_of(mirror) or None,
                )
            )

    def _request_profile(self, node: _NodeState, friend: _NodeState, epoch: int) -> None:
        """Fetch a friend's data from its announced mirrors, recording the
        per-mirror outcome into ES_node(friend) (paper Fig. 4).

        With a configured service capacity, an overloaded mirror denies
        the request — which the requester observes exactly like an offline
        mirror, so overload feeds the rankings (Sec. 5.2.5).
        """
        if self.dht_probe is not None:
            # Shadow-ring directory lookup: measures hops/failures under
            # the active routing policy; never affects the fetch below.
            self.dht_probe.on_lookup(node.node_id, friend.node_id)
        read_path = self._read_path
        if read_path is not None and read_path.try_serve(
            node.node_id, friend.node_id, epoch
        ):
            # Cache hit: served locally, mirrors untouched — so the
            # experience set records *nothing* for this read.  Starving
            # Eq. (1) of observations is the cache tier's real trade-off.
            return
        es = node.experience_set_for(friend.node_id)
        online_now = self.online_matrix[:, epoch]
        capacity = self.config.mirror_request_capacity
        served_any = False
        for mirror_id in friend.announced_mirrors:
            stores = friend.node_id in self.replica_locations.get(mirror_id, ())
            success = bool(online_now[mirror_id]) and stores
            if success and capacity is not None:
                served = self._served_this_epoch.get(mirror_id, 0)
                if served >= capacity:
                    success = False  # request denied: mirror overloaded
                else:
                    self._served_this_epoch[mirror_id] = served + 1
            if success:
                served_any = True
            es.observe(mirror_id, success)
        if read_path is not None:
            read_path.on_fetch(node.node_id, friend.node_id, epoch, served_any)

    # ------------------------------------------------------------------
    # selection rounds
    # ------------------------------------------------------------------
    def _run_selection_round(self, participants: List[int], epoch: int) -> None:
        self._drops_this_round = 0
        self._placements_this_round = 0
        if self._selection_strategy is not None:
            # Round boundary for the strategy (e.g. super-peer election
            # and slot refresh) — a pure function of the engine view.
            self._selection_strategy.begin_round(self, epoch)

        # Phase 1: experience-set exchanges (and dropping-score exchange).
        with PROFILER.span("engine.sync"):
            for node_id in participants:
                self._exchange_experience(self.nodes[node_id], epoch)

        # Phase 2: ingest reports, re-rank, run Algorithm 1, place replicas.
        churn_hist = self.metrics.histogram("engine.selection.churn")
        churn_total = 0
        churn_count = 0
        for node_id in participants:
            node = self.nodes[node_id]
            if node.is_sybil:
                continue
            self._ingest_reports(node, epoch)
            old_set = set(node.selected_mirrors)
            self._select_and_place(node, epoch)
            churn = len(old_set.symmetric_difference(node.selected_mirrors))
            churn_hist.observe(churn)
            churn_total += churn
            churn_count += 1

        # Phase 3: sybils flood (Fig. 11).
        if self.flooding is not None:
            for sybil_id in sorted(self.flooding.sybil_ids):
                node = self.nodes[sybil_id]
                if node.joined and not node.departed:
                    self._sybil_flood(node)

        # Phase 4: protective-dropping hygiene — every mirror verifies each
        # stored owner's *published* mirror set against reality (Sec. 4.6:
        # "if v observes a copy of w's data in itself, but v is not listed
        # in w's published mirror set").  This is what catches flooders at
        # nodes they never revisit.
        score_hist = self.metrics.histogram("engine.dropping.score")
        with PROFILER.span("engine.dropping"):
            for node_id in participants:
                node = self.nodes[node_id]
                for owner in node.store.stored_owners():
                    score = node.store.dropping_score(owner)
                    if score > 0.0:
                        score_hist.observe(score)
                    removed = node.store.observe_published_mirrors(
                        owner, self.nodes[owner].announced_mirrors
                    )
                    for removed_owner in removed:
                        self.replica_locations[node_id].discard(removed_owner)
                        self.mark_stale_announcement(removed_owner, node_id)
                        self._trace_drop(removed_owner, node_id, "mismatch", epoch)

        self.metrics.counter("engine.selection.rounds").inc()
        if churn_count:
            self.result.mirror_churn_by_round.append(churn_total / churn_count)
            logger.debug(
                "selection round at epoch %d: %d participants, mean churn %.2f",
                epoch, churn_count, churn_total / churn_count,
            )
        placed = max(1, self._placements_this_round)
        self.result.drop_rate_by_round.append(self._drops_this_round / placed)

    def _exchange_experience(self, node: _NodeState, epoch: int = 0) -> None:
        """Send ES_u(w) to every friend w; swap stored-owner lists."""
        for friend_id in node.friends:
            friend = self.nodes[friend_id]
            if not friend.joined or friend.departed:
                continue
            if node.is_slanderer and self.slander is not None:
                reports = self.slander.forge_reports(
                    node.node_id, friend.announced_mirrors, self.soup.o_max
                )
            else:
                es = node.experience_sets.get(friend_id)
                if es is None or len(es) == 0:
                    reports = []
                else:
                    reports = es.drain(node.node_id, self.soup.o_max)
            if self.ties is not None and reports:
                from repro.extensions.ties import weigh_reports_by_tie

                reports = weigh_reports_by_tie(reports, friend_id, self.ties)
            if self.faults is not None:
                reports = self.faults.tamper_reports(
                    node.node_id, friend_id, reports, epoch
                )
            friend.pending_reports.extend(reports)

            # Dropping-score exchange: learn who stores at the friend.
            removed = node.store.learn_friend_storage(friend.store.stored_owners())
            for owner in removed:
                self.replica_locations[node.node_id].discard(owner)
                self.mark_stale_announcement(owner, node.node_id)

    def _ingest_reports(self, node: _NodeState, epoch: int = 0) -> None:
        if not node.pending_reports:
            return
        if self.faults is not None:
            self.faults.shuffle_reports(node.node_id, node.pending_reports, epoch)
        node.ranker.ingest_reports(node.pending_reports)
        node.pending_reports.clear()
        node.has_experience = True

    def _select_and_place(self, node: _NodeState, epoch: int) -> None:
        """Run Algorithm 1 for one node and apply the outcome.

        Candidates that are unreachable right now (offline, departed, not
        yet joined) cannot receive a storage request, so the greedy stage
        skips them and fills the ε target from reachable candidates —
        except that mirrors already holding our replica stay selectable
        while offline (the replica is already there).
        """
        online_now = self.online_matrix[:, epoch]
        holding = {
            mirror_id
            for mirror_id in node.announced_mirrors
            if node.node_id in self.replica_locations[mirror_id]
        }
        excluded = {node.node_id} | node.rejected_by | node.dead_mirrors
        excluded.update(self._unreachable_at(epoch) - holding)

        # Candidate ranking, in trust order: (1) first-hand Eq.-(1)
        # experience; (2) stranger recommendations (bootstrap mode);
        # (3) every other known contact at the bootstrap prior — the paper's
        # "randomly select mirrors from her contacts" fallback, which also
        # keeps Algorithm 1 supplied with trial candidates until enough
        # measured mirrors exist to reach the ε target.
        with PROFILER.span("engine.scoring"):
            ranking = [
                (candidate, rank)
                for candidate, rank in node.ranker.ranking()
                if rank > 0.0
            ]
            known = {candidate for candidate, _ in ranking}
            for candidate, rank in node.bootstrap.ranking():
                if candidate not in known:
                    ranking.append((candidate, rank))
                    known.add(candidate)
            prior = self.soup.bootstrap_prior
            ranking += [
                (entry.node_id, prior)
                for entry in node.kb
                if entry.node_id not in known
            ]

        with PROFILER.span("engine.selection"):
            if self._selection_strategy is None:
                result = select_mirrors(
                    ranking=ranking,
                    friends=node.kb.friends(),
                    config=self.soup,
                    rng=self.rng,
                    exploration_pool=node.kb.unranked_nodes(),
                    exclude=excluded,
                )
            else:
                result = self._selection_strategy.select(
                    node.node_id,
                    ranking,
                    node.kb.friends(),
                    self.soup,
                    self.rng,
                    exploration_pool=node.kb.unranked_nodes(),
                    exclude=excluded,
                )
        node.rejected_by.clear()
        node.last_estimated_error = result.estimated_error
        if result.estimated_error is not None:
            self.metrics.histogram(
                "engine.selection.error",
                buckets=(0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
            ).observe(result.estimated_error)
        if self._tracer.enabled:
            self._tracer.emit(
                "mirror_selected",
                owner=node.node_id,
                mirrors=list(result.mirrors),
                estimated_error=result.estimated_error,
                epoch=epoch,
            )

        old_mirrors = set(node.selected_mirrors)
        new_mirrors = list(result.mirrors)
        new_set = set(new_mirrors)
        for mirror_id in old_mirrors.symmetric_difference(new_set):
            pair = (node.node_id, mirror_id)
            self._mirror_toggles[pair] = self._mirror_toggles.get(pair, 0) + 1

        # Withdraw replicas from de-selected mirrors.
        for mirror_id in old_mirrors - new_set:
            mirror = self.nodes[mirror_id]
            if mirror.store.remove(node.node_id):
                self.replica_locations[mirror_id].discard(node.node_id)
                self._trace_drop(node.node_id, mirror_id, "withdrawn", epoch)

        # Place replicas at newly selected mirrors.
        online_now = self.online_matrix[:, epoch]
        accepted: List[int] = []
        friend_set = set(node.friends)
        for mirror_id in new_mirrors:
            mirror = self.nodes[mirror_id]
            already = node.node_id in self.replica_locations[mirror_id]
            if already:
                accepted.append(mirror_id)
                continue
            if not online_now[mirror_id]:
                # A fresh replica cannot be pushed to an offline mirror;
                # the push is retried each epoch both ends are online.
                node.pending_placements.add(mirror_id)
                continue
            decision = mirror.store.request_store(
                node.node_id, size_profiles=1.0, is_friend=mirror_id in friend_set
            )
            self._placements_this_round += 1
            if decision.accepted:
                if decision.dropped_owner is not None:
                    self.replica_locations[mirror_id].discard(decision.dropped_owner)
                    self.mark_stale_announcement(decision.dropped_owner, mirror_id)
                    self._drops_this_round += 1
                    self.metrics.counter("engine.replicas.dropped").inc()
                    self._trace_drop(decision.dropped_owner, mirror_id, "capacity", epoch)
                if self._place_replica_payload(node.node_id, mirror_id, epoch):
                    self.replica_locations[mirror_id].add(node.node_id)
                    accepted.append(mirror_id)
                    self.metrics.counter("engine.replicas.placed").inc()
                    if self._tracer.enabled:
                        self._tracer.emit(
                            "replica_pushed",
                            owner=node.node_id, mirror=mirror_id, epoch=epoch,
                        )
                else:
                    # The replica payload never arrived.  Fire-and-forget
                    # senders announce the mirror anyway (the stale
                    # announcement the invariant checker flags); acked
                    # transfers roll the acceptance back cleanly.
                    mirror.store.remove(node.node_id)
                    if not self.config.repair:
                        accepted.append(mirror_id)
            else:
                node.rejected_by.add(mirror_id)
                self.metrics.counter("engine.replicas.rejected").inc()

        node.pending_placements &= new_set
        node.selected_mirrors = new_mirrors
        node.announced_mirrors = accepted
        if self._selection_strategy is not None:
            self._selection_strategy.on_commit(node.node_id, accepted, epoch)
        if self.dht_probe is not None:
            self.dht_probe.on_publish(node.node_id, accepted, epoch)
        # The owner has just rebuilt its announced set from live accepts, so
        # earlier drop notices are no longer pending for it.
        self._stale_announced.pop(node.node_id, None)
        node.kb.mark_mirrors(iter(accepted))
        node.kb.decay_ttls()

        # Mirrors still storing us but not announced would flag a mismatch;
        # honest owners announce exactly their accepted set, so only stale
        # storers (which we just withdrew from) could disagree.
        for mirror_id in accepted:
            removed = self.nodes[mirror_id].store.observe_published_mirrors(
                node.node_id, accepted
            )
            for owner in removed:
                self.replica_locations[mirror_id].discard(owner)
                self.mark_stale_announcement(owner, mirror_id)
                self._trace_drop(owner, mirror_id, "mismatch", epoch)

    def _unreachable_at(self, epoch: int) -> Set[int]:
        """Nodes no storage request can reach this epoch (offline, departed
        or not yet joined) — computed once per epoch, shared by every
        selecting node."""
        if getattr(self, "_unreachable_epoch", None) == epoch:
            return self._unreachable_cache
        online_now = self.online_matrix[:, epoch]
        if self._columnar:
            reachable = self._col_joined & ~self._col_departed & online_now
            self._unreachable_cache = set(np.nonzero(~reachable)[0].tolist())
        else:
            self._unreachable_cache = {
                n.node_id
                for n in self.nodes
                if n.departed or not n.joined or not online_now[n.node_id]
            }
        self._unreachable_epoch = epoch
        return self._unreachable_cache

    def _retry_pending_placements(self, node: _NodeState, epoch: int) -> bool:
        """Push deferred replicas to mirrors that have come online."""
        online_now = self.online_matrix[:, epoch]
        friend_set = set(node.friends)
        placed = False
        for mirror_id in sorted(node.pending_placements):
            if not online_now[mirror_id]:
                continue
            node.pending_placements.discard(mirror_id)
            if node.node_id in self.replica_locations[mirror_id]:
                continue
            mirror = self.nodes[mirror_id]
            decision = mirror.store.request_store(
                node.node_id, size_profiles=1.0, is_friend=mirror_id in friend_set
            )
            self._placements_this_round += 1
            if decision.accepted:
                if decision.dropped_owner is not None:
                    self.replica_locations[mirror_id].discard(decision.dropped_owner)
                    self.mark_stale_announcement(decision.dropped_owner, mirror_id)
                    self._drops_this_round += 1
                    self.metrics.counter("engine.replicas.dropped").inc()
                    self._trace_drop(decision.dropped_owner, mirror_id, "capacity", epoch)
                arrived = self._place_replica_payload(node.node_id, mirror_id, epoch)
                if arrived:
                    self.replica_locations[mirror_id].add(node.node_id)
                    self.metrics.counter("engine.replicas.placed").inc()
                    if self._tracer.enabled:
                        self._tracer.emit(
                            "replica_pushed",
                            owner=node.node_id, mirror=mirror_id, epoch=epoch,
                        )
                else:
                    mirror.store.remove(node.node_id)
                if arrived or not self.config.repair:
                    if mirror_id not in node.announced_mirrors:
                        node.announced_mirrors.append(mirror_id)
                    placed = True
            else:
                node.rejected_by.add(mirror_id)
                self.metrics.counter("engine.replicas.rejected").inc()
        if placed and self.dht_probe is not None:
            # The announced set changed: the owner republishes it.
            self.dht_probe.on_publish(node.node_id, node.announced_mirrors, epoch)
        return placed

    # ------------------------------------------------------------------
    # reliability layer: failure detection + proactive repair
    # ------------------------------------------------------------------
    def _run_repair(self, epoch: int, online_ids: np.ndarray) -> bool:
        """Per-epoch failure detection and repair for online owners.

        Every online owner probes its announced mirrors: a mirror that
        answers *with* the replica clears its suspicion; one that answers
        *without* it (lost transfer, capacity eviction) is declared dead on
        the spot; a silent (offline/departed) mirror accumulates suspicion
        until ``repair_suspicion_epochs``, then is declared dead.  Dead
        mirrors trigger an immediate reselection + re-replication instead
        of waiting for the next daily round.  Returns True when any
        replica ground truth changed.
        """
        rel = self.result.reliability
        assert rel is not None
        online_now = self.online_matrix[:, epoch]
        dirty = False
        for raw_id in online_ids:
            node = self.nodes[int(raw_id)]
            if node.departed or not node.joined or node.is_sybil:
                continue
            dead_now: List[int] = []
            for mirror_id in list(node.announced_mirrors):
                mirror = self.nodes[mirror_id]
                if online_now[mirror_id] and not mirror.departed:
                    if node.node_id in self.replica_locations[mirror_id]:
                        node.mirror_suspicion.pop(mirror_id, None)
                    else:
                        # The probe answered without our replica: direct
                        # evidence, no suspicion ramp needed.
                        dead_now.append(mirror_id)
                else:
                    level = node.mirror_suspicion.get(mirror_id, 0) + 1
                    node.mirror_suspicion[mirror_id] = level
                    if level >= self.config.repair_suspicion_epochs:
                        dead_now.append(mirror_id)
            if dead_now:
                self._repair_owner(node, dead_now, epoch)
                dirty = True
            self._note_deficit_state(node, epoch)
            if (
                node.last_estimated_error is not None
                and node.last_estimated_error > self.soup.epsilon
            ):
                rel.partial_set_epochs += 1
            # A dead-declared mirror seen online again becomes selectable.
            for mirror_id in sorted(node.dead_mirrors):
                if online_now[mirror_id] and not self.nodes[mirror_id].departed:
                    node.dead_mirrors.discard(mirror_id)
                    rel.revivals += 1
                    self.metrics.counter("engine.repair.revivals").inc()
        return dirty

    def _repair_owner(
        self, node: _NodeState, dead_now: List[int], epoch: int
    ) -> None:
        """Replace dead mirrors immediately: withdraw, reselect, re-place."""
        rel = self.result.reliability
        assert rel is not None
        for mirror_id in dead_now:
            node.dead_mirrors.add(mirror_id)
            node.mirror_suspicion.pop(mirror_id, None)
            rel.deaths_declared += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    "failure_declared",
                    peer=mirror_id, by=node.node_id, epoch=epoch,
                )
            # Withdraw whatever the mirror still holds (a spurious verdict
            # costs one re-replication, never a stale announcement).
            if self.nodes[mirror_id].store.remove(node.node_id):
                self.replica_locations[mirror_id].discard(node.node_id)
            if mirror_id in node.announced_mirrors:
                node.announced_mirrors.remove(mirror_id)
            node.pending_placements.discard(mirror_id)
        self._deficit_since.setdefault(node.node_id, epoch)
        self._repair_epochs_by_owner.setdefault(node.node_id, []).append(epoch)
        rel.repairs_triggered += 1
        self.metrics.counter("engine.repair.rounds").inc()
        before = set(node.announced_mirrors)
        self._select_and_place(node, epoch)
        replacements = len(set(node.announced_mirrors) - before)
        rel.repair_replacements += replacements
        if self._tracer.enabled:
            self._tracer.emit(
                "repair_round",
                owner=node.node_id,
                dead=list(dead_now),
                replacements=replacements,
                epoch=epoch,
            )

    def _note_deficit_state(self, node: _NodeState, epoch: int) -> None:
        """Close an owner's deficit window once its set is fully restored:
        every selected mirror accepted and actually stores the replica."""
        since = self._deficit_since.get(node.node_id)
        if since is None:
            return
        rel = self.result.reliability
        assert rel is not None
        selected = set(node.selected_mirrors)
        restored = (
            bool(selected)
            and selected == set(node.announced_mirrors)
            and all(
                node.node_id in self.replica_locations[mirror_id]
                for mirror_id in selected
            )
        )
        if restored:
            self._deficit_since.pop(node.node_id, None)
            rel.repair_latency_epochs.append(epoch - since)
            self.metrics.histogram("engine.repair.latency_epochs").observe(
                epoch - since
            )

    def _place_replica_payload(
        self, owner_id: int, mirror_id: int, epoch: int
    ) -> bool:
        """Whether the replica payload actually arrived at the mirror.

        Without repair, a transfer is fire-and-forget: one fault draw, and
        a drop goes unnoticed (the stale announcement the invariant
        checker flags).  With repair, transfers are acknowledged and
        retried up to ``push_retry_attempts`` times — each retry re-draws
        the fault deterministically from the injector's stream.
        """
        if self.faults is None:
            return True
        if not self.faults.drop_transfer(owner_id, mirror_id, epoch):
            return True
        if not self.config.repair:
            return False
        rel = self.result.reliability
        assert rel is not None
        retry_counter = self.metrics.counter("engine.transfer.retries")
        for attempt in range(self.config.push_retry_attempts - 1):
            rel.transfer_retries += 1
            retry_counter.inc()
            if self._tracer.enabled:
                self._tracer.emit(
                    "retry",
                    kind="replica_transfer",
                    owner=owner_id, mirror=mirror_id,
                    attempt=attempt + 2, epoch=epoch,
                )
            if not self.faults.drop_transfer(owner_id, mirror_id, epoch):
                return True
        rel.transfer_giveups += 1
        self.metrics.counter("engine.transfer.giveups").inc()
        logger.debug(
            "replica transfer %d->%d gave up after %d attempts (epoch %d)",
            owner_id, mirror_id, self.config.push_retry_attempts, epoch,
        )
        return False

    def _sybil_flood(self, node: _NodeState) -> None:
        """One sybil's flooding round (Fig. 11)."""
        assert self.flooding is not None
        targets = self.flooding.flood_targets(
            node.node_id, range(self.n_total), self.rng
        )
        accepted: List[int] = []
        for target_id in targets:
            target = self.nodes[target_id]
            if not target.joined or target.departed:
                continue
            if node.node_id in self.replica_locations[target_id]:
                accepted.append(target_id)
                continue
            decision = target.store.request_store(
                node.node_id, size_profiles=1.0, is_friend=False
            )
            self._placements_this_round += 1
            if decision.accepted:
                accepted.append(target_id)
                self.replica_locations[target_id].add(node.node_id)
                if decision.dropped_owner is not None:
                    self.replica_locations[target_id].discard(decision.dropped_owner)
                    self.mark_stale_announcement(decision.dropped_owner, target_id)
                    self._drops_this_round += 1

        # The sybil announces only a small subset; every other storer
        # observes a mismatch and raises the dropping score by c.
        announced = self.flooding.announced_set(accepted, self.rng)
        node.announced_mirrors = announced
        node.selected_mirrors = accepted
        self._stale_announced.pop(node.node_id, None)
        for mirror_id in accepted:
            removed = self.nodes[mirror_id].store.observe_published_mirrors(
                node.node_id, announced
            )
            for owner in removed:
                self.replica_locations[mirror_id].discard(owner)
                self.mark_stale_announcement(owner, mirror_id)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _rebuild_pairs(self) -> None:
        owners: List[int] = []
        mirrors: List[int] = []
        for mirror_id, stored in self.replica_locations.items():
            for owner in stored:
                owners.append(owner)
                mirrors.append(mirror_id)
        self._pair_owners = np.array(owners, dtype=np.int64)
        self._pair_mirrors = np.array(mirrors, dtype=np.int64)

    def _joined_benign_mask(self) -> np.ndarray:
        if self._columnar:
            return self._col_joined & ~self._col_departed & self._col_benign
        mask = np.zeros(self.n_total, dtype=bool)
        for node in self.nodes:
            mask[node.node_id] = (
                node.joined
                and not node.departed
                and not node.is_sybil
                and not node.is_traitor
            )
        return mask

    def _availability_flags(self, online_now: np.ndarray) -> np.ndarray:
        available = online_now.copy()
        if len(self._pair_owners):
            mirror_online = online_now[self._pair_mirrors]
            available[self._pair_owners[mirror_online]] = True
        if self._read_path is not None:
            # Cache tier: an owner with a fresh copy at an online reader
            # is reachable even with every mirror dark.
            cached = self._read_path.available_owners(
                online_now, getattr(self, "_epoch_now", 0)
            )
            if cached:
                available[np.asarray(cached, dtype=np.int64)] = True
        return available

    def _measure(
        self,
        online_now: np.ndarray,
        epoch: int,
        benign_mask: Optional[np.ndarray] = None,
        flags: Optional[np.ndarray] = None,
    ) -> Tuple[float, float]:
        mask = self._joined_benign_mask() if benign_mask is None else benign_mask
        population = int(mask.sum())
        if population == 0:
            if self._tracer.enabled:
                self._tracer.emit(
                    "availability_sample", epoch=epoch, population=0,
                    available=0, unavailable=[],
                )
            return 0.0, 0.0
        available = self._availability_flags(online_now) if flags is None else flags
        available_count = int(available[mask].sum())
        availability = available_count / population

        # Per-owner attribution ground truth: exactly which joined benign
        # owners the availability fraction is missing this epoch.
        unavailable_ids = np.nonzero(mask & ~available)[0]
        self._owner_unavailable_epochs[unavailable_ids] += 1
        self.metrics.counter(
            "engine.availability.unavailable_owner_epochs"
        ).inc(len(unavailable_ids))
        if self._tracer.enabled:
            self._tracer.emit(
                "availability_sample",
                epoch=epoch,
                population=population,
                available=available_count,
                unavailable=[int(i) for i in unavailable_ids],
            )

        if len(self._pair_owners):
            replica_counts = np.bincount(self._pair_owners, minlength=self.n_total)
            overhead = float(replica_counts[mask].mean())
        else:
            overhead = 0.0
        return availability, overhead

    def _measure_cohort(
        self,
        online_now: np.ndarray,
        cohort: np.ndarray,
        benign_mask: Optional[np.ndarray] = None,
        flags: Optional[np.ndarray] = None,
    ) -> float:
        if benign_mask is None:
            benign_mask = self._joined_benign_mask()
        mask = benign_mask & cohort
        population = int(mask.sum())
        if population == 0:
            return 0.0
        available = self._availability_flags(online_now) if flags is None else flags
        return float(available[mask].sum()) / population

    def _cohort_masks(self) -> Dict[str, np.ndarray]:
        """Fig. 7 cohorts: top/bottom 10 % by online time and by friends."""
        n = self.n_base
        masks: Dict[str, np.ndarray] = {}
        p = self.online_probabilities[:n]
        degrees = np.array([len(self.nodes[i].friends) for i in range(n)])
        tenth = max(1, n // 10)

        for name, values in (("online", p), ("friends", degrees)):
            order = np.argsort(values, kind="stable")
            bottom = np.zeros(self.n_total, dtype=bool)
            top = np.zeros(self.n_total, dtype=bool)
            bottom[order[:tenth]] = True
            top[order[-tenth:]] = True
            masks[f"bottom_{name}"] = bottom
            masks[f"top_{name}"] = top
        return masks

    def _top_half_share(self) -> float:
        """Share of all replicas hosted by the top half of nodes by online
        time (Sec. 5.2.2: 'the upper half ... provides more than 90 %')."""
        if not len(self._pair_mirrors):
            return 0.0
        median_p = float(np.median(self.online_probabilities[: self.n_base]))
        top_half = self.online_probabilities >= median_p
        return float(top_half[self._pair_mirrors].mean())


def run_task(
    config: ScenarioConfig, graph: Optional[nx.Graph] = None
) -> Tuple[SimulationResult, Dict[str, object]]:
    """Run one scenario and return ``(result, metrics_state)``.

    ``metrics_state`` is the run's full :class:`MetricsRegistry` state
    (``state_dict()``), which — unlike the summary snapshot already stored
    in ``result.metrics`` — can be merged loss-lessly across process
    boundaries.  This is the entry point sweep workers (:mod:`repro.runtime`)
    execute; everything it does is deterministic in ``config`` alone, so
    the same config produces byte-identical serialized results in any
    process.
    """
    if graph is None:
        graph = generate_dataset(config.dataset, scale=config.scale, seed=config.seed)
    simulation = SoupSimulation(graph, config)
    result = simulation.run()
    return result, simulation.metrics.state_dict()


def run_scenario(config: ScenarioConfig, graph: Optional[nx.Graph] = None) -> SimulationResult:
    """Build the dataset graph (unless given) and run one simulation."""
    result, _ = run_task(config, graph)
    return result
