"""Result containers and metric helpers for the replication simulator.

The two basic metrics of Sec. 5.1:

* **Data availability at time t** — ratio of users whose data is available
  at t to all users in the OSN.
* **Replica overhead at time t** — average number of replicas per node.

Plus everything the individual figures need: per-cohort availability
(Fig. 7), stored-profile CDFs (Fig. 6), drop rates and replica-distribution
shares (Sec. 5.2.2), and mirror-set churn (Fig. 14c).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Schema tag stamped into serialized results (bump on breaking change).
RESULT_SCHEMA = "soup-result/v1"


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF of ``values`` as (value, P(X <= value)) points."""
    if len(values) == 0:
        return []
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    points = []
    for index, value in enumerate(ordered):
        if index + 1 < n and ordered[index + 1] == value:
            continue  # only the last of a run of equal values
        points.append((float(value), (index + 1) / n))
    return points


def percentile_of(values: Sequence[float], quantile: float) -> float:
    """The ``quantile``-th percentile of ``values`` (0..1)."""
    if len(values) == 0:
        return 0.0
    return float(np.quantile(np.asarray(values, dtype=float), quantile))


@dataclass
class ReliabilityMetrics:
    """Counters from the reliability layer (retries, failure detection,
    proactive repair) — populated when a run enables repair."""

    #: Replica-transfer retries after a dropped/unacked attempt.
    transfer_retries: int = 0
    #: Transfers abandoned after exhausting every attempt.
    transfer_giveups: int = 0
    #: Mirrors the failure detector declared dead.
    deaths_declared: int = 0
    #: Dead-declared mirrors later observed alive again.
    revivals: int = 0
    #: Proactive repair rounds run (owner reselected + re-replicated).
    repairs_triggered: int = 0
    #: Replacement mirrors recruited by repair rounds.
    repair_replacements: int = 0
    #: Epochs from replica-deficit onset to full restoration, per repair.
    repair_latency_epochs: List[int] = field(default_factory=list)
    #: Owner-epochs spent on a partial mirror set (achieved error above
    #: the ε target because the candidate pool was exhausted).
    partial_set_epochs: int = 0
    #: Circuit-breaker state transitions ("closed->open", ...), aggregated
    #: across endpoints when a middleware stack is involved.
    circuit_transitions: Dict[str, int] = field(default_factory=dict)

    def mean_repair_latency(self) -> float:
        if not self.repair_latency_epochs:
            return 0.0
        return float(np.mean(self.repair_latency_epochs))

    def summary(self) -> Dict[str, float]:
        numbers = {
            "transfer_retries": float(self.transfer_retries),
            "transfer_giveups": float(self.transfer_giveups),
            "deaths_declared": float(self.deaths_declared),
            "revivals": float(self.revivals),
            "repairs_triggered": float(self.repairs_triggered),
            "repair_replacements": float(self.repair_replacements),
            "mean_repair_latency_epochs": self.mean_repair_latency(),
            "partial_set_epochs": float(self.partial_set_epochs),
            "circuit_transitions_total": float(
                sum(self.circuit_transitions.values())
            ),
        }
        # Per-transition counts ("closed->open", ...), flattened so every
        # report/JSON consumer sees the breaker behaviour, not just totals.
        for key, count in sorted(self.circuit_transitions.items()):
            numbers[f"circuit_{key}"] = float(count)
        return numbers

    def to_dict(self) -> Dict[str, object]:
        """Raw field values (not the derived :meth:`summary` shape)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReliabilityMetrics":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})


@dataclass
class SimulationResult:
    """Everything one simulator run measured."""

    n_nodes: int
    n_epochs: int
    epochs_per_day: int

    #: Fraction of joined benign users whose data is available, per epoch.
    availability: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Average accepted replicas per joined benign node, per epoch.
    replica_overhead: np.ndarray = field(default_factory=lambda: np.zeros(0))

    #: day -> list of per-node stored-replica counts (Fig. 6 snapshots).
    stored_profiles_snapshots: Dict[int, List[int]] = field(default_factory=dict)

    #: Cohort availability per epoch: cohort name -> series.
    cohort_availability: Dict[str, np.ndarray] = field(default_factory=dict)

    #: Fraction of placed replicas dropped, per selection round.
    drop_rate_by_round: List[float] = field(default_factory=list)
    #: Mean |M_t Δ M_{t-1}| per selection round (mirror-set churn, Fig. 14c).
    mirror_churn_by_round: List[float] = field(default_factory=list)
    #: Fraction of all replicas hosted by the top-half online-time nodes.
    top_half_replica_share: float = 0.0
    #: Count of owners blacklisted anywhere by protective dropping.
    blacklisted_owner_count: int = 0
    #: Reliability-layer counters; None when the run had repair disabled.
    reliability: Optional[ReliabilityMetrics] = None
    #: owner -> epochs the owner's data was unreachable (only owners with a
    #: nonzero count); sums to the engine's per-epoch unavailable counts.
    unavailable_owner_epochs: Dict[int, int] = field(default_factory=dict)
    #: anomaly rule -> finding count from the in-engine detectors
    #: (repair_loop, churn_storm, mirror_flapping — repro.obs.analysis).
    anomalies: Dict[str, int] = field(default_factory=dict)
    #: Per-architecture metric groups (repro.arch): ``{component:
    #: {metric: value}}``, e.g. ``{"cache": {"hit_rate": 0.4}}``.  None
    #: for plain-soup runs without the DHT probe, so default results
    #: serialize exactly as before.
    arch: Optional[Dict[str, Dict[str, float]]] = None
    #: Scalar metrics-registry snapshot at the end of each epoch
    #: (counters, gauges, histogram count/mean — see repro.obs.registry).
    metrics_by_epoch: List[Dict[str, float]] = field(default_factory=list)
    #: Full registry snapshot at the end of the run (histograms included).
    metrics: Optional[Dict[str, object]] = None

    def day_index(self, day: float) -> int:
        """Epoch index of the end of ``day`` (clamped to the run length).

        Clamped below too: ``day=0`` (or any day shorter than one epoch)
        maps to the *first* epoch, never wrapping to index -1 — which
        would silently return the last epoch's value.
        """
        return min(self.n_epochs - 1, max(0, int(day * self.epochs_per_day) - 1))

    def availability_at_day(self, day: float) -> float:
        return float(self.availability[self.day_index(day)])

    def replicas_at_day(self, day: float) -> float:
        return float(self.replica_overhead[self.day_index(day)])

    def daily_availability(self) -> np.ndarray:
        """Availability averaged per day (the granularity the paper plots)."""
        days = self.n_epochs // self.epochs_per_day
        return self.availability[: days * self.epochs_per_day].reshape(
            days, self.epochs_per_day
        ).mean(axis=1)

    def daily_replica_overhead(self) -> np.ndarray:
        days = self.n_epochs // self.epochs_per_day
        return self.replica_overhead[: days * self.epochs_per_day].reshape(
            days, self.epochs_per_day
        ).mean(axis=1)

    def steady_state_availability(self, skip_days: int = 2) -> float:
        """Mean availability after the bootstrap transient."""
        start = min(self.n_epochs - 1, skip_days * self.epochs_per_day)
        return float(self.availability[start:].mean())

    def steady_state_replicas(self, skip_days: int = 2) -> float:
        start = min(self.n_epochs - 1, skip_days * self.epochs_per_day)
        return float(self.replica_overhead[start:].mean())

    # ------------------------------------------------------------------
    # serialization (repro.runtime artifacts, `--json` CLI output)
    # ------------------------------------------------------------------
    def to_json_dict(self, include_derived: bool = False) -> Dict[str, object]:
        """A JSON-safe dict that :meth:`from_json_dict` restores exactly.

        Floats go through Python's shortest-repr serialization, so the
        round trip is lossless and two identical results serialize to
        identical bytes (the property the sweep store's determinism checks
        hash against).  With ``include_derived``, convenience series the
        CLI's ``--json`` consumers plot (daily averages, steady-state
        numbers) are appended; ``from_json_dict`` ignores them.
        """
        payload: Dict[str, object] = {
            "schema": RESULT_SCHEMA,
            "n_nodes": self.n_nodes,
            "n_epochs": self.n_epochs,
            "epochs_per_day": self.epochs_per_day,
            "availability": [float(v) for v in self.availability],
            "replica_overhead": [float(v) for v in self.replica_overhead],
            "stored_profiles_snapshots": {
                str(day): [int(c) for c in counts]
                for day, counts in sorted(self.stored_profiles_snapshots.items())
            },
            "cohort_availability": {
                name: [float(v) for v in series]
                for name, series in sorted(self.cohort_availability.items())
            },
            "drop_rate_by_round": [float(v) for v in self.drop_rate_by_round],
            "mirror_churn_by_round": [float(v) for v in self.mirror_churn_by_round],
            "top_half_replica_share": self.top_half_replica_share,
            "blacklisted_owner_count": self.blacklisted_owner_count,
            "reliability": (
                self.reliability.to_dict() if self.reliability is not None else None
            ),
            "unavailable_owner_epochs": {
                str(owner): int(count)
                for owner, count in sorted(self.unavailable_owner_epochs.items())
            },
            "anomalies": {
                name: int(count) for name, count in sorted(self.anomalies.items())
            },
            "arch": (
                {
                    component: {
                        metric: float(value)
                        for metric, value in sorted(numbers.items())
                    }
                    for component, numbers in sorted(self.arch.items())
                }
                if self.arch is not None
                else None
            ),
            "metrics_by_epoch": self.metrics_by_epoch,
            "metrics": self.metrics,
        }
        if include_derived:
            payload["daily_availability"] = [
                float(v) for v in self.daily_availability()
            ]
            payload["daily_replica_overhead"] = [
                float(v) for v in self.daily_replica_overhead()
            ]
            payload["availability_day1"] = self.availability_at_day(1)
            payload["steady_availability"] = self.steady_state_availability()
            payload["steady_replicas"] = self.steady_state_replicas()
        return payload

    def to_json(self, include_derived: bool = False, indent: Optional[int] = 2) -> str:
        return json.dumps(
            self.to_json_dict(include_derived), indent=indent, sort_keys=True
        )

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "SimulationResult":
        schema = payload.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result schema {schema!r} (expected {RESULT_SCHEMA!r})"
            )
        reliability = payload.get("reliability")
        result = cls(
            n_nodes=int(payload["n_nodes"]),
            n_epochs=int(payload["n_epochs"]),
            epochs_per_day=int(payload["epochs_per_day"]),
            availability=np.asarray(payload.get("availability", []), dtype=float),
            replica_overhead=np.asarray(
                payload.get("replica_overhead", []), dtype=float
            ),
            stored_profiles_snapshots={
                int(day): [int(c) for c in counts]
                for day, counts in payload.get(
                    "stored_profiles_snapshots", {}
                ).items()
            },
            cohort_availability={
                name: np.asarray(series, dtype=float)
                for name, series in payload.get("cohort_availability", {}).items()
            },
            drop_rate_by_round=list(payload.get("drop_rate_by_round", [])),
            mirror_churn_by_round=list(payload.get("mirror_churn_by_round", [])),
            top_half_replica_share=float(payload.get("top_half_replica_share", 0.0)),
            blacklisted_owner_count=int(payload.get("blacklisted_owner_count", 0)),
            reliability=(
                ReliabilityMetrics.from_dict(reliability)
                if reliability is not None
                else None
            ),
            unavailable_owner_epochs={
                int(owner): int(count)
                for owner, count in payload.get(
                    "unavailable_owner_epochs", {}
                ).items()
            },
            anomalies={
                str(name): int(count)
                for name, count in payload.get("anomalies", {}).items()
            },
            arch=(
                {
                    str(component): {
                        str(metric): float(value)
                        for metric, value in numbers.items()
                    }
                    for component, numbers in payload["arch"].items()
                }
                if payload.get("arch") is not None
                else None
            ),
            metrics_by_epoch=list(payload.get("metrics_by_epoch", [])),
            metrics=payload.get("metrics"),
        )
        return result

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        return cls.from_json_dict(json.loads(text))

    def summary(self) -> Dict[str, float]:
        """Headline numbers, the shape the paper's text quotes."""
        numbers = {
            "availability_day1": self.availability_at_day(1),
            "availability_steady": self.steady_state_availability(),
            "replicas_steady": self.steady_state_replicas(),
            "replicas_peak": float(self.replica_overhead.max(initial=0.0)),
            "top_half_replica_share": self.top_half_replica_share,
            "final_drop_rate": self.drop_rate_by_round[-1]
            if self.drop_rate_by_round
            else 0.0,
            # Unavailability attribution + anomaly counts: scalar so sweep
            # aggregation reduces them across seeds like any other metric.
            "unavailable_owner_epochs_total": float(
                sum(self.unavailable_owner_epochs.values())
            ),
            "unavailable_owners": float(len(self.unavailable_owner_epochs)),
            "anomaly_findings_total": float(sum(self.anomalies.values())),
        }
        for rule, count in sorted(self.anomalies.items()):
            numbers[f"anomaly_{rule}"] = float(count)
        if self.arch is not None:
            # Per-architecture groups flattened to dotted flat keys
            # ("arch.cache.hit_rate"), so sweep aggregation reduces them
            # across seeds and gates reach them via resolve_metric.
            for component, group in sorted(self.arch.items()):
                for metric, value in sorted(group.items()):
                    numbers[f"arch.{component}.{metric}"] = float(value)
        if self.reliability is not None:
            numbers.update(self.reliability.summary())
        return numbers
