"""Runtime invariant checking for the simulation core.

The north star is a production-scale system under heavy churn, which is
exactly the regime where the seed's one latent DHT bug lived: an entry on
the wrong node after a departure is invisible until an unlucky lookup.
This module turns those latent states into immediate, reproducible
failures.  Every epoch (behind ``ScenarioConfig.check_invariants``) a
:class:`InvariantChecker` validates:

* ``announced-mirrors-stored`` — every mirror a node *announces* in the
  directory actually stores its replica, unless the engine knows the owner
  has not yet learned of a legitimate drop (the paper's protective-dropping
  precondition: announced-vs-real mismatches must come from attackers, not
  from the engine's own bookkeeping).
* ``replica-locations-consistent`` — the engine's ground-truth
  ``replica_locations`` map and every node's :class:`ReplicaStore` agree
  (conservation of replicas across placement, withdrawal, dropping,
  blacklisting and departure).
* ``replica-count-meets-target`` — an online owner retains at least as
  many live replicas as its net announced mirror set (Algorithm 1's
  accepted selection target).
* ``storage-within-capacity`` — conservation of stored bytes: no replica
  store exceeds its capacity budget.

For DHT overlays (:class:`repro.dht.pastry.PastryOverlay`) the companion
:func:`overlay_violations` checks entry placement (every directory entry
on its responsible node — the check that would have caught the seed's
``leave()`` bug), leaf-set symmetry/liveness and routing-table liveness.
:func:`mirror_manager_violations` gives the protocol-level node
(:class:`repro.node.mirror_manager.MirrorManager`) the same treatment.

Violations raise :class:`InvariantViolation` carrying the epoch, the node
ids involved, a minimal serialized state snapshot, and a **one-line repro
string** that replays the exact scenario (config + fault plan) with
checking enabled — see :func:`format_repro` / :func:`parse_repro` /
:func:`run_repro`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Set by ``pytest --check-invariants`` (repro.testing.plugin): forces every
#: SoupSimulation built afterwards to run with the checker on, regardless
#: of its ScenarioConfig.
FORCE_CHECKS = False


@dataclass
class Violation:
    """One invariant breach, with a minimal serializable snapshot."""

    invariant: str
    epoch: int
    node_ids: Tuple[int, ...]
    detail: str
    snapshot: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "epoch": self.epoch,
            "node_ids": list(self.node_ids),
            "detail": self.detail,
            "snapshot": self.snapshot,
        }


class InvariantViolation(Exception):
    """Raised when a runtime invariant check fails.

    Carries every violation found in the failing check plus the one-line
    repro string that replays it deterministically.
    """

    def __init__(self, violations: Sequence[Violation], repro: str = "") -> None:
        if not violations:
            raise ValueError("InvariantViolation requires at least one violation")
        self.violations = list(violations)
        self.repro = repro
        first = self.violations[0]
        self.invariant = first.invariant
        self.epoch = first.epoch
        self.node_ids = first.node_ids
        lines = [
            f"{len(self.violations)} invariant violation(s); first: "
            f"[{first.invariant}] epoch={first.epoch} nodes={list(first.node_ids)}: "
            f"{first.detail}"
        ]
        if repro:
            lines.append(f"repro: {repro}")
        super().__init__("\n".join(lines))

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "epoch": self.epoch,
            "node_ids": list(self.node_ids),
            "repro": self.repro,
            "violations": [violation.to_dict() for violation in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


# ---------------------------------------------------------------------------
# engine (SoupSimulation) invariants
# ---------------------------------------------------------------------------
def _announced_mirrors_stored(sim, epoch: int) -> List[Violation]:
    violations: List[Violation] = []
    for node in sim.nodes:
        if not node.joined or node.departed:
            continue
        stale = sim.stale_announcements_of(node.node_id)
        missing = [
            mirror_id
            for mirror_id in node.announced_mirrors
            if node.node_id not in sim.replica_locations[mirror_id]
            and mirror_id not in stale
        ]
        if missing:
            violations.append(
                Violation(
                    invariant="announced-mirrors-stored",
                    epoch=epoch,
                    node_ids=(node.node_id, *missing),
                    detail=(
                        f"node {node.node_id} announces mirrors {missing} "
                        "that do not store its replica (and no drop is pending "
                        "notification)"
                    ),
                    snapshot={
                        "owner": node.node_id,
                        "announced": list(node.announced_mirrors),
                        "actually_stored_at": sorted(
                            mirror_id
                            for mirror_id, owners in sim.replica_locations.items()
                            if node.node_id in owners
                        ),
                        "pending_drop_notice": sorted(stale),
                    },
                )
            )
    return violations


def _replica_locations_consistent(sim, epoch: int) -> List[Violation]:
    violations: List[Violation] = []
    for node in sim.nodes:
        recorded = sim.replica_locations[node.node_id]
        stored = set(node.store.stored_owners())
        if node.departed:
            # A departed mirror's replicas are unreachable: the engine clears
            # its ground-truth locations while the store object is frozen.
            if recorded:
                violations.append(
                    Violation(
                        invariant="replica-locations-consistent",
                        epoch=epoch,
                        node_ids=(node.node_id,),
                        detail=(
                            f"departed mirror {node.node_id} still listed as "
                            f"storing {sorted(recorded)}"
                        ),
                        snapshot={"mirror": node.node_id, "recorded": sorted(recorded)},
                    )
                )
            continue
        if recorded != stored:
            violations.append(
                Violation(
                    invariant="replica-locations-consistent",
                    epoch=epoch,
                    node_ids=(node.node_id,),
                    detail=(
                        f"mirror {node.node_id}: ground truth and ReplicaStore "
                        f"disagree (only-ground-truth={sorted(recorded - stored)}, "
                        f"only-store={sorted(stored - recorded)})"
                    ),
                    snapshot={
                        "mirror": node.node_id,
                        "ground_truth": sorted(recorded),
                        "replica_store": sorted(stored),
                    },
                )
            )
    return violations


def _replica_count_meets_target(sim, epoch: int) -> List[Violation]:
    violations: List[Violation] = []
    online_now = sim.online_matrix[:, epoch]
    for node in sim.nodes:
        if (
            not node.joined
            or node.departed
            or node.is_sybil
            or not online_now[node.node_id]
        ):
            continue
        stale = sim.stale_announcements_of(node.node_id)
        target = len(set(node.announced_mirrors) - stale)
        live = sum(
            1
            for mirror_id in set(node.announced_mirrors)
            if node.node_id in sim.replica_locations[mirror_id]
        )
        if live < target:
            violations.append(
                Violation(
                    invariant="replica-count-meets-target",
                    epoch=epoch,
                    node_ids=(node.node_id,),
                    detail=(
                        f"online owner {node.node_id} retains {live} live "
                        f"replicas, below its accepted selection target {target}"
                    ),
                    snapshot={
                        "owner": node.node_id,
                        "announced": list(node.announced_mirrors),
                        "live_replicas": live,
                        "target": target,
                    },
                )
            )
    return violations


def _storage_within_capacity(sim, epoch: int) -> List[Violation]:
    violations: List[Violation] = []
    for node in sim.nodes:
        used = node.store.used_profiles
        capacity = node.store.capacity_profiles
        if used > capacity + 1e-9:
            violations.append(
                Violation(
                    invariant="storage-within-capacity",
                    epoch=epoch,
                    node_ids=(node.node_id,),
                    detail=(
                        f"mirror {node.node_id} stores {used:.3f} profiles, "
                        f"over its {capacity:.3f}-profile capacity"
                    ),
                    snapshot={
                        "mirror": node.node_id,
                        "used_profiles": used,
                        "capacity_profiles": capacity,
                        "stored_owners": sorted(node.store.stored_owners()),
                    },
                )
            )
    return violations


ENGINE_INVARIANTS: Dict[str, Callable] = {
    "announced-mirrors-stored": _announced_mirrors_stored,
    "replica-locations-consistent": _replica_locations_consistent,
    "replica-count-meets-target": _replica_count_meets_target,
    "storage-within-capacity": _storage_within_capacity,
}


class InvariantChecker:
    """Pluggable per-epoch invariant runner for :class:`SoupSimulation`.

    ``names`` selects a subset of :data:`ENGINE_INVARIANTS`; ``None``
    enables all of them.  Custom invariants register via :meth:`add`.
    """

    def __init__(self, names: Optional[Iterable[str]] = None) -> None:
        if names is None:
            self._checks = dict(ENGINE_INVARIANTS)
        else:
            unknown = [name for name in names if name not in ENGINE_INVARIANTS]
            if unknown:
                raise ValueError(
                    f"unknown invariant(s) {unknown}; "
                    f"available: {sorted(ENGINE_INVARIANTS)}"
                )
            self._checks = {name: ENGINE_INVARIANTS[name] for name in names}
        #: Count of completed epoch checks, for reporting.
        self.epochs_checked = 0

    @property
    def names(self) -> List[str]:
        return list(self._checks)

    def add(self, name: str, check: Callable) -> None:
        self._checks[name] = check

    def violations(self, sim, epoch: int) -> List[Violation]:
        found: List[Violation] = []
        for check in self._checks.values():
            found.extend(check(sim, epoch))
        return found

    def check_epoch(self, sim, epoch: int) -> None:
        found = self.violations(sim, epoch)
        self.epochs_checked += 1
        if found:
            raise InvariantViolation(found, repro=format_repro(sim.config))


# ---------------------------------------------------------------------------
# DHT overlay invariants
# ---------------------------------------------------------------------------
def overlay_violations(overlay, epoch: int = -1) -> List[Violation]:
    """Structural invariants of a :class:`PastryOverlay`.

    * ``dht-entry-placement`` — every directory entry lives on the node
      numerically closest to its key (the seed's ``leave()`` bug violated
      exactly this).
    * ``leaf-set-live-and-symmetric`` — leaf sets reference only live
      nodes, and converged membership is symmetric: if ``b`` is among
      ``a``'s nearest neighbours on one side, ``a`` is among ``b``'s on
      the other.
    * ``routing-table-live`` — routing tables reference only live nodes.
    """
    violations: List[Violation] = []
    nodes = overlay._nodes

    misplaced = overlay.misplaced_entries()
    if misplaced:
        placement = {}
        for key in misplaced:
            holders = [
                node_id for node_id, node in nodes.items() if key in node.entries
            ]
            placement[str(key)] = {
                "stored_at": holders,
                "responsible": overlay._responsible_node(key),
            }
        violations.append(
            Violation(
                invariant="dht-entry-placement",
                epoch=epoch,
                node_ids=tuple(
                    sorted({h for info in placement.values() for h in info["stored_at"]})
                ),
                detail=f"{len(misplaced)} entr(ies) stored away from their responsible node",
                snapshot={"misplaced": placement},
            )
        )

    for node_id, node in nodes.items():
        dead = [m for m in node.leaf_set.members() if m not in nodes]
        asymmetric = [
            m
            for m in node.leaf_set.members()
            if m in nodes and node_id not in nodes[m].leaf_set
        ]
        if dead or asymmetric:
            violations.append(
                Violation(
                    invariant="leaf-set-live-and-symmetric",
                    epoch=epoch,
                    node_ids=(node_id, *dead, *asymmetric),
                    detail=(
                        f"node {node_id:#x}: dead leaf members {dead}, "
                        f"asymmetric members {asymmetric}"
                    ),
                    snapshot={
                        "node": node_id,
                        "leaf_set": node.leaf_set.members(),
                        "dead": dead,
                        "asymmetric": asymmetric,
                    },
                )
            )
        dead_routes = [m for m in node.routing_table.known_nodes() if m not in nodes]
        if dead_routes:
            violations.append(
                Violation(
                    invariant="routing-table-live",
                    epoch=epoch,
                    node_ids=(node_id, *dead_routes),
                    detail=f"node {node_id:#x} routes via departed nodes {dead_routes}",
                    snapshot={"node": node_id, "dead_routes": dead_routes},
                )
            )
    return violations


def check_overlay(overlay, epoch: int = -1, repro: str = "") -> None:
    """Raise :class:`InvariantViolation` if the overlay is inconsistent."""
    found = overlay_violations(overlay, epoch)
    if found:
        raise InvariantViolation(found, repro=repro)


# ---------------------------------------------------------------------------
# protocol-node (MirrorManager) invariants
# ---------------------------------------------------------------------------
def mirror_manager_violations(manager, epoch: int = -1) -> List[Violation]:
    """Local-state invariants of one :class:`MirrorManager`.

    * the replica store never exceeds its capacity;
    * no blacklisted owner's replica is still stored;
    * the announced mirror set is a subset of the selected one (a node
      only publishes mirrors Algorithm 1 actually chose and that accepted).
    """
    violations: List[Violation] = []
    used = manager.store.used_profiles
    capacity = manager.store.capacity_profiles
    if used > capacity + 1e-9:
        violations.append(
            Violation(
                invariant="storage-within-capacity",
                epoch=epoch,
                node_ids=(manager.owner_id,),
                detail=f"node {manager.owner_id} stores {used:.3f}/{capacity:.3f} profiles",
                snapshot={"used": used, "capacity": capacity},
            )
        )
    stored_blacklisted = [
        owner
        for owner in manager.store.stored_owners()
        if manager.store.is_blacklisted(owner)
    ]
    if stored_blacklisted:
        violations.append(
            Violation(
                invariant="no-blacklisted-replicas",
                epoch=epoch,
                node_ids=(manager.owner_id, *stored_blacklisted),
                detail=(
                    f"node {manager.owner_id} still stores replicas of "
                    f"blacklisted owners {stored_blacklisted}"
                ),
                snapshot={"blacklisted_stored": stored_blacklisted},
            )
        )
    extra = set(manager.announced_mirrors) - set(manager.selected_mirrors)
    if extra:
        violations.append(
            Violation(
                invariant="announced-subset-of-selected",
                epoch=epoch,
                node_ids=(manager.owner_id, *sorted(extra)),
                detail=(
                    f"node {manager.owner_id} announces mirrors {sorted(extra)} "
                    "that Algorithm 1 never selected"
                ),
                snapshot={
                    "announced": list(manager.announced_mirrors),
                    "selected": list(manager.selected_mirrors),
                },
            )
        )
    return violations


def check_mirror_manager(manager, epoch: int = -1, repro: str = "") -> None:
    found = mirror_manager_violations(manager, epoch)
    if found:
        raise InvariantViolation(found, repro=repro)


# ---------------------------------------------------------------------------
# one-line repro strings
# ---------------------------------------------------------------------------
_REPRO_PREFIX = "soup-repro/v1"

#: token -> ScenarioConfig field.  Only scalar fields participate; model
#: objects (SoupConfig, ActivityModel) keep their defaults on replay.
_REPRO_FIELDS: Dict[str, str] = {
    "dataset": "dataset",
    "scale": "scale",
    "seed": "seed",
    "days": "n_days",
    "epd": "epochs_per_day",
    "join_window": "join_window_days",
    "round_days": "round_period_days",
    "dist": "online_distribution",
    "session": "mean_session_epochs",
    "friend_p": "friend_contact_probability",
    "profiles": "profiles_per_session",
    "altruists": "altruist_fraction",
    "altruist_day": "altruist_join_day",
    "departure": "departure_fraction",
    "departure_day": "departure_day",
    "traitors": "traitor_fraction",
    "betrayal_day": "betrayal_day",
    "slander": "slander_fraction",
    "sybil": "sybil_fraction",
    "flood_req": "sybil_flood_requests",
    "capacity": "mirror_request_capacity",
    "ties": "use_tie_strength",
    "repair": "repair",
    "suspicion": "repair_suspicion_epochs",
    "push_retries": "push_retry_attempts",
    "faults": "faults",
    "invariants": "invariant_names",
}
#: Tokens always emitted even at default values (scenario identity).
_REPRO_ALWAYS = ("dataset", "scale", "seed", "days")


def format_repro(config) -> str:
    """Serialize a scenario to the one-line repro string.

    The line replays with :func:`run_repro` (or ``python -m repro replay``)
    and always re-enables invariant checking.
    """
    from repro.sim.scenario import ScenarioConfig

    defaults = ScenarioConfig()
    tokens = [_REPRO_PREFIX]
    for token, attr in _REPRO_FIELDS.items():
        value = getattr(config, attr)
        if token not in _REPRO_ALWAYS and value == getattr(defaults, attr):
            continue
        if value is None:
            continue
        if attr == "online_distribution":
            value = value.value
        elif attr == "invariant_names":
            value = ",".join(value)
        elif isinstance(value, bool):
            value = int(value)
        tokens.append(f"{token}={value}")
    return " ".join(tokens)


def parse_repro(line: str):
    """Parse a repro line back into a ScenarioConfig (checking enabled)."""
    from repro.sim.scenario import OnlineDistribution, ScenarioConfig

    parts = line.split()
    if not parts or parts[0] != _REPRO_PREFIX:
        raise ValueError(
            f"not a {_REPRO_PREFIX} line: {line[:60]!r}"
        )
    defaults = ScenarioConfig()
    kwargs: Dict[str, object] = {}
    for token in parts[1:]:
        if "=" not in token:
            raise ValueError(f"malformed repro token {token!r}")
        key, raw = token.split("=", 1)
        attr = _REPRO_FIELDS.get(key)
        if attr is None:
            raise ValueError(f"unknown repro token {key!r}")
        default = getattr(defaults, attr)
        if attr == "online_distribution":
            value: object = OnlineDistribution(raw)
        elif attr == "invariant_names":
            value = tuple(raw.split(","))
        elif attr == "faults":
            value = raw
        elif isinstance(default, bool):
            value = bool(int(raw))
        elif isinstance(default, int) and not isinstance(default, bool):
            value = int(raw)
        elif isinstance(default, float):
            value = float(raw)
        elif default is None:  # e.g. mirror_request_capacity
            value = int(raw)
        else:
            value = raw
        kwargs[attr] = value
    kwargs["check_invariants"] = True
    return ScenarioConfig(**kwargs)


def run_repro(line: str):
    """Replay a repro line; returns the :class:`InvariantViolation` it
    reproduces, or ``None`` if the run completes clean."""
    from repro.sim.engine import run_scenario

    config = parse_repro(line)
    try:
        run_scenario(config)
    except InvariantViolation as violation:
        return violation
    return None
