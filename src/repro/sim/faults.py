"""Deterministic fault injection for the simulation core.

The invariant checker (:mod:`repro.sim.invariants`) answers "is the
protocol state still consistent?"; this module supplies the adverse
conditions to ask that question under.  A :class:`FaultPlan` is parsed
from a compact one-line spec string so that any injected run — and any
violation it produces — reproduces from a single line (see the repro
string format in :mod:`repro.sim.invariants`).

Spec grammar (no whitespace, so it embeds in repro strings)::

    faults := fault (';' fault)*
    fault  := kind (':' key '=' value)*

Supported kinds:

* ``crash`` — mid-run node crashes: at ``epoch``, ``count`` seeded nodes
  (or an explicit ``node``) go dark abruptly, replicas and all, like the
  traitor disappearance of Sec. 4.4 but at an arbitrary time.
* ``drop_transfer`` — a replica push is acknowledged but the data never
  arrives: the owner announces the mirror, the mirror stores nothing.
  Params: ``rate`` (default 1.0), ``from_epoch``/``to_epoch`` window,
  optional exact ``owner``/``mirror``.
* ``reorder`` — message reordering: pending experience reports are
  shuffled (seeded) before ingestion.  Eq. (1) aggregation should be
  order-insensitive, so invariants must stay green under this fault.
* ``stale_reports`` — duplicated stale messages: experience reports from
  the previous exchange are re-delivered alongside fresh ones with
  probability ``rate``.
* ``slander_burst`` — composes with :class:`repro.sim.attacks.SlanderAttack`:
  at ``epoch``, ``count`` seeded benign nodes send one round of maximum-rate
  forged reports against their friends' mirrors.

Process/socket-level kinds (PR 7) — interpreted by the chaos controller
(:mod:`repro.deploy.live`) against either :class:`~repro.network.transport.Transport`
backend, so the same one-line spec replays in the simulator and the live
runtime:

* ``kill`` — hard process kill: at ``epoch``, ``count`` seeded nodes (or
  an explicit ``node``) die and never return.  In the epoch engine this
  is an alias for ``crash``; on a transport the victims drop offline.
* ``pause`` — SIGSTOP-style stall: at ``epoch``, ``count`` seeded nodes
  (or ``node``) stop consuming their event loop until ``resume`` (epoch);
  in-flight traffic to them is buffered and handed over on resume.
* ``partition`` — the network splits into ``groups`` (default 2) seeded
  random groups at ``epoch`` and heals at ``heal``; cross-group sends
  fail like unreachable hosts.
* ``delay`` — every delivery between ``from_epoch`` and ``to_epoch``
  takes ``seconds`` extra.
* ``drop`` — every message between ``from_epoch`` and ``to_epoch`` is
  lost in flight with probability ``rate`` (seeded).

Every fault draws randomness from its own :class:`random.Random` seeded by
``(base_seed, index, kind)``, so a plan replays identically regardless of
what other code consumes the simulation RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_KINDS = (
    "crash",
    "drop_transfer",
    "reorder",
    "stale_reports",
    "slander_burst",
    # Process/socket-level kinds, replayable on both transport backends.
    "kill",
    "pause",
    "partition",
    "delay",
    "drop",
)


def _parse_value(raw: str):
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


@dataclass
class FaultSpec:
    """One parsed fault clause."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )

    def get(self, key: str, default=None):
        return self.params.get(key, default)

    def in_window(self, epoch: int) -> bool:
        return self.get("from_epoch", 0) <= epoch <= self.get("to_epoch", float("inf"))

    def to_string(self) -> str:
        # Insertion order is parse order, so parse → to_string round-trips.
        parts = [self.kind] + [
            f"{key}={value}" for key, value in self.params.items()
        ]
        return ":".join(parts)

    @classmethod
    def parse(cls, clause: str) -> "FaultSpec":
        pieces = clause.split(":")
        kind = pieces[0]
        params: Dict[str, object] = {}
        for piece in pieces[1:]:
            if "=" not in piece:
                raise ValueError(f"malformed fault parameter {piece!r} in {clause!r}")
            key, raw = piece.split("=", 1)
            params[key] = _parse_value(raw)
        return cls(kind=kind, params=params)


class FaultInjector:
    """Executes a fault plan against a running :class:`SoupSimulation`.

    The simulation calls the hook methods at fixed points; every hook is a
    no-op for plans that do not include the corresponding fault kind.
    """

    def __init__(self, specs: List[FaultSpec], base_seed: int = 0) -> None:
        self.specs = specs
        self.base_seed = base_seed
        # "kill" is an alias of "crash"; seeding with the canonical kind
        # makes the two spellings sample identical victims, so a plan can
        # be rewritten between them without changing the replay.
        self._rngs = [
            random.Random(
                f"{base_seed}/{index}/"
                f"{'crash' if spec.kind == 'kill' else spec.kind}"
            )
            for index, spec in enumerate(specs)
        ]
        #: (node, friend) -> reports sent at the previous exchange, kept so
        #: ``stale_reports`` can re-deliver them.
        self._last_reports: Dict[Tuple[int, int], list] = {}
        self._crashed: List[int] = []

    # --- construction -----------------------------------------------------
    @classmethod
    def from_spec(cls, spec_string: Optional[str], base_seed: int = 0) -> Optional["FaultInjector"]:
        if not spec_string:
            return None
        specs = [
            FaultSpec.parse(clause)
            for clause in spec_string.split(";")
            if clause
        ]
        return cls(specs, base_seed=base_seed)

    def to_string(self) -> str:
        return ";".join(spec.to_string() for spec in self.specs)

    @property
    def crashed_nodes(self) -> List[int]:
        return list(self._crashed)

    # --- hooks ------------------------------------------------------------
    def on_epoch_start(self, sim, epoch: int) -> None:
        """Apply epoch-triggered faults (crashes, slander bursts)."""
        for spec, rng in zip(self.specs, self._rngs):
            # "kill" is the process-level spelling of "crash"; the epoch
            # engine treats them identically so one spec line replays in
            # both the simulator and the live runtime.
            if spec.kind in ("crash", "kill") and spec.get("epoch") == epoch:
                self._crash(sim, epoch, spec, rng)
            elif spec.kind == "slander_burst" and spec.get("epoch") == epoch:
                self._slander_burst(sim, spec, rng)

    def drop_transfer(self, owner: int, mirror: int, epoch: int) -> bool:
        """Whether this replica push silently loses its payload."""
        for spec, rng in zip(self.specs, self._rngs):
            if spec.kind != "drop_transfer" or not spec.in_window(epoch):
                continue
            if spec.get("owner") is not None and spec.get("owner") != owner:
                continue
            if spec.get("mirror") is not None and spec.get("mirror") != mirror:
                continue
            if rng.random() < spec.get("rate", 1.0):
                return True
        return False

    def shuffle_reports(self, node_id: int, reports: list, epoch: int) -> None:
        """Message reordering: permute pending reports in place."""
        for spec, rng in zip(self.specs, self._rngs):
            if spec.kind == "reorder" and spec.in_window(epoch):
                rng.shuffle(reports)

    def tamper_reports(
        self, sender: int, receiver: int, reports: list, epoch: int
    ) -> list:
        """Stale-message duplication on one experience-set exchange."""
        result = list(reports)
        for spec, rng in zip(self.specs, self._rngs):
            if spec.kind != "stale_reports" or not spec.in_window(epoch):
                continue
            previous = self._last_reports.get((sender, receiver), [])
            result.extend(
                report for report in previous if rng.random() < spec.get("rate", 0.5)
            )
        if any(spec.kind == "stale_reports" for spec in self.specs):
            self._last_reports[(sender, receiver)] = list(reports)
        return result

    # --- fault implementations -------------------------------------------
    def _crash(self, sim, epoch: int, spec: FaultSpec, rng: random.Random) -> None:
        node_param = spec.get("node")
        if node_param is not None:
            victims = [int(node_param)]
        else:
            eligible = [
                n.node_id
                for n in sim.nodes
                if n.joined and not n.departed and not n.is_sybil
            ]
            count = min(int(spec.get("count", 1)), len(eligible))
            victims = rng.sample(eligible, count) if count else []
        for victim in victims:
            node = sim.nodes[victim]
            # Funnel through the engine so the columnar membership arrays
            # stay in sync with the per-node flag.
            sim.note_departed(victim)
            sim.online_matrix[victim, epoch:] = False
            for owner in node.store.stored_owners():
                sim.replica_locations[victim].discard(owner)
                sim.mark_stale_announcement(owner, victim)
            self._crashed.append(victim)

    def _slander_burst(self, sim, spec: FaultSpec, rng: random.Random) -> None:
        from repro.sim.attacks import SlanderAttack

        eligible = [
            n.node_id
            for n in sim.nodes
            if n.joined and not n.departed and n.friends and not n.is_sybil
        ]
        count = min(int(spec.get("count", 1)), len(eligible))
        attackers = rng.sample(eligible, count) if count else []
        attack = SlanderAttack(attacker_ids=set(attackers))
        for attacker in attackers:
            state = sim.nodes[attacker]
            for friend_id in state.friends:
                friend = sim.nodes[friend_id]
                if not friend.joined or friend.departed:
                    continue
                friend.pending_reports.extend(
                    attack.forge_reports(
                        attacker, friend.announced_mirrors, sim.soup.o_max
                    )
                )
