"""Scenario configuration for the replication simulator.

One :class:`ScenarioConfig` fully describes an experiment: which dataset at
what scale, how long, which behaviour models, and which adverse events
(altruist arrival, mass departure, slander, flooding).  Every figure in the
paper's Sec. 5 corresponds to one or a sweep of these configs — see the
benchmark modules for the exact parameterizations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.behavior.activity import ActivityModel
from repro.core.config import SoupConfig


class OnlineDistribution(enum.Enum):
    """Node online-time distributions used across experiments.

    ``POWER_LAW`` is SOUP's own assumption (Sec. 5.1).  ``PEERSON`` and
    ``UNIFORM_03`` reproduce the related-work assumptions of Table 4:
    PeerSoN's four-bucket mix and Safebook's uniform p = 0.3.
    """

    POWER_LAW = "powerlaw"
    PEERSON = "peerson"
    UNIFORM_03 = "uniform03"


#: PeerSoN's online-time buckets (fraction of nodes, online probability).
#: The published buckets cover 95 % of nodes; the remainder is assigned the
#: lowest published probability band's complement (p = 0.1).
PEERSON_BUCKETS = ((0.10, 0.90), (0.25, 0.87), (0.30, 0.75), (0.30, 0.30), (0.05, 0.10))


def sample_distribution(
    distribution: OnlineDistribution, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample per-node online probabilities for any supported distribution."""
    from repro.behavior.online import sample_online_probabilities

    if distribution is OnlineDistribution.POWER_LAW:
        return sample_online_probabilities(n, rng)
    if distribution is OnlineDistribution.UNIFORM_03:
        return np.full(n, 0.3)
    if distribution is OnlineDistribution.PEERSON:
        probabilities = np.empty(n)
        fractions = np.array([f for f, _ in PEERSON_BUCKETS])
        values = np.array([p for _, p in PEERSON_BUCKETS])
        assignments = rng.choice(len(values), size=n, p=fractions / fractions.sum())
        probabilities[:] = values[assignments]
        return probabilities
    raise ValueError(f"unsupported distribution: {distribution}")


@dataclass
class ScenarioConfig:
    """Everything one simulation run needs.

    The defaults reproduce the paper's base experiment (Fig. 5) at a
    laptop-friendly scale; the benchmark modules override fields per figure.
    """

    # --- population ------------------------------------------------------
    dataset: str = "facebook"
    scale: float = 0.02
    seed: int = 0

    # --- time -------------------------------------------------------------
    n_days: int = 20
    epochs_per_day: int = 24
    #: Window (days) over which nodes join asynchronously (Sec. 5.1).
    join_window_days: float = 1.0
    #: Cadence of ES exchanges + selection rounds, in days.
    round_period_days: float = 1.0

    # --- models -------------------------------------------------------------
    soup: SoupConfig = field(default_factory=SoupConfig)
    activity: ActivityModel = field(default_factory=ActivityModel)
    online_distribution: OnlineDistribution = OnlineDistribution.POWER_LAW
    mean_session_epochs: float = 3.0
    #: Probability an interaction targets a friend (vs a random stranger).
    friend_contact_probability: float = 0.8
    #: Friend profiles browsed per interaction session.  OSN interactions
    #: are feed/profile-browsing sessions touching several friends [22, 23],
    #: which is what feeds experience sets enough observations per exchange
    #: period for Eq. (1) to average over.
    profiles_per_session: int = 6

    # --- openness: altruistic nodes (Fig. 8) ---------------------------------
    altruist_fraction: float = 0.0
    altruist_join_day: float = 10.0

    # --- resiliency: mass departure (Fig. 9) ---------------------------------
    departure_fraction: float = 0.0
    departure_day: float = 10.0

    # --- attacks (Figs. 10, 11; Sec. 4.4 traitor) --------------------------------
    #: Fraction of extra identities performing the traitor attack: they
    #: "offer exceptional storage capacities and online time to get
    #: selected as a mirror by many users, just to disappear later".
    traitor_fraction: float = 0.0
    #: Day the traitors disappear.
    betrayal_day: float = 8.0
    #: Fraction of OSN nodes performing the slander attack.
    slander_fraction: float = 0.0
    #: Sybil identities created per benign node (m = 0.5 means sybils equal
    #: half the regular identities, per Fig. 11's percentages).
    sybil_fraction: float = 0.0
    #: Storage requests each sybil issues per selection round.
    sybil_flood_requests: int = 20

    # --- service capacity (Sec. 5.2.5) -------------------------------------------
    #: Profile requests a mirror can serve per epoch; None = unlimited.
    #: With a cap, "mirrors of popular data deny service due to
    #: overloading... these mirrors will receive a lower ranking, and SOUP
    #: will distribute the load among additional mirrors".
    mirror_request_capacity: Optional[int] = None

    # --- extensions (Sec. 8) ----------------------------------------------------
    #: Tie-strength extension: weigh friends' experience reports by the
    #: strength of the relation (strong ties more audible; infiltration
    #: ties weak), further dampening slander.
    use_tie_strength: bool = False

    # --- measurement -----------------------------------------------------------
    #: Days at which to snapshot the stored-profile CDF (Fig. 6).
    cdf_snapshot_days: tuple = (1, 14, 30)

    # --- reliability & repair ---------------------------------------------------
    #: Enable the reliability layer in the engine: acknowledged replica
    #: transfers with retries, suspicion-based mirror failure detection,
    #: and proactive repair (immediate reselection + re-replication when a
    #: mirror is declared dead).  Off by default — the base experiments
    #: reproduce the paper's passive-recovery behaviour.
    repair: bool = False
    #: Consecutive epochs an announced mirror must be silent (offline)
    #: before the failure detector declares it dead.  A mirror observed
    #: online *without* our replica is declared dead immediately.  The
    #: default (half a day at 24 epochs/day) trades detection speed
    #: against falsely declaring diurnally-offline mirrors dead; crashed
    #: nodes never return, so they are always caught eventually.
    repair_suspicion_epochs: int = 12
    #: Attempts per replica transfer when repair is enabled (first try
    #: included); an injected transfer drop is re-drawn per attempt, and a
    #: transfer failing every attempt is rolled back cleanly instead of
    #: leaving a stale announcement.
    push_retry_attempts: int = 3

    # --- execution --------------------------------------------------------------
    #: Hot-path implementation: ``"columnar"`` batches per-epoch node
    #: updates (join activation, cohort masks, reachability, measurement)
    #: into packed numpy arrays; ``"reference"`` keeps the original
    #: per-node object traversal.  Both paths share RNG streams and float
    #: operation order, so same-seed runs are byte-identical — the
    #: equivalence suite (tests/sim/test_equivalence.py) enforces this.
    engine_mode: str = "columnar"
    #: Signature emulation for the middleware/deployment layer:
    #: ``"full"`` runs real textbook-RSA sign/verify; ``"by_id"``
    #: simulates signatures by (signer id, digest), skipping modular
    #: exponentiation while still rejecting forged-source objects.
    #: Scenarios that attack the signature scheme itself need "full".
    crypto_mode: str = "full"

    # --- architecture (repro.arch) ----------------------------------------------
    #: Which architecture runs the seams: ``"soup"`` (the paper's design,
    #: byte-identical to the pre-refactor engine), ``"superpeer"``
    #: (SuperNova-style super-peer mirror economy), ``"social_dht"``
    #: (socially-aware Pastry placement + friend-shortcut routing), or
    #: ``"cache"`` (LRU/TTL read-cache tier over mirrors).  See
    #: docs/ARCHITECTURES.md.
    architecture: str = "soup"
    #: Run the shadow DHT probe (repro.arch.dhtprobe): an observational
    #: Pastry ring mirroring joins/departures/publishes/lookups so the
    #: run reports mean lookup hops and control traffic.  Off by default
    #: (the probe never feeds back, but it costs time); ``soup compare``
    #: enables it on every row so hop counts are comparable.
    measure_dht: bool = False
    #: Fraction of the population elected as super-peers.
    arch_superpeer_fraction: float = 0.05
    #: Observed-uptime bar for super-peer candidacy (also the "weak
    #: owner" threshold below which owners receive super-peer offers).
    arch_superpeer_min_uptime: float = 0.6
    #: Fixed hosting slots per super-peer; None derives slots from the
    #: super-peer's sampled storage capacity.
    arch_superpeer_slots: Optional[int] = None
    #: Read-cache entries per reader (``architecture="cache"``).
    arch_cache_capacity: int = 8
    #: Epochs a cached profile stays fresh.
    arch_cache_ttl_epochs: int = 6

    # --- correctness harness ----------------------------------------------------
    #: Run the per-epoch runtime invariant checker (repro.sim.invariants);
    #: a failed check raises InvariantViolation with a one-line repro string.
    check_invariants: bool = False
    #: Subset of invariant names to check (None = all engine invariants).
    invariant_names: Optional[tuple] = None
    #: Fault-injection plan (repro.sim.faults spec string), e.g.
    #: ``"drop_transfer:rate=1.0:from_epoch=120;crash:epoch=240:count=2"``.
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject impossible parameterizations with field-specific errors.

        Called from ``__post_init__`` so a bad value fails at construction —
        which for a sweep means at spec-expansion time, not mid-run with a
        process pool already fanned out.
        """
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.n_days <= 0:
            raise ValueError(f"n_days must be positive, got {self.n_days}")
        if self.epochs_per_day <= 0:
            raise ValueError(
                f"epochs_per_day must be positive, got {self.epochs_per_day}"
            )
        if not 0.0 <= self.altruist_fraction < 1.0:
            raise ValueError(
                f"altruist fraction must be in [0, 1), got {self.altruist_fraction}"
            )
        if not 0.0 <= self.departure_fraction < 1.0:
            raise ValueError(
                f"departure fraction must be in [0, 1), got {self.departure_fraction}"
            )
        if not 0.0 <= self.slander_fraction <= 0.9:
            raise ValueError(
                f"slander fraction must be in [0, 0.9], got {self.slander_fraction}"
            )
        if not 0.0 <= self.traitor_fraction < 1.0:
            raise ValueError(
                f"traitor fraction must be in [0, 1), got {self.traitor_fraction}"
            )
        if not 0.0 <= self.sybil_fraction <= 1.0:
            raise ValueError(
                f"sybil fraction must be in [0, 1], got {self.sybil_fraction}"
            )
        if not 0.0 <= self.friend_contact_probability <= 1.0:
            raise ValueError(
                "friend contact probability must be in [0, 1], "
                f"got {self.friend_contact_probability}"
            )
        if self.engine_mode not in ("columnar", "reference"):
            raise ValueError(
                f"engine_mode must be 'columnar' or 'reference', got {self.engine_mode!r}"
            )
        if self.crypto_mode not in ("full", "by_id"):
            raise ValueError(
                f"crypto_mode must be 'full' or 'by_id', got {self.crypto_mode!r}"
            )
        if self.architecture != "soup":
            # Fail at construction (sweep-expansion time), like faults.
            from repro.arch import ARCHITECTURES

            if self.architecture not in ARCHITECTURES:
                raise ValueError(
                    f"unknown architecture {self.architecture!r} "
                    f"(known: {sorted(ARCHITECTURES)})"
                )
        if not 0.0 < self.arch_superpeer_fraction <= 1.0:
            raise ValueError(
                "arch_superpeer_fraction must be in (0, 1], "
                f"got {self.arch_superpeer_fraction}"
            )
        if not 0.0 <= self.arch_superpeer_min_uptime <= 1.0:
            raise ValueError(
                "arch_superpeer_min_uptime must be in [0, 1], "
                f"got {self.arch_superpeer_min_uptime}"
            )
        if self.arch_superpeer_slots is not None and self.arch_superpeer_slots < 1:
            raise ValueError("arch_superpeer_slots must be positive when set")
        if self.arch_cache_capacity < 1:
            raise ValueError("arch_cache_capacity must be positive")
        if self.arch_cache_ttl_epochs < 1:
            raise ValueError("arch_cache_ttl_epochs must be positive")
        if self.repair_suspicion_epochs < 1:
            raise ValueError("repair_suspicion_epochs must be positive")
        if self.push_retry_attempts < 1:
            raise ValueError("push_retry_attempts must be positive")
        if self.faults is not None:
            # Fail fast on malformed fault specs rather than mid-run.
            from repro.sim.faults import FaultInjector

            FaultInjector.from_spec(self.faults, base_seed=self.seed)
        if self.invariant_names is not None:
            from repro.sim.invariants import ENGINE_INVARIANTS

            unknown = [n for n in self.invariant_names if n not in ENGINE_INVARIANTS]
            if unknown:
                raise ValueError(f"unknown invariant name(s): {unknown}")

    @property
    def n_epochs(self) -> int:
        return self.n_days * self.epochs_per_day

    @property
    def round_period_epochs(self) -> int:
        return max(1, int(round(self.round_period_days * self.epochs_per_day)))

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)
