"""Result rendering: sparklines and markdown experiment reports.

Terminal-friendly output for the CLI and for users assembling their own
EXPERIMENTS-style records from simulation results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.sim.metrics import SimulationResult

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> str:
    """Render a numeric series as unicode blocks.

    Pins the scale to [minimum, maximum] when given (e.g. 0..1 for
    availability), else to the data range.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    lo = float(data.min()) if minimum is None else float(minimum)
    hi = float(data.max()) if maximum is None else float(maximum)
    if hi <= lo:
        return _BLOCKS[0] * data.size
    scaled = np.clip((data - lo) / (hi - lo), 0.0, 1.0)
    indices = np.minimum((scaled * len(_BLOCKS)).astype(int), len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in indices)


def describe_result(name: str, result: SimulationResult) -> List[str]:
    """Human-readable multi-line summary of one simulation result."""
    daily = result.daily_availability()
    replicas = result.daily_replica_overhead()
    lines = [
        f"{name}:",
        f"  availability  {sparkline(daily, 0.5, 1.0)}  "
        f"day1={result.availability_at_day(1):.3f} "
        f"steady={result.steady_state_availability():.3f}",
        f"  replicas      {sparkline(replicas)}  "
        f"peak={float(result.replica_overhead.max(initial=0)):.1f} "
        f"steady={result.steady_state_replicas():.1f}",
    ]
    if result.drop_rate_by_round:
        lines.append(
            f"  drop rate     {sparkline(result.drop_rate_by_round)}  "
            f"final={result.drop_rate_by_round[-1]:.4f}"
        )
    if result.blacklisted_owner_count:
        lines.append(f"  blacklist entries: {result.blacklisted_owner_count}")
    if result.unavailable_owner_epochs:
        total = sum(result.unavailable_owner_epochs.values())
        worst_owner, worst = max(
            result.unavailable_owner_epochs.items(), key=lambda item: item[1]
        )
        lines.append(
            f"  unavailability {total} owner-epochs over "
            f"{len(result.unavailable_owner_epochs)} owners "
            f"(worst: owner {worst_owner}, {worst} epochs)"
        )
    if result.anomalies:
        rendered = " ".join(
            f"{rule}={count}" for rule, count in sorted(result.anomalies.items())
        )
        lines.append(f"  anomalies     {rendered}")
    rel = result.reliability
    if rel is not None:
        lines.append(
            f"  reliability   retries={rel.transfer_retries} "
            f"giveups={rel.transfer_giveups} "
            f"deaths={rel.deaths_declared} revivals={rel.revivals}"
        )
        lines.append(
            f"  repair        triggered={rel.repairs_triggered} "
            f"replacements={rel.repair_replacements} "
            f"mean_latency={rel.mean_repair_latency():.1f}ep "
            f"partial_set_epochs={rel.partial_set_epochs}"
        )
        if rel.circuit_transitions:
            transitions = " ".join(
                f"{key}={count}"
                for key, count in sorted(rel.circuit_transitions.items())
            )
            lines.append(f"  circuit       {transitions}")
    return lines


def metrics_table(result: SimulationResult) -> List[str]:
    """Render the run's final metrics-registry snapshot as aligned rows.

    Scalars (counters, gauges) print one value; histograms print their
    count/mean/p50/p90/max summary (see ``repro.obs.registry.Histogram``).
    """
    snapshot = result.metrics or {}
    if not snapshot:
        return ["metrics: none recorded (run the simulator to populate)"]
    name_width = max(len(name) for name in snapshot)
    lines = [
        f"{'metric':<{name_width}} {'value':>12}   histogram (count mean p50 p90 max)"
    ]
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):
            lines.append(
                f"{name:<{name_width}} {'':>12}   "
                f"{value['count']:.0f} {value['mean']:.3f} "
                f"{value['p50']:.3f} {value['p90']:.3f} {value['max']:.3f}"
            )
        else:
            lines.append(f"{name:<{name_width}} {float(value):>12.3f}")
    return lines


#: Default summary metrics a sweep table shows per cell.
SWEEP_TABLE_METRICS = (
    "availability_day1",
    "availability_steady",
    "replicas_steady",
    "replicas_peak",
)


def sweep_table(cells, metrics=SWEEP_TABLE_METRICS) -> List[str]:
    """Render aggregated sweep cells (``repro.runtime.aggregate``) as the
    aligned mean-across-seeds table the CLI prints.

    Each metric column shows ``mean`` and, when a cell has more than one
    seed, the ``[p10, p90]`` spread across seeds.
    """
    if not cells:
        return ["sweep: no completed tasks (run or resume the sweep first)"]
    headers = ["cell", "seeds"] + list(metrics)
    rows: List[List[str]] = []
    for cell in cells:
        stats = cell.stats()
        row = [cell.label, str(len(cell.seeds))]
        for metric in metrics:
            reduced = stats.get(metric)
            if reduced is None:
                row.append("-")
            elif reduced["n"] > 1:
                row.append(
                    f"{reduced['mean']:.3f} [{reduced['p10']:.3f}, "
                    f"{reduced['p90']:.3f}]"
                )
            else:
                row.append(f"{reduced['mean']:.3f}")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return lines


#: Columns of the ``soup compare`` head-to-head table: (summary metric,
#: column header).  The ``arch.*`` names are the flattened per-strategy
#: metric groups (see ``SimulationResult.summary``); a metric an
#: architecture does not produce renders as ``-``.
COMPARE_TABLE_METRICS = (
    ("availability_steady", "avail"),
    ("replicas_steady", "replicas"),
    ("arch.dht.mean_lookup_hops", "lookup_hops"),
    ("arch.dht.control_messages", "control_msgs"),
    ("arch.storage.gini", "storage_gini"),
    ("arch.cache.hit_rate", "cache_hit"),
)

#: Overrides the compare harness injects on every row — elided from the
#: table's row labels because they carry no information there.
_COMPARE_HIDDEN_OVERRIDES = ("architecture", "measure_dht")


def compare_table(cells, metrics=COMPARE_TABLE_METRICS) -> List[str]:
    """Render aggregated cells of a ``soup compare`` run: one row per
    architecture (× any residual grid cell), mean across seeds with the
    ``[p10, p90]`` spread when a cell holds several."""
    if not cells:
        return ["compare: no completed tasks (run or resume the sweep first)"]
    headers = ["architecture", "seeds"] + [header for _, header in metrics]
    rows: List[List[str]] = []
    for cell in cells:
        stats = cell.stats()
        label = str(cell.overrides.get("architecture", "soup"))
        residual = " ".join(
            f"{key}={value}"
            for key, value in sorted(cell.overrides.items())
            if key not in _COMPARE_HIDDEN_OVERRIDES
        )
        if residual:
            label = f"{label} ({residual})"
        row = [label, str(len(cell.seeds))]
        for metric, _ in metrics:
            reduced = stats.get(metric)
            if reduced is None:
                row.append("-")
            elif reduced["n"] > 1:
                row.append(
                    f"{reduced['mean']:.3f} [{reduced['p10']:.3f}, "
                    f"{reduced['p90']:.3f}]"
                )
            else:
                row.append(f"{reduced['mean']:.3f}")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return lines


def markdown_report(results: Dict[str, SimulationResult]) -> str:
    """A markdown table summarizing several runs (sweep output)."""
    header = (
        "| run | availability@day1 | steady availability | steady replicas "
        "| peak replicas | top-half share |\n"
        "|---|---|---|---|---|---|\n"
    )
    rows = []
    for name, result in results.items():
        summary = result.summary()
        rows.append(
            f"| {name} "
            f"| {summary['availability_day1']:.3f} "
            f"| {summary['availability_steady']:.3f} "
            f"| {summary['replicas_steady']:.2f} "
            f"| {summary['replicas_peak']:.2f} "
            f"| {summary['top_half_replica_share']:.2f} |"
        )
    return header + "\n".join(rows) + "\n"
