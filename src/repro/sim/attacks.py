"""Adversary models (paper Sec. 5.2.6).

* **Slander attack** — compromised identities "manipulate experience sets
  (or recommendations to bootstrapping users)" at the maximum rate: they
  report availability 0 with ``o_max`` claimed observations for every real
  mirror of their victims, and recommend useless nodes with perfect claimed
  quality to newcomers.  Eq. (1)'s observation cap and per-friend averaging
  bound their influence.

* **Flooding attack** — an adversary creates sybil identities that flood
  benign nodes with storage requests, trying to exhaust storage so benign
  replicas get dropped.  Sybils store at far more nodes than they announce
  in their published mirror set, which is exactly the announced-vs-real
  mismatch protective dropping penalizes (Sec. 4.6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from repro.core.experience import ExperienceReport
from repro.core.ranking import Recommendation


@dataclass
class SlanderAttack:
    """State and behaviour of the slander adversary."""

    attacker_ids: Set[int]

    def is_attacker(self, node_id: int) -> bool:
        return node_id in self.attacker_ids

    def forge_reports(
        self, attacker: int, victim_mirrors: Sequence[int], o_max: int
    ) -> List[ExperienceReport]:
        """Maximum-rate false reports: every victim mirror 'always failed'."""
        return [
            ExperienceReport(
                reporter=attacker, mirror=mirror, observations=o_max, availability=0.0
            )
            for mirror in victim_mirrors
        ]

    def forge_recommendations(
        self, attacker: int, population: Sequence[int], rng: random.Random, count: int = 5
    ) -> List[Recommendation]:
        """Lure bootstrapping users toward fellow attackers (or random junk
        nodes) with perfect claimed quality."""
        accomplices = [a for a in self.attacker_ids if a != attacker]
        pool = accomplices if accomplices else list(population)
        picks = rng.sample(pool, min(count, len(pool))) if pool else []
        return [
            Recommendation(recommender=attacker, mirror=pick, quality=1.0)
            for pick in picks
        ]


@dataclass
class FloodingAttack:
    """State and behaviour of the sybil-flooding adversary."""

    sybil_ids: Set[int]
    #: Storage requests per sybil per selection round.
    flood_requests: int = 20
    #: How many mirrors a sybil admits to in its published entry; everything
    #: beyond this is an announced-vs-real mismatch at the extra mirrors.
    announced_mirrors: int = 5

    def is_sybil(self, node_id: int) -> bool:
        return node_id in self.sybil_ids

    def flood_targets(
        self, sybil: int, population: Sequence[int], rng: random.Random
    ) -> List[int]:
        """The benign nodes this sybil floods with storage requests."""
        candidates = [node for node in population if node not in self.sybil_ids]
        if not candidates:
            return []
        count = min(self.flood_requests, len(candidates))
        return rng.sample(candidates, count)

    def announced_set(self, accepted_mirrors: Sequence[int], rng: random.Random) -> List[int]:
        """The (undersized) mirror set a sybil publishes."""
        mirrors = list(accepted_mirrors)
        if len(mirrors) <= self.announced_mirrors:
            return mirrors
        return rng.sample(mirrors, self.announced_mirrors)
