"""Large-scale simulation of SOUP's replication scheme (paper Sec. 5).

* :mod:`repro.sim.scenario` — experiment configuration: dataset, scale,
  duration, behaviour models, altruism / departure events, attack mixes and
  the related-work online-time distributions of Table 4.
* :mod:`repro.sim.engine` — the epoch-based simulator: joins, bootstrap
  recommendations, profile requests with experience-set recording, daily
  experience exchanges + Eq.-(1) updates, Algorithm-1 selection rounds,
  replica placement with protective dropping, and metric collection.
* :mod:`repro.sim.metrics` — result containers and summary helpers
  (availability series, replica CDFs, cohort splits, drop rates,
  mirror-set churn).
* :mod:`repro.sim.attacks` — slander and sybil-flooding adversaries.
"""

from repro.sim.attacks import FloodingAttack, SlanderAttack
from repro.sim.engine import SoupSimulation, run_scenario
from repro.sim.metrics import SimulationResult, cdf_points
from repro.sim.reporting import describe_result, markdown_report, sparkline
from repro.sim.scenario import OnlineDistribution, ScenarioConfig

__all__ = [
    "FloodingAttack",
    "SlanderAttack",
    "SoupSimulation",
    "run_scenario",
    "SimulationResult",
    "cdf_points",
    "describe_result",
    "markdown_report",
    "sparkline",
    "OnlineDistribution",
    "ScenarioConfig",
]
