"""A systematic (n, k) Reed-Solomon code over GF(2^8).

Maximum distance separable: any k of the n fragments reconstruct the
original data, exactly the property the paper's "large profiles" extension
needs (Sec. 8, citing [34, 35]).

Construction: the encoding matrix is the k×k identity stacked on top of
(n-k) rows of a Cauchy-style matrix of distinct evaluation points, which
keeps every k×k submatrix invertible.  Fragments carry their row index;
decoding inverts the k rows that survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.coding.gf256 import GF256, gf_matrix_invert, gf_matrix_multiply


class ReedSolomonError(Exception):
    """Raised on invalid parameters or insufficient fragments."""


@dataclass(frozen=True)
class Fragment:
    """One coded fragment: its row index and payload bytes."""

    index: int
    data: bytes


def _build_cauchy_rows(n: int, k: int) -> List[List[int]]:
    """(n-k) parity rows of a Cauchy matrix: entry 1/(x_i + y_j).

    With distinct x over the parity rows and distinct y over the data
    columns (and x ∩ y = ∅), every square submatrix of a Cauchy matrix is
    nonsingular — combined with the identity top, any k rows of the full
    encoding matrix are invertible.
    """
    xs = [k + i for i in range(n - k)]
    ys = list(range(k))
    rows = []
    for x in xs:
        rows.append([GF256.inverse(x ^ y) for y in ys])
    return rows


class ReedSolomonCode:
    """Encoder/decoder for one (n, k) parameter choice."""

    def __init__(self, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ReedSolomonError(f"need 1 <= k <= n, got n={n} k={k}")
        if n >= GF256.ORDER:
            raise ReedSolomonError(f"n must be < 256, got {n}")
        self.n = n
        self.k = k
        identity = [[1 if i == j else 0 for j in range(k)] for i in range(k)]
        self._matrix = identity + _build_cauchy_rows(n, k)

    @property
    def storage_overhead(self) -> float:
        """Total stored bytes relative to the original data (n/k)."""
        return self.n / self.k

    # ------------------------------------------------------------------
    def _split(self, data: bytes) -> List[List[int]]:
        """Split data into k equal pieces (zero-padded), as byte columns."""
        piece_length = (len(data) + self.k - 1) // self.k
        piece_length = max(piece_length, 1)
        padded = data.ljust(self.k * piece_length, b"\x00")
        return [
            list(padded[i * piece_length : (i + 1) * piece_length])
            for i in range(self.k)
        ]

    def encode(self, data: bytes) -> List[Fragment]:
        """Encode ``data`` into n fragments (the first k are systematic)."""
        pieces = self._split(data)
        coded = gf_matrix_multiply(self._matrix, pieces)
        return [Fragment(index=i, data=bytes(row)) for i, row in enumerate(coded)]

    def decode(self, fragments: Sequence[Fragment], original_length: int) -> bytes:
        """Reconstruct the original data from any k distinct fragments."""
        unique: Dict[int, Fragment] = {}
        for fragment in fragments:
            if not 0 <= fragment.index < self.n:
                raise ReedSolomonError(f"fragment index {fragment.index} out of range")
            unique.setdefault(fragment.index, fragment)
        if len(unique) < self.k:
            raise ReedSolomonError(
                f"need {self.k} distinct fragments, got {len(unique)}"
            )
        chosen = [unique[index] for index in sorted(unique)][: self.k]
        lengths = {len(fragment.data) for fragment in chosen}
        if len(lengths) != 1:
            raise ReedSolomonError("fragments have inconsistent lengths")

        submatrix = [list(self._matrix[fragment.index]) for fragment in chosen]
        inverse = gf_matrix_invert(submatrix)
        coded_rows = [list(fragment.data) for fragment in chosen]
        pieces = gf_matrix_multiply(inverse, coded_rows)
        data = b"".join(bytes(piece) for piece in pieces)
        if original_length > len(data):
            raise ReedSolomonError("original_length exceeds reconstructed data")
        return data[:original_length]
