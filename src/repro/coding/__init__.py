"""Erasure coding for large profiles (paper Sec. 8, "Large profiles").

The paper proposes distributing large profiles as coded fragments instead
of full replicas: "a file f can be split into k equally sized (f/k)
pieces, which are in turn encoded into n fragments using an (n, k) maximum
distance separable code. After distributing the fragments to n nodes, it
is possible to obtain the complete information from k encoded fragments."

This package implements that extension from scratch:

* :mod:`repro.coding.gf256` — arithmetic in GF(2^8) (the field every
  practical storage code uses), with log/antilog tables.
* :mod:`repro.coding.reed_solomon` — a systematic (n, k) Reed-Solomon MDS
  code over GF(2^8): encode into n fragments, reconstruct from any k.
* :mod:`repro.coding.fragments` — the SOUP integration: split + encode a
  profile, place fragments on mirrors, availability semantics ("data
  available iff ≥ k fragment holders online") and the storage-overhead
  accounting (n/k × instead of R ×).
"""

from repro.coding.fragments import (
    CodedReplicationPlan,
    FragmentPlacement,
    coded_availability,
    plan_for_profile,
)
from repro.coding.gf256 import GF256
from repro.coding.reed_solomon import ReedSolomonCode, ReedSolomonError

__all__ = [
    "CodedReplicationPlan",
    "FragmentPlacement",
    "coded_availability",
    "plan_for_profile",
    "GF256",
    "ReedSolomonCode",
    "ReedSolomonError",
]
