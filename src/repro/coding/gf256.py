"""Arithmetic in GF(2^8), the field behind practical storage codes.

Elements are bytes (0..255); addition is XOR; multiplication is polynomial
multiplication modulo the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11B).
Multiplication and division use log/antilog tables built once at import
time, so the Reed-Solomon hot loops stay table lookups.
"""

from __future__ import annotations

from typing import List

_PRIMITIVE_POLY = 0x11B
_GENERATOR = 0x03  # a primitive element of GF(2^8) for this polynomial


def _build_tables() -> tuple:
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        # Multiply by the generator 0x03 = x + 1: double (with reduction)
        # then add the original.  0x02 is *not* primitive for 0x11B (its
        # order is 51); 0x03 is.
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= _PRIMITIVE_POLY
        value = doubled ^ value
    for power in range(255, 512):
        exp[power] = exp[power - 255]
    return exp, log


_EXP, _LOG = _build_tables()
# Sanity: the generator walk must have covered all 255 non-zero elements.
assert sorted(_EXP[:255]) == sorted(set(_EXP[:255])), "generator is not primitive"


class GF256:
    """Static helpers for GF(2^8) arithmetic on ints 0..255."""

    ORDER = 256

    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    # Subtraction equals addition in characteristic 2.
    sub = add

    @staticmethod
    def multiply(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def divide(a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % 255]

    @staticmethod
    def power(a: int, exponent: int) -> int:
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 has no negative powers")
            return 0
        return _EXP[(_LOG[a] * exponent) % 255]

    @staticmethod
    def inverse(a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return _EXP[255 - _LOG[a]]

    @staticmethod
    def element(i: int) -> int:
        """The i-th power of the field's multiplicative generator."""
        return _EXP[i % 255]


def gf_matrix_multiply(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    """Matrix product over GF(256)."""
    rows, inner, cols = len(a), len(b), len(b[0])
    if any(len(row) != inner for row in a):
        raise ValueError("matrix dimension mismatch")
    result = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        for k in range(inner):
            coefficient = a[i][k]
            if coefficient == 0:
                continue
            row_b = b[k]
            row_r = result[i]
            for j in range(cols):
                row_r[j] ^= GF256.multiply(coefficient, row_b[j])
    return result


def gf_matrix_invert(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination."""
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise ValueError("matrix must be square")
    augmented = [list(row) + [1 if i == j else 0 for j in range(n)]
                 for i, row in enumerate(matrix)]
    for column in range(n):
        pivot_row = next(
            (r for r in range(column, n) if augmented[r][column] != 0), None
        )
        if pivot_row is None:
            raise ValueError("matrix is singular over GF(256)")
        augmented[column], augmented[pivot_row] = (
            augmented[pivot_row],
            augmented[column],
        )
        pivot_inverse = GF256.inverse(augmented[column][column])
        augmented[column] = [
            GF256.multiply(pivot_inverse, value) for value in augmented[column]
        ]
        for row in range(n):
            if row == column or augmented[row][column] == 0:
                continue
            factor = augmented[row][column]
            augmented[row] = [
                value ^ GF256.multiply(factor, pivot_value)
                for value, pivot_value in zip(augmented[row], augmented[column])
            ]
    return [row[n:] for row in augmented]
