"""SOUP integration of erasure-coded replication (Sec. 8 extension).

Instead of storing R full replicas, a large profile is encoded into n
fragments of size ``profile/k`` placed on n mirrors; the data is available
whenever at least k fragment holders are online.  This module provides the
placement plan, the availability semantics, and the comparison maths the
extension bench uses (full replication vs coding at equal storage budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.coding.reed_solomon import Fragment, ReedSolomonCode, ReedSolomonError


@dataclass(frozen=True)
class FragmentPlacement:
    """One fragment assigned to one mirror."""

    mirror: int
    fragment_index: int
    size_bytes: int


@dataclass
class CodedReplicationPlan:
    """A profile's erasure-coded placement."""

    owner: int
    n: int
    k: int
    profile_bytes: int
    placements: List[FragmentPlacement]

    @property
    def fragment_bytes(self) -> int:
        return (self.profile_bytes + self.k - 1) // self.k

    @property
    def stored_bytes(self) -> int:
        return sum(p.size_bytes for p in self.placements)

    @property
    def storage_overhead(self) -> float:
        """Stored bytes relative to the profile size (n/k for full plans)."""
        if self.profile_bytes == 0:
            return 0.0
        return self.stored_bytes / self.profile_bytes

    def holders(self) -> List[int]:
        return [p.mirror for p in self.placements]


def plan_for_profile(
    owner: int,
    profile_bytes: int,
    mirrors: Sequence[int],
    k: int,
) -> CodedReplicationPlan:
    """Place an (n, k) coding of the profile across the given mirrors.

    ``n`` is the number of mirrors supplied; each mirror holds exactly one
    fragment (the paper's point: no single node is burdened with the whole
    large profile).
    """
    n = len(mirrors)
    if n < k:
        raise ReedSolomonError(f"need at least k={k} mirrors, got {n}")
    if profile_bytes < 0:
        raise ValueError("profile size cannot be negative")
    fragment_bytes = (profile_bytes + k - 1) // k if profile_bytes else 0
    placements = [
        FragmentPlacement(mirror=mirror, fragment_index=index, size_bytes=fragment_bytes)
        for index, mirror in enumerate(mirrors)
    ]
    return CodedReplicationPlan(
        owner=owner, n=n, k=k, profile_bytes=profile_bytes, placements=placements
    )


def coded_availability(
    plan: CodedReplicationPlan, online: Dict[int, bool] | np.ndarray
) -> bool:
    """Data available iff ≥ k fragment holders are online."""
    if isinstance(online, np.ndarray):
        online_count = int(sum(bool(online[p.mirror]) for p in plan.placements))
    else:
        online_count = sum(1 for p in plan.placements if online.get(p.mirror, False))
    return online_count >= plan.k


def availability_probability(
    holder_probabilities: Sequence[float], k: int
) -> float:
    """P(at least k of the holders online), holders independent.

    Dynamic-programming over the Poisson-binomial distribution — used to
    size (n, k) against a target error rate the same way Algorithm 1 sizes
    full replica sets against ε.
    """
    if k <= 0:
        return 1.0
    n = len(holder_probabilities)
    if n < k:
        return 0.0
    # dp[j] = P(exactly j holders online so far)
    dp = np.zeros(n + 1)
    dp[0] = 1.0
    for probability in holder_probabilities:
        dp[1:] = dp[1:] * (1 - probability) + dp[:-1] * probability
        dp[0] *= 1 - probability
    return float(dp[k:].sum())


def equivalent_full_replication(
    holder_probabilities: Sequence[float], epsilon: float
) -> int:
    """Full replicas needed for the same availability target (Eq. 2)."""
    perr = 1.0
    count = 0
    for probability in sorted(holder_probabilities, reverse=True):
        if perr <= epsilon:
            break
        perr *= 1.0 - probability
        count += 1
    return count
