"""LRU/TTL read-cache tier over mirrors (Masinde et al. baseline).

Caching structures for P2P social networks keep hot profiles on the
*readers'* side: once a friend's profile has been fetched from a mirror,
subsequent reads within a freshness window are served locally, cutting
mirror load and surviving short mirror-offline windows.  This baseline
implements a per-reader LRU with a TTL:

* A successful mirror fetch inserts ``owner`` into the reader's cache
  stamped with the fetch epoch.
* A later read hits if the entry is younger than
  ``arch_cache_ttl_epochs``; the mirrors are *not* contacted — which
  deliberately starves the experience sets of observations (cached
  reads produce no mirror evidence).  That trade-off is real in any
  cache-over-reputation design, and it is exactly what the head-to-head
  comparison is for.
* The cache holds ``arch_cache_capacity`` owners per reader; insertion
  beyond capacity evicts the least recently used entry.

Availability accounting: an owner counts as available if any reader
holds a fresh cached copy — the cache is an extra serving tier, tracked
through a reverse index so the per-epoch measurement stays vectorized.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List

import numpy as np

from repro.arch.base import Architecture, ReadPathStrategy, register_architecture


class MirrorReadCache(ReadPathStrategy):
    """Per-reader LRU/TTL cache of recently fetched profiles."""

    name = "cache"

    def __init__(self, capacity: int = 8, ttl_epochs: int = 6) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        if ttl_epochs < 1:
            raise ValueError(f"cache TTL must be positive, got {ttl_epochs}")
        self.capacity = capacity
        self.ttl_epochs = ttl_epochs

        #: reader -> OrderedDict(owner -> insert_epoch), LRU order (oldest
        #: use first).
        self._by_reader: Dict[int, "OrderedDict[int, int]"] = {}
        #: owner -> {reader: insert_epoch} — the reverse index the
        #: availability measurement walks.
        self._holders: Dict[int, Dict[int, int]] = {}

        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self._staleness_sum = 0
        self._staleness_samples = 0

    # ------------------------------------------------------------------
    def _drop(self, reader: int, owner: int) -> None:
        entries = self._by_reader.get(reader)
        if entries is not None:
            entries.pop(owner, None)
        holders = self._holders.get(owner)
        if holders is not None:
            holders.pop(reader, None)
            if not holders:
                del self._holders[owner]

    def try_serve(self, reader: int, owner: int, epoch: int) -> bool:
        entries = self._by_reader.get(reader)
        if entries is None or owner not in entries:
            self.misses += 1
            return False
        inserted = entries[owner]
        if epoch - inserted >= self.ttl_epochs:
            self.expirations += 1
            self.misses += 1
            self._drop(reader, owner)
            return False
        entries.move_to_end(owner)
        self.hits += 1
        self._staleness_sum += epoch - inserted
        self._staleness_samples += 1
        return True

    def on_fetch(self, reader: int, owner: int, epoch: int, success: bool) -> None:
        if not success:
            return
        entries = self._by_reader.setdefault(reader, OrderedDict())
        if owner in entries:
            entries.move_to_end(owner)
        elif len(entries) >= self.capacity:
            evicted, _ = entries.popitem(last=False)
            holders = self._holders.get(evicted)
            if holders is not None:
                holders.pop(reader, None)
                if not holders:
                    del self._holders[evicted]
            self.evictions += 1
        entries[owner] = epoch
        self._holders.setdefault(owner, {})[reader] = epoch

    def invalidate(self, owner: int) -> None:
        holders = self._holders.pop(owner, None)
        if not holders:
            return
        self.invalidations += len(holders)
        for reader in holders:
            entries = self._by_reader.get(reader)
            if entries is not None:
                entries.pop(owner, None)

    # ------------------------------------------------------------------
    def fresh_readers(self, owner: int) -> Iterable[int]:
        return list(self._holders.get(owner, ()))

    def available_owners(self, online_now: np.ndarray, epoch: int) -> List[int]:
        """Owners some *online* reader holds a fresh copy of."""
        served = []
        for owner, holders in self._holders.items():
            for reader, inserted in holders.items():
                if epoch - inserted < self.ttl_epochs and online_now[reader]:
                    served.append(owner)
                    break
        return served

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": float(self.evictions),
            "expirations": float(self.expirations),
            "invalidations": float(self.invalidations),
            "mean_staleness_epochs": (
                self._staleness_sum / self._staleness_samples
                if self._staleness_samples
                else 0.0
            ),
        }


@register_architecture("cache")
def _make_cache(config=None) -> Architecture:
    return Architecture(
        name="cache",
        read_path=MirrorReadCache(
            capacity=getattr(config, "arch_cache_capacity", 8) or 8,
            ttl_epochs=getattr(config, "arch_cache_ttl_epochs", 6) or 6,
        ),
    )
