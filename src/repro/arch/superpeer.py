"""Super-peer mirror economy (SuperNova-style baseline).

Sharma & Datta's SuperNova organizes a DOSN around *super-peers*: nodes
with high availability and spare capacity volunteer to host data for
"weak" nodes that cannot assemble a good mirror set from their own
social neighbourhood.  This baseline reproduces that economy on top of
SOUP's machinery:

* **Election.**  Each selection round, joined benign nodes with observed
  uptime ≥ ``arch_superpeer_min_uptime`` are ranked by (uptime,
  capacity) and the top ``arch_superpeer_fraction`` of the population
  volunteer as super-peers.  Departed or churned-out super-peers are
  demoted and replaced — re-election on churn.
* **Capacity accounting.**  Every super-peer advertises a bounded number
  of hosting *slots* derived from its storage capacity (or the
  ``arch_superpeer_slots`` override).  Commitments decrement the free
  slots; a full super-peer stops being offered.
* **Selection.**  Weak owners (observed uptime below the election bar)
  get available super-peers spliced into their candidate ranking at a
  high trust rank, so Algorithm 1 greedily picks them first; strong
  owners keep the plain SOUP ranking.  Algorithm 1 itself — the ε
  target, the social filter, exploration — runs unchanged, so the
  K-replication invariant holds by construction.

The strategy draws no RNG and mutates no engine state: elections are a
pure function of the engine view, so columnar and reference runs stay
byte-identical.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.base import (
    Architecture,
    MirrorSelectionStrategy,
    register_architecture,
)
from repro.core.config import SoupConfig
from repro.core.selection import SelectionResult, select_mirrors

#: Rank assigned to an offered super-peer slot.  Just below a perfect
#: 1.0 experience so first-hand evidence of a *better* mirror still
#: wins, but above every bootstrap-prior candidate.
SUPERPEER_RANK = 0.95


class SuperPeerEconomy(MirrorSelectionStrategy):
    """Elected super-peers host mirrors for weak nodes."""

    name = "superpeer"

    def __init__(
        self,
        fraction: float = 0.05,
        min_uptime: float = 0.6,
        slots_override: Optional[int] = None,
    ) -> None:
        self.fraction = fraction
        self.min_uptime = min_uptime
        self.slots_override = slots_override

        #: super-peer id -> free hosting slots this round.
        self.free_slots: Dict[int, int] = {}
        #: Current super-peer set, in election (quality) order.
        self.superpeers: List[int] = []
        self._uptime: Dict[int, float] = {}

        # Counters for the `arch.selection.*` metric group.
        self.elections = 0
        self.demotions = 0
        self.weak_owners_boosted = 0
        self.slots_committed = 0
        self._slots_total_last = 0

    # ------------------------------------------------------------------
    def begin_round(self, view, epoch: int) -> None:
        """Re-elect the super-peer roster from the engine view.

        Deterministic: candidates are ranked by (uptime, capacity,
        node id) — no RNG, no dependence on dict iteration order.
        """
        previous = set(self.superpeers)
        uptime = view.observed_uptime(epoch)
        capacities = view.capacities
        # The engine view hands dense arrays indexed by node id; the
        # deployment view hands dicts keyed by (sparse) SOUP ids.
        if hasattr(capacities, "keys"):
            population = sorted(capacities.keys())
        else:
            population = range(len(capacities))
        n_total = len(population)
        candidates = [
            node_id
            for node_id in population
            if view.is_electable(node_id) and uptime[node_id] >= self.min_uptime
        ]
        candidates.sort(
            key=lambda nid: (-uptime[nid], -capacities[nid], nid)
        )
        quota = max(1, int(round(n_total * self.fraction)))
        elected = candidates[:quota]

        self.demotions += sum(1 for nid in previous if nid not in set(elected))
        self.elections += 1
        self.superpeers = elected
        self._uptime = {nid: float(uptime[nid]) for nid in elected}
        self.free_slots = {nid: self._slots_for(capacities[nid]) for nid in elected}
        self._slots_total_last = sum(self.free_slots.values())
        self._owner_uptime = uptime

    def _slots_for(self, capacity: float) -> int:
        if self.slots_override is not None:
            return max(1, int(self.slots_override))
        # A super-peer pledges half its storage capacity to the economy,
        # keeping the rest for organically selected replicas.
        return max(1, int(capacity // 2))

    # ------------------------------------------------------------------
    def augment_ranking(
        self, owner: int, ranking: Sequence[Tuple[int, float]], exclude: Iterable[int]
    ) -> List[Tuple[int, float]]:
        """Splice open super-peers into a weak owner's candidate list."""
        uptime = getattr(self, "_owner_uptime", None)
        if uptime is None or uptime[owner] >= self.min_uptime:
            return list(ranking)
        excluded = set(exclude)
        offers = [
            nid
            for nid in self.superpeers
            if self.free_slots.get(nid, 0) > 0 and nid != owner and nid not in excluded
        ]
        if not offers:
            return list(ranking)
        self.weak_owners_boosted += 1
        offered = set(offers)
        kept = [(nid, rank) for nid, rank in ranking if nid not in offered]
        return [(nid, SUPERPEER_RANK) for nid in offers] + kept

    def select(
        self,
        owner: int,
        ranking: Sequence[Tuple[int, float]],
        friends: Iterable[int],
        config: SoupConfig,
        rng: random.Random,
        exploration_pool: Iterable[int] = (),
        exclude: Iterable[int] = (),
    ) -> SelectionResult:
        return select_mirrors(
            ranking=self.augment_ranking(owner, ranking, exclude),
            friends=friends,
            config=config,
            rng=rng,
            exploration_pool=exploration_pool,
            exclude=exclude,
        )

    def on_commit(self, owner: int, accepted: List[int], epoch: int) -> None:
        for mirror_id in accepted:
            free = self.free_slots.get(mirror_id)
            if free is not None and free > 0:
                self.free_slots[mirror_id] = free - 1
                self.slots_committed += 1

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        total = self._slots_total_last
        free = sum(self.free_slots.values())
        return {
            "superpeer_count": float(len(self.superpeers)),
            "elections": float(self.elections),
            "demotions": float(self.demotions),
            "weak_owners_boosted": float(self.weak_owners_boosted),
            "slots_committed": float(self.slots_committed),
            "slot_utilization": (
                (total - free) / total if total > 0 else 0.0
            ),
        }


@register_architecture("superpeer")
def _make_superpeer(config=None) -> Architecture:
    return Architecture(
        name="superpeer",
        selection=SuperPeerEconomy(
            fraction=getattr(config, "arch_superpeer_fraction", 0.05),
            min_uptime=getattr(config, "arch_superpeer_min_uptime", 0.6),
            slots_override=getattr(config, "arch_superpeer_slots", None),
        ),
    )
