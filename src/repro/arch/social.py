"""Socially-aware Pastry placement and routing (Nasir et al. baseline).

Nasir et al.'s socially-aware DHTs exploit that OSN reads are dominated
by friend traffic: placing a user's directory data *near her friend
cluster* and giving routers direct shortcuts to friends' DHT positions
cuts both lookup hops and control traffic.  This baseline implements
both halves against our Pastry overlay:

* :class:`SocialPlacement` remaps a user's directory key into the ID
  neighbourhood of her *anchor* — the friend-cluster position derived
  from her social circle.  The mapped key keeps the low bits of the
  original key (uniqueness) but takes the anchor's high bits, so the
  entry lands on a node numerically close to where her friends route
  from.  ``map_key`` is pure, so publish and lookup agree without any
  coordination messages.

* :class:`SocialRouting` gives every node one-hop shortcuts to its
  friends' DHT IDs.  The overlay filters the offered candidates through
  its monotone progress rule (``PastryOverlay._next_hop``), so
  shortcuts can only shorten routes — termination and responsibility
  are untouched.  Friend-cluster reads typically reach the anchor
  neighbourhood in one jump instead of O(log n) prefix hops.

The two strategies share one :class:`SocialMap`, populated once from the
friendship graph (anchors + shortcut lists).  Everything is
deterministic — no RNG, no dependence on iteration order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.arch.base import (
    Architecture,
    PlacementStrategy,
    RoutingPolicy,
    register_architecture,
)

#: How many high bits of the key the anchor contributes.  The top 32
#: bits select the neighbourhood; the low 32 bits keep per-user keys
#: unique within it (collision probability ~n²/2³² — negligible at the
#: scales the simulator runs).
ANCHOR_BITS = 32
_LOW_MASK = (1 << ANCHOR_BITS) - 1


class SocialMap:
    """Shared social state: per-user anchors and per-node shortcuts."""

    def __init__(self) -> None:
        #: original directory key -> anchor DHT id (the cluster position).
        self.anchors: Dict[int, int] = {}
        #: DHT node id -> friend DHT ids (routing shortcuts).
        self.shortcuts: Dict[int, Tuple[int, ...]] = {}

    def register_anchor(self, key: int, anchor_id: int) -> None:
        self.anchors[key] = anchor_id

    def register_shortcuts(self, node_id: int, friend_ids: Iterable[int]) -> None:
        self.shortcuts[node_id] = tuple(friend_ids)


class SocialPlacement(PlacementStrategy):
    """Publish/lookup keys remapped into the owner's friend cluster."""

    name = "social"

    def __init__(self, social_map: SocialMap) -> None:
        self.map = social_map
        self.remapped = 0
        self.unanchored = 0

    def bind_social_graph(self, friends_of, dht_id_of) -> None:
        build_social_map(self.map, friends_of, dht_id_of)

    def map_key(self, key: int) -> int:
        anchor = self.map.anchors.get(key)
        if anchor is None:
            self.unanchored += 1
            return key
        self.remapped += 1
        return (anchor & ~_LOW_MASK) | (key & _LOW_MASK)

    def metrics(self) -> Dict[str, float]:
        return {
            "keys_remapped": float(self.remapped),
            "keys_unanchored": float(self.unanchored),
        }


class SocialRouting(RoutingPolicy):
    """Friend-position shortcuts offered as extra next-hop candidates."""

    name = "social"

    def __init__(self, social_map: SocialMap) -> None:
        self.map = social_map
        self.offers = 0

    def bind_social_graph(self, friends_of, dht_id_of) -> None:
        # The map is shared with the placement strategy; rebuilding is
        # idempotent (same deterministic anchors/shortcuts).
        build_social_map(self.map, friends_of, dht_id_of)

    def extra_candidates(self, node_id: int, key: int) -> Iterable[int]:
        shortcuts = self.map.shortcuts.get(node_id, ())
        if shortcuts:
            self.offers += 1
        return shortcuts

    def metrics(self) -> Dict[str, float]:
        return {"shortcut_offers": float(self.offers)}


def cluster_anchor(friend_dht_ids: List[int], own_dht_id: int) -> int:
    """The cluster position for a user: the median friend DHT id.

    The median is robust (one far-flung friend does not drag the anchor
    away from the cluster) and deterministic.  Friendless users anchor
    at their own position — plain Pastry placement.
    """
    if not friend_dht_ids:
        return own_dht_id
    ordered = sorted(friend_dht_ids)
    return ordered[len(ordered) // 2]


def build_social_map(
    social_map: SocialMap,
    friends_of: Dict[int, List[int]],
    dht_id_of,
) -> None:
    """Populate anchors and shortcuts from a friendship adjacency map.

    ``dht_id_of`` maps an application node id to its DHT id (the
    simulator's shadow probe and the deployment use different ID
    derivations, so the mapping is injected).
    """
    for node_id in sorted(friends_of):
        own = dht_id_of(node_id)
        friend_ids = [dht_id_of(f) for f in friends_of[node_id]]
        social_map.register_anchor(own, cluster_anchor(friend_ids, own))
        social_map.register_shortcuts(own, friend_ids)


@register_architecture("social_dht")
def _make_social(config=None) -> Architecture:
    social_map = SocialMap()
    return Architecture(
        name="social_dht",
        placement=SocialPlacement(social_map),
        routing=SocialRouting(social_map),
    )
