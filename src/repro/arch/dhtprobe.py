"""Shadow DHT probe: an observational Pastry ring beside the simulator.

The epoch simulator (:mod:`repro.sim.engine`) models directory state as
plain attributes — it never routes through :class:`PastryOverlay`, so it
cannot answer the questions the head-to-head comparison asks: *how many
hops does a lookup take under this architecture, and how much control
traffic does churn cost?*

The probe mirrors the simulation's membership and directory events into
a real Pastry ring and measures them there, **without feeding anything
back**: the simulated protocol behaviour (selection, availability,
replica placement) is untouched, and the overlay itself draws no RNG,
so enabling the probe cannot perturb the run.  Event mapping:

========================  =============================================
simulator event            probe action
========================  =============================================
node joins the OSN         ``overlay.join`` (join-route hops counted)
node departs/crashes       ``overlay.fail`` (entries lost — honest
                           churn cost; owners republish next round)
mirror set committed       ``overlay.publish`` of the directory entry
profile requested          ``overlay.lookup`` from the reader
========================  =============================================

Control traffic = join-route hops + publish-route hops + every entry
shifted by churn repair (the overlay's ``transfer_log``).  Architecture
strategies plug in through the overlay's placement/routing hooks, so
the same probe measures plain Pastry and the socially-aware variant.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from repro.arch.base import Architecture
from repro.dht.pastry import DhtError, PastryOverlay
from repro.dht.storage import DirectoryEntry


def derive_dht_id(node_id: int) -> int:
    """Deterministic 64-bit DHT id for a simulator node id.

    SOUP IDs are hashes of the owner's public key (Sec. 3.1); the
    simulator has no keys, so the id is a hash of the node id — uniform
    over the ring, stable across runs and engine modes.
    """
    digest = hashlib.blake2b(
        node_id.to_bytes(8, "big"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class DhtProbe:
    """Observational Pastry ring mirroring the simulation's membership."""

    def __init__(self, architecture: Architecture) -> None:
        self.architecture = architecture
        self.overlay = PastryOverlay()
        if architecture.placement is not None:
            self.overlay.set_placement(architecture.placement)
        if architecture.routing is not None:
            self.overlay.set_routing_policy(architecture.routing)
        self.overlay.set_liveness(self._member_online)

        #: node id -> DHT id (collisions resolved by deterministic probing).
        self._ids: Dict[int, int] = {}
        self._claimed: Dict[int, int] = {}
        self._versions: Dict[int, int] = {}
        self._online: Optional[np.ndarray] = None

        self.joins = 0
        self.departures = 0
        self.publishes = 0
        self.publish_failures = 0
        self.lookups = 0
        self.lookup_failures = 0
        self._lookup_hops_sum = 0
        self._route_control_messages = 0
        self._node_epochs = 0

    # ------------------------------------------------------------------
    def dht_id(self, node_id: int) -> int:
        known = self._ids.get(node_id)
        if known is not None:
            return known
        candidate = derive_dht_id(node_id)
        while self._claimed.get(candidate, node_id) != node_id:
            candidate = (candidate + 1) % (1 << 64)
        self._ids[node_id] = candidate
        self._claimed[candidate] = node_id
        return candidate

    def _member_online(self, dht_id: int) -> bool:
        node_id = self._claimed.get(dht_id)
        if node_id is None or self._online is None:
            return True
        return bool(self._online[node_id])

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int, online_now: np.ndarray) -> None:
        self._online = online_now
        self._node_epochs += len(self.overlay)

    def on_join(self, node_id: int) -> None:
        dht_id = self.dht_id(node_id)
        if dht_id in self.overlay:
            return
        bootstrap = None
        if len(self.overlay):
            # Deterministic bootstrap: the lowest-id current member.
            bootstrap = min(self.overlay.node_ids())
        route = self.overlay.join(dht_id, bootstrap_id=bootstrap)
        self.joins += 1
        self._route_control_messages += route.hops

    def on_depart(self, node_id: int) -> None:
        dht_id = self._ids.get(node_id)
        if dht_id is None or dht_id not in self.overlay:
            return
        # Abrupt failure: entries vanish with the node.  Owners republish
        # at their next selection commit — the honest churn cost.
        self.overlay.fail(dht_id)
        self.departures += 1

    def on_publish(self, owner: int, mirrors: List[int], epoch: int) -> None:
        dht_id = self.dht_id(owner)
        if dht_id not in self.overlay:
            return
        version = self._versions.get(owner, -1) + 1
        self._versions[owner] = version
        entry = DirectoryEntry(
            soup_id=dht_id,
            name=str(owner),
            mirror_ids=tuple(self.dht_id(m) for m in mirrors),
            version=version,
        )
        try:
            route = self.overlay.publish(dht_id, dht_id, entry)
        except DhtError:
            self.publish_failures += 1
            return
        self.publishes += 1
        self._route_control_messages += route.hops
        if not route.delivered:
            self.publish_failures += 1

    def on_lookup(self, reader: int, owner: int) -> None:
        from_id = self.dht_id(reader)
        if from_id not in self.overlay:
            return
        key = self.dht_id(owner)
        try:
            entry, route = self.overlay.lookup(from_id, key)
        except DhtError:
            self.lookup_failures += 1
            return
        self.lookups += 1
        self._lookup_hops_sum += route.hops
        if entry is None:
            self.lookup_failures += 1

    # ------------------------------------------------------------------
    def control_messages(self) -> int:
        """Join + publish route hops plus churn-shifted entries."""
        return self._route_control_messages + len(self.overlay.transfer_log)

    def metrics(self) -> Dict[str, float]:
        return {
            "joins": float(self.joins),
            "departures": float(self.departures),
            "publishes": float(self.publishes),
            "publish_failures": float(self.publish_failures),
            "lookups": float(self.lookups),
            "lookup_failures": float(self.lookup_failures),
            "mean_lookup_hops": (
                self._lookup_hops_sum / self.lookups if self.lookups else 0.0
            ),
            "control_messages": float(self.control_messages()),
            "control_per_node_epoch": (
                self.control_messages() / self._node_epochs
                if self._node_epochs
                else 0.0
            ),
        }
