"""Pluggable DOSN architectures: strategy seams + executable baselines.

See :mod:`repro.arch.base` for the strategy interfaces and
``docs/ARCHITECTURES.md`` for the design.  Importing this package
registers the built-in architectures::

    soup        the paper's own design (no seam overridden; byte-identical
                to the pre-refactor engine)
    superpeer   SuperNova-style super-peer mirror economy
    social_dht  socially-aware Pastry placement + friend-shortcut routing
    cache       LRU/TTL read-cache tier over mirrors
"""

from repro.arch.base import (
    ARCHITECTURES,
    Architecture,
    MirrorSelectionStrategy,
    PlacementStrategy,
    ReadPathStrategy,
    RoutingPolicy,
    SoupSelectionStrategy,
    architecture_names,
    create_architecture,
    gini,
    register_architecture,
)
from repro.arch.cache import MirrorReadCache
from repro.arch.dhtprobe import DhtProbe, derive_dht_id
from repro.arch.social import SocialMap, SocialPlacement, SocialRouting, build_social_map
from repro.arch.superpeer import SuperPeerEconomy

__all__ = [
    "ARCHITECTURES",
    "Architecture",
    "DhtProbe",
    "MirrorReadCache",
    "MirrorSelectionStrategy",
    "PlacementStrategy",
    "ReadPathStrategy",
    "RoutingPolicy",
    "SocialMap",
    "SocialPlacement",
    "SocialRouting",
    "SoupSelectionStrategy",
    "SuperPeerEconomy",
    "architecture_names",
    "build_social_map",
    "create_architecture",
    "derive_dht_id",
    "gini",
    "register_architecture",
]
