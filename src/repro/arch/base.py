"""Strategy interfaces for pluggable DOSN architectures.

SOUP's evaluation (Sec. 5.3) compares against PeerSoN, Safebook and
Cachet only through analytic replication models — the alternatives never
run through the same engine, overlay, and churn machinery.  This module
extracts the hard-wired seams into explicit strategy interfaces so
alternative architectures become *executable* baselines:

* :class:`MirrorSelectionStrategy` — wraps the Eq. (1) ranking +
  Algorithm 1 seam (``SoupSimulation._select_and_place`` /
  ``MirrorManager.run_selection``).
* :class:`PlacementStrategy` — remaps the key under which a directory
  entry is published/looked up (``PastryOverlay.publish/lookup``).
* :class:`RoutingPolicy` — offers extra next-hop candidates to Pastry's
  prefix routing (``PastryOverlay._next_hop``), subject to the overlay's
  monotone-progress rule so termination is preserved.
* :class:`ReadPathStrategy` — intercepts profile reads before they hit
  the mirrors (``SoupSimulation._request_profile`` /
  ``SoupNode.request_profile``).

An :class:`Architecture` bundles one (or none) of each.  The default
``"soup"`` architecture binds *no* strategies: the engine takes zero
extra branches, keeping the paper-faithful path byte-identical under
``tests/sim/test_equivalence.py``.

Strategies are deliberately **RNG-free**: all randomness stays inside
Algorithm 1 (:func:`repro.core.selection.select_mirrors`), driven by the
engine's own ``random.Random`` stream.  That keeps columnar-vs-reference
runs byte-identical even for non-default architectures, and makes every
head-to-head comparison replayable from ``(config, seed)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SoupConfig
from repro.core.selection import SelectionResult, select_mirrors

#: Architecture names accepted by ``ScenarioConfig.architecture`` (and the
#: ``soup compare`` CLI).  Registration order is the comparison-table order.
ARCHITECTURES: Dict[str, Callable[..., "Architecture"]] = {}


def register_architecture(name: str):
    """Class/function decorator adding a factory to :data:`ARCHITECTURES`."""

    def wrap(factory):
        ARCHITECTURES[name] = factory
        return factory

    return wrap


def architecture_names() -> List[str]:
    return list(ARCHITECTURES)


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative load distribution.

    0 = every node carries the same load, →1 = one node carries it all.
    The storage-share fairness number in the comparison table: SOUP's own
    claim is that the *upper half* by online time carries >90 % of the
    replicas (Sec. 5.2.2), so a useful baseline comparison needs the whole
    distribution summarized, not just that one split.
    """
    values = np.sort(np.asarray(counts, dtype=float))
    n = len(values)
    total = values.sum()
    if n == 0 or total <= 0.0:
        return 0.0
    # Standard rank formulation: G = (2 Σ i·x_i)/(n Σ x) - (n+1)/n.
    ranks = np.arange(1, n + 1)
    return float(2.0 * (ranks * values).sum() / (n * total) - (n + 1) / n)


# ----------------------------------------------------------------------
# strategy interfaces
# ----------------------------------------------------------------------
class MirrorSelectionStrategy:
    """Chooses a node's mirror set each selection opportunity.

    The engine (or ``MirrorManager``) supplies the same inputs Algorithm 1
    consumes; a strategy may rewrite the candidate ranking, delegate to
    :func:`select_mirrors`, or replace the algorithm outright.  The
    K-replication contract every implementation must honour (enforced by
    ``tests/property/test_arch_properties.py``): never more than
    ``config.max_mirrors`` mirrors, never a node from ``exclude``
    (owner, blacklisting/rejecting peers, offline candidates), and no
    duplicates.
    """

    name = "strategy"

    def begin_round(self, view, epoch: int) -> None:
        """Called once per selection round before any :meth:`select`.

        ``view`` is the engine (duck-typed): strategies may read uptime
        (``observed_uptime``), capacities, departure flags and replica
        locations — but must not mutate engine state or draw RNG.
        """

    def select(
        self,
        owner: int,
        ranking: Sequence[Tuple[int, float]],
        friends: Iterable[int],
        config: SoupConfig,
        rng: random.Random,
        exploration_pool: Iterable[int] = (),
        exclude: Iterable[int] = (),
    ) -> SelectionResult:
        raise NotImplementedError

    def on_commit(self, owner: int, accepted: List[int], epoch: int) -> None:
        """The mirror set that actually accepted (capacity accounting)."""

    def metrics(self) -> Dict[str, float]:
        return {}


class PlacementStrategy:
    """Remaps directory keys before the overlay routes them.

    ``map_key`` must be a pure function of the key and registered state —
    publish and lookup both call it, so both sides agree on where an
    entry lives without any extra coordination traffic.
    """

    name = "placement"

    def bind_social_graph(self, friends_of, dht_id_of) -> None:
        """Offer the friendship adjacency + node→DHT-id mapping.

        Called once after population build (engine) or friendship setup
        (deployment); socially-aware strategies derive their anchors and
        shortcuts here.  Default: ignore it.
        """

    def map_key(self, key: int) -> int:
        return key

    def metrics(self) -> Dict[str, float]:
        return {}


class RoutingPolicy:
    """Offers additional next-hop candidates to Pastry prefix routing.

    The overlay filters every offered candidate through its monotone
    ``(ring_distance, node_id)`` progress rule, so a policy can only
    *shorten* routes, never create loops or change the responsible node.
    """

    name = "routing"

    def bind_social_graph(self, friends_of, dht_id_of) -> None:
        """Same contract as :meth:`PlacementStrategy.bind_social_graph`."""

    def extra_candidates(self, node_id: int, key: int) -> Iterable[int]:
        return ()

    def metrics(self) -> Dict[str, float]:
        return {}


class ReadPathStrategy:
    """Intercepts profile reads before they reach the owner's mirrors."""

    name = "read_path"

    def begin_epoch(self, epoch: int) -> None:
        """Epoch boundary (TTL bookkeeping)."""

    def try_serve(self, reader: int, owner: int, epoch: int) -> bool:
        """True when the read was served locally (mirrors untouched)."""
        return False

    def on_fetch(
        self, reader: int, owner: int, epoch: int, success: bool
    ) -> None:
        """A mirror-path fetch completed (populate on success)."""

    def invalidate(self, owner: int) -> None:
        """Owner's data changed or departed — drop cached copies."""

    def fresh_readers(self, owner: int) -> Iterable[int]:
        """Readers currently holding a live cached copy of ``owner``."""
        return ()

    def available_owners(self, online_now: np.ndarray, epoch: int) -> Iterable[int]:
        """Owners reachable through the cache tier this epoch."""
        return ()

    def metrics(self) -> Dict[str, float]:
        return {}


# ----------------------------------------------------------------------
# the default architecture: plain SOUP
# ----------------------------------------------------------------------
class SoupSelectionStrategy(MirrorSelectionStrategy):
    """Paper-faithful Algorithm 1, unchanged — the identity strategy."""

    name = "soup"

    def select(
        self,
        owner: int,
        ranking: Sequence[Tuple[int, float]],
        friends: Iterable[int],
        config: SoupConfig,
        rng: random.Random,
        exploration_pool: Iterable[int] = (),
        exclude: Iterable[int] = (),
    ) -> SelectionResult:
        return select_mirrors(
            ranking=ranking,
            friends=friends,
            config=config,
            rng=rng,
            exploration_pool=exploration_pool,
            exclude=exclude,
        )


@dataclass
class Architecture:
    """One architecture = a named bundle of (optional) strategies.

    ``None`` means "keep the hard-wired SOUP behaviour at that seam" —
    the engine takes the exact pre-refactor code path, so an architecture
    only pays for the seams it actually overrides.
    """

    name: str
    selection: Optional[MirrorSelectionStrategy] = None
    placement: Optional[PlacementStrategy] = None
    routing: Optional[RoutingPolicy] = None
    read_path: Optional[ReadPathStrategy] = None
    #: Extra per-architecture metric groups merged into :meth:`metrics`
    #: (the shadow-DHT probe reports through this).
    extra_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def metrics(self) -> Dict[str, Dict[str, float]]:
        """Nested ``{component: {metric: value}}`` for the result's
        ``arch`` section — flattened to ``arch.<component>.<metric>`` in
        ``SimulationResult.summary()`` for sweep aggregation."""
        groups: Dict[str, Dict[str, float]] = {}
        for component, strategy in (
            ("selection", self.selection),
            ("placement", self.placement),
            ("routing", self.routing),
            ("cache", self.read_path),
        ):
            if strategy is not None:
                numbers = strategy.metrics()
                if numbers:
                    groups[component] = dict(numbers)
        for component, numbers in self.extra_metrics.items():
            merged = groups.setdefault(component, {})
            merged.update(numbers)
        return groups


@register_architecture("soup")
def _make_soup(config=None) -> Architecture:
    """The paper's own design: no seam overridden."""
    return Architecture(name="soup")


def create_architecture(name: str, config=None) -> Architecture:
    """Instantiate a registered architecture.

    ``config`` is the :class:`~repro.sim.scenario.ScenarioConfig` (or any
    object carrying the flat ``arch_*`` knobs); factories read their
    parameters from it and fall back to defaults when absent.
    """
    # Import for side effects: the baseline modules self-register.
    from repro.arch import cache, social, superpeer  # noqa: F401

    factory = ARCHITECTURES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown architecture {name!r} (known: {sorted(ARCHITECTURES)})"
        )
    return factory(config)
