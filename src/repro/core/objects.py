"""SOUP objects: the universal signed message format.

Fig. 1 of the paper shows the wire format: source, destination, a type tag,
a payload, and the owner's signature.  "Applications running on top of SOUP
can encapsulate payload (such as user data or friend requests) into SOUP
objects, and thereby exchange content transparently via the middleware"
(Sec. 3.6).
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Optional


class ObjectType(enum.Enum):
    """Message types used across the middleware and applications."""

    # Directory / DHT
    PUBLISH_ENTRY = "PUBLISH_ENTRY"
    LOOKUP_ENTRY = "LOOKUP_ENTRY"
    ENTRY_RESPONSE = "ENTRY_RESPONSE"
    RELAY = "RELAY"  # mobile node relaying a DHT op through a gateway

    # Social layer
    FRIEND_REQUEST = "FRIEND_REQUEST"
    FRIEND_CONFIRM = "FRIEND_CONFIRM"
    REQ_PROFILE = "REQ_PROFILE"
    PROFILE_RESPONSE = "PROFILE_RESPONSE"
    MESSAGE = "MESSAGE"

    # Mirror protocol
    STORE_REQUEST = "STORE_REQUEST"
    STORE_ACCEPT = "STORE_ACCEPT"
    STORE_REJECT = "STORE_REJECT"
    REPLICA_PUSH = "REPLICA_PUSH"
    UPDATE = "UPDATE"
    UPDATE_FORWARD = "UPDATE_FORWARD"  # update passed on to a mirror's mirrors
    UPDATE_COLLECT = "UPDATE_COLLECT"
    ES_EXCHANGE = "ES_EXCHANGE"
    RECOMMENDATION = "RECOMMENDATION"


_sequence = itertools.count()


@dataclass
class SoupObject:
    """One signed unit of SOUP communication.

    ``payload`` is an arbitrary JSON-serializable structure (or raw bytes for
    replica pushes); ``signature`` is the RSA signature integer attached by
    the security manager, or ``None`` while the object is still in-node.
    ``timestamp`` orders updates during synchronization (Sec. 3.5).
    """

    source: int
    dest: int
    object_type: ObjectType
    payload: Any = None
    timestamp: float = 0.0
    signature: Optional[int] = None
    sequence: int = field(default_factory=lambda: next(_sequence))

    def signing_bytes(self) -> bytes:
        """The canonical byte string that the signature covers."""
        body = {
            "source": self.source,
            "dest": self.dest,
            "type": self.object_type.value,
            "timestamp": self.timestamp,
            "sequence": self.sequence,
        }
        if isinstance(self.payload, bytes):
            head = json.dumps(body, sort_keys=True).encode("utf-8")
            return head + b"|" + self.payload
        body["payload"] = self.payload
        return json.dumps(body, sort_keys=True, default=_json_fallback).encode("utf-8")

    def size_bytes(self) -> int:
        """Approximate wire size for traffic accounting.

        Header fields (two 8-byte IDs, type tag, timestamp, sequence) plus a
        1024-bit signature plus the payload.
        """
        if isinstance(self.payload, bytes):
            payload_size = len(self.payload)
        elif self.payload is None:
            payload_size = 0
        else:
            payload_size = len(
                json.dumps(self.payload, default=_json_fallback).encode("utf-8")
            )
        return 8 + 8 + 16 + 8 + 8 + 128 + payload_size

    def is_signed(self) -> bool:
        return self.signature is not None


def _json_fallback(value: Any) -> Any:
    """Serialize objects the payloads commonly embed (sets, dataclasses)."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if hasattr(value, "__dict__"):
        return vars(value)
    raise TypeError(f"cannot serialize {type(value)!r}")
