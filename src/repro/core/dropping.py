"""Protective dropping (paper Sec. 4.6).

A mirror with exhausted storage must decide which replica to drop, and must
defend itself against sybil flooders.  For each node ``w`` storing data at
``v``, ``v`` maintains a dropping score ``d_w``:

* when an experience-set exchange with friend ``u`` reveals that ``w`` also
  stores at ``u``, ``d_w += 1`` (flooders who store everywhere score high;
  dropping a widely-replicated profile also hurts availability least);
* friends are protected: their score decreases by ``1/β`` per exchange;
* if ``v`` holds a copy of ``w``'s data but is **not** in ``w``'s published
  mirror set, ``d_w += c`` (announced/real mismatch signals flooding);
* at ``d_w ≥ θ`` the owner is blacklisted (θ=300, c=100: three strikes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.config import SoupConfig


@dataclass
class ReplicaInfo:
    """Metadata a mirror keeps about one stored replica."""

    owner: int
    size_profiles: float = 1.0
    is_friend: bool = False


@dataclass(frozen=True)
class StoreDecision:
    """Outcome of a storage request at a mirror."""

    accepted: bool
    dropped_owner: Optional[int] = None
    reason: str = ""


class _ScoreTable(Dict[int, float]):
    """Dropping scores with a running upper bound.

    ``ceiling`` bounds every stored score from above (stale-high after
    score decreases, tightened on each full blacklist scan), which lets
    :meth:`ReplicaStore._check_blacklist` skip the all-owners scan while
    nothing can possibly have reached θ.  Tracking happens in
    ``__setitem__`` so even direct score writes keep the bound valid.
    """

    ceiling: float = 0.0

    def __setitem__(self, owner: int, score: float) -> None:
        super().__setitem__(owner, score)
        if score > self.ceiling:
            self.ceiling = score


class ReplicaStore:
    """A mirror's replica storage with protective dropping.

    ``capacity_profiles`` is the node's storage budget expressed in profile
    units (Sec. 5.1: Gaussian with median 50 profiles).
    """

    def __init__(self, owner: int, capacity_profiles: float, config: SoupConfig) -> None:
        if capacity_profiles <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_profiles}")
        self.owner = owner
        self.capacity_profiles = capacity_profiles
        self._config = config
        self._replicas: Dict[int, ReplicaInfo] = {}
        self._scores: _ScoreTable = _ScoreTable()
        self._blacklist: Set[int] = set()

    # --- inspection -------------------------------------------------------
    @property
    def used_profiles(self) -> float:
        return sum(info.size_profiles for info in self._replicas.values())

    @property
    def free_profiles(self) -> float:
        return self.capacity_profiles - self.used_profiles

    def stores_for(self, owner: int) -> bool:
        return owner in self._replicas

    def stored_owners(self) -> List[int]:
        return list(self._replicas)

    def replica_count(self) -> int:
        return len(self._replicas)

    def dropping_score(self, owner: int) -> float:
        return self._scores.get(owner, 0.0)

    def is_blacklisted(self, owner: int) -> bool:
        return owner in self._blacklist

    def blacklisted_owners(self) -> Set[int]:
        return set(self._blacklist)

    # --- storage protocol ---------------------------------------------------
    def request_store(
        self, owner: int, size_profiles: float = 1.0, is_friend: bool = False
    ) -> StoreDecision:
        """Handle a storage request; may evict a high-score replica.

        Friends' replicas are protected from eviction.  A request from a
        blacklisted owner is always rejected.
        """
        if owner == self.owner:
            raise ValueError("a node does not mirror its own data")
        if owner in self._blacklist:
            return StoreDecision(accepted=False, reason="blacklisted")
        if owner in self._replicas:
            # Refresh metadata (size or friendship may change).
            self._replicas[owner] = ReplicaInfo(owner, size_profiles, is_friend)
            return StoreDecision(accepted=True, reason="already stored")
        if size_profiles > self.capacity_profiles:
            return StoreDecision(accepted=False, reason="larger than capacity")

        dropped: Optional[int] = None
        while self.used_profiles + size_profiles > self.capacity_profiles:
            victim = self._pick_victim(requesting_owner=owner)
            if victim is None:
                return StoreDecision(accepted=False, reason="storage exhausted")
            del self._replicas[victim]
            dropped = victim

        self._replicas[owner] = ReplicaInfo(owner, size_profiles, is_friend)
        return StoreDecision(accepted=True, dropped_owner=dropped, reason="stored")

    def remove(self, owner: int) -> bool:
        """Drop a replica because the owner de-selected this mirror."""
        return self._replicas.pop(owner, None) is not None

    def _pick_victim(self, requesting_owner: int) -> Optional[int]:
        """Choose the replica to drop: highest dropping score, never friends.

        Ties break toward larger replicas (freeing more space); the
        requesting owner's own (absent) data can obviously not be a victim.
        """
        victims = [
            info
            for info in self._replicas.values()
            if not info.is_friend and info.owner != requesting_owner
        ]
        if not victims:
            return None
        victims.sort(
            key=lambda info: (
                -self._scores.get(info.owner, 0.0),
                -info.size_profiles,
                info.owner,
            )
        )
        return victims[0].owner

    # --- dropping-score maintenance -----------------------------------------
    def learn_friend_storage(self, stored_at_friend: Iterable[int]) -> List[int]:
        """Update scores from an ES exchange with a friend.

        ``stored_at_friend`` lists the owners storing replicas at the friend.
        Owners we also store score +1; our friends get the -1/β protection.
        Returns owners whose replicas were removed by blacklisting.
        """
        stored_set = set(stored_at_friend)
        for owner, info in self._replicas.items():
            if owner in stored_set:
                self._scores[owner] = self._scores.get(owner, 0.0) + 1.0
            if info.is_friend:
                self._scores[owner] = (
                    self._scores.get(owner, 0.0) - 1.0 / self._config.beta
                )
        return self._check_blacklist()

    def observe_published_mirrors(self, owner: int, announced: Iterable[int]) -> List[int]:
        """Compare the owner's published mirror set against reality.

        If we store the owner's data but are not announced as its mirror,
        the score jumps by ``c`` — "such a mismatch between the announced
        and the real mirror set may indicate a flooding attempt".  Returns
        owners whose replicas were removed by blacklisting.
        """
        if owner not in self._replicas:
            return []
        if self.owner not in set(announced):
            self._scores[owner] = (
                self._scores.get(owner, 0.0) + self._config.mismatch_penalty
            )
        return self._check_blacklist()

    def _check_blacklist(self) -> List[int]:
        if self._scores.ceiling < self._config.theta:
            return []
        removed = []
        ceiling = 0.0
        for owner, score in self._scores.items():
            if owner in self._blacklist:
                continue
            if score >= self._config.theta:
                self._blacklist.add(owner)
                if self._replicas.pop(owner, None) is not None:
                    removed.append(owner)
            elif score > ceiling:
                ceiling = score
        self._scores.ceiling = ceiling
        return removed
