"""The per-node knowledge base ``KB_u`` (paper Fig. 3).

Every entry is about a node ``v`` that ``u`` knows: whether ``v`` is a friend
(``sr(u,v)``), the experience value ``exp_v`` when ``v`` serves as a mirror,
and a TTL "that decreases every time u does not choose v as a mirror"
(Sec. 4.4) so stale strangers eventually drop out of the candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class KBEntry:
    """One knowledge-base row: a known node and what ``u`` knows about it."""

    node_id: int
    is_friend: bool = False
    experience: float = 0.0
    ttl: int = 0
    is_mirror: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.experience <= 1.0:
            raise ValueError(f"experience must be in [0, 1], got {self.experience}")


class KnowledgeBase:
    """All nodes ``u`` knows about, with friendship, experience and TTL."""

    def __init__(self, owner: int, default_ttl: int = 30) -> None:
        self.owner = owner
        self.default_ttl = default_ttl
        self._entries: Dict[int, KBEntry] = {}

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[KBEntry]:
        return iter(list(self._entries.values()))

    def get(self, node_id: int) -> Optional[KBEntry]:
        return self._entries.get(node_id)

    def add_node(self, node_id: int, is_friend: bool = False) -> KBEntry:
        """Learn about a node (no-op if already known; friendship upgrades)."""
        if node_id == self.owner:
            raise ValueError("a node does not keep a KB entry about itself")
        entry = self._entries.get(node_id)
        if entry is None:
            entry = KBEntry(node_id=node_id, is_friend=is_friend, ttl=self.default_ttl)
            self._entries[node_id] = entry
        elif is_friend:
            entry.is_friend = True
        return entry

    def set_friend(self, node_id: int, is_friend: bool = True) -> None:
        self.add_node(node_id).is_friend = is_friend

    def friends(self) -> List[int]:
        return [e.node_id for e in self._entries.values() if e.is_friend]

    def set_experience(self, node_id: int, experience: float) -> None:
        """Record a new Eq.-(1) experience value for a (candidate) mirror."""
        entry = self.add_node(node_id)
        entry.experience = max(0.0, min(1.0, experience))
        entry.ttl = self.default_ttl

    def experience_of(self, node_id: int) -> float:
        entry = self._entries.get(node_id)
        return entry.experience if entry is not None else 0.0

    def mark_mirrors(self, mirrors: Iterator[int]) -> None:
        """Flag the current mirror set and refresh those entries' TTLs."""
        mirror_set = set(mirrors)
        for entry in self._entries.values():
            entry.is_mirror = entry.node_id in mirror_set
            if entry.is_mirror:
                entry.ttl = self.default_ttl

    def decay_ttls(self) -> List[int]:
        """Age all non-mirror entries one selection round; prune expired.

        Friends never expire — the social graph itself keeps them known.
        Returns the ids of pruned entries.
        """
        pruned = []
        for node_id, entry in list(self._entries.items()):
            if entry.is_mirror or entry.is_friend:
                continue
            entry.ttl -= 1
            if entry.ttl <= 0:
                pruned.append(node_id)
                del self._entries[node_id]
        return pruned

    def ranked_candidates(self) -> List[Tuple[int, float]]:
        """All known nodes sorted by experience value, best first."""
        ranked = [(e.node_id, e.experience) for e in self._entries.values()]
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked

    def unranked_nodes(self) -> List[int]:
        """Known nodes with no experience yet (exploration candidates)."""
        return [e.node_id for e in self._entries.values() if e.experience == 0.0]
