"""Experience sets and the Eq. (1) experience update.

A node ``u`` records, for each friend ``w``, an experience set ``ES_u(w)``:
per mirror of ``w``, how many times ``u`` tried to fetch ``w``'s data from
that mirror and how often it succeeded (Fig. 3/4).  Periodically ``u``
transmits ``ES_u(w)`` to ``w``; from all such reports ``w`` updates each
mirror's experience value::

    exp_v = (1 - α) · exp_v_old + α · (1/n) · Σ_j  (o(j,v) · av(j,v)) / o_max

where ``o(j,v)`` is the number of observations friend ``j`` reports about
mirror ``v`` (capped at ``o_max``), ``av(j,v)`` the availability ``j``
observed, and ``n`` the number of reporting friends (Sec. 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass
class ObservationRecord:
    """Requests/successes observed for one mirror."""

    requests: int = 0
    successes: int = 0

    def observe(self, success: bool) -> None:
        self.requests += 1
        if success:
            self.successes += 1

    @property
    def availability(self) -> float:
        """Observed availability ``av ∈ [0, 1]``; 0 when nothing observed."""
        if self.requests == 0:
            return 0.0
        return self.successes / self.requests

    def copy(self) -> "ObservationRecord":
        return ObservationRecord(self.requests, self.successes)


@dataclass(frozen=True)
class ExperienceReport:
    """One friend's report about one mirror, as received in an ES exchange.

    ``observations`` is already capped at ``o_max`` by the sender;
    ``availability`` is the success ratio over those observations.
    ``weight`` scales the report's influence at the receiver — 1.0 for the
    base protocol; the tie-strength extension (Sec. 8) weighs reports from
    close friends above those from mere acquaintances.  ``bandwidth_kb_s``
    optionally carries the observed mirror bandwidth for the extended
    recommendations of Sec. 8 (None in the base protocol).
    """

    reporter: int
    mirror: int
    observations: int
    availability: float
    weight: float = 1.0
    bandwidth_kb_s: Optional[float] = None


class ExperienceSet:
    """``ES_u(w)``: node u's observations of friend w's mirrors.

    Observations accumulate between exchanges; :meth:`drain` produces the
    capped reports for transmission and resets the counters, so each
    exchange only carries observations "since the last experience set
    exchange" (Sec. 4.4).
    """

    __slots__ = ("observed_friend", "_counts")

    def __init__(self, observed_friend: int) -> None:
        self.observed_friend = observed_friend
        # Packed counters ``mirror -> [requests, successes]``: observe() is
        # the single hottest call of the epoch loop (one per mirror per
        # profile request), so the per-mirror state is two list slots
        # instead of an ObservationRecord allocation.  record_for() still
        # materializes ObservationRecord for callers.
        self._counts: Dict[int, List[int]] = {}

    def observe(self, mirror: int, success: bool) -> None:
        """Record one attempt to fetch the friend's data from ``mirror``."""
        counter = self._counts.get(mirror)
        if counter is None:
            counter = self._counts[mirror] = [0, 0]
        counter[0] += 1
        if success:
            counter[1] += 1

    def record_for(self, mirror: int) -> ObservationRecord:
        """The accumulated record for ``mirror`` (empty if never observed)."""
        counter = self._counts.get(mirror)
        if counter is None:
            return ObservationRecord()
        return ObservationRecord(counter[0], counter[1])

    def observed_mirrors(self) -> List[int]:
        return list(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def drain(self, reporter: int, o_max: int) -> List[ExperienceReport]:
        """Produce capped reports for an ES exchange and reset the set.

        Capping at ``o_max`` enforces the paper's security trade-off: no
        single (possibly malicious) reporter can claim unbounded influence.
        """
        reports = []
        for mirror, (requests, successes) in self._counts.items():
            if requests == 0:
                continue
            reports.append(
                ExperienceReport(
                    reporter=reporter,
                    mirror=mirror,
                    observations=min(requests, o_max),
                    availability=successes / requests,
                )
            )
        self._counts.clear()
        return reports


def update_experience(
    old_values: Mapping[int, float],
    reports: Iterable[ExperienceReport],
    alpha: float,
    o_max: int,
    normalization: str = "by_observations",
) -> Dict[int, float]:
    """Apply Eq. (1) to produce new experience values per mirror.

    ``old_values`` maps mirror id -> previous experience value (missing
    mirrors default to 0).  Two normalizations of the fresh term are
    supported; both cap every friend's influence at ``o_max`` observations,
    the security property Eq. (1) was designed for:

    * ``"by_observations"`` (default) — observation-weighted mean
      availability: ``Σ min(o_j, o_max)·av_j / Σ min(o_j, o_max)``.  Friends
      with more observations carry more weight, and the estimate tracks the
      availability friends actually observed even when observations are
      sparse.  This is the behaviour the paper's published results exhibit
      (stable ≤7-replica mirror sets require exp ≈ observed availability).

    * ``"by_cap"`` — the formula exactly as printed:
      ``(1/n)·Σ min(o_j, o_max)·av_j / o_max``.  Identical when every
      reporter saturates the cap, but under sparse observation it divides
      the estimate by the unused cap headroom, driving exp towards 0 and
      mirror sets towards the maximum — useful for the ablation bench that
      demonstrates exactly that divergence.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if normalization not in ("by_observations", "by_cap"):
        raise ValueError(f"unknown normalization: {normalization!r}")
    grouped: Dict[int, List[ExperienceReport]] = {}
    for report in reports:
        if report.observations < 0 or not 0.0 <= report.availability <= 1.0:
            raise ValueError(f"malformed report: {report}")
        grouped.setdefault(report.mirror, []).append(report)

    updated: Dict[int, float] = {}
    for mirror, mirror_reports in grouped.items():
        if normalization == "by_observations":
            total_weight = sum(min(r.observations, o_max) for r in mirror_reports)
            if total_weight == 0:
                continue
            fresh = (
                sum(
                    min(r.observations, o_max) * r.availability
                    for r in mirror_reports
                )
                / total_weight
            )
        else:
            n = len(mirror_reports)
            fresh = (
                sum(
                    min(r.observations, o_max) * r.availability / o_max
                    for r in mirror_reports
                )
                / n
            )
        old = old_values.get(mirror, 0.0)
        updated[mirror] = (1.0 - alpha) * old + alpha * fresh
    return updated
