"""The SOUP core: mirror selection, the paper's primary contribution.

This package implements Sec. 4 of the paper end to end:

* :mod:`repro.core.config` — all protocol constants (α, β, ε, θ, c, o_max …)
  with the paper's published defaults.
* :mod:`repro.core.objects` — signed SOUP objects, the universal message
  format exchanged between nodes (Fig. 1).
* :mod:`repro.core.experience` — experience sets ``ES_u(w)`` and the aged,
  observation-capped experience update of Eq. (1).
* :mod:`repro.core.knowledge` — the per-node knowledge base ``KB_u``
  (Fig. 3) with TTL decay.
* :mod:`repro.core.ranking` — mirror-candidate ranking in bootstrapping mode
  (Sec. 4.3) and regular mode (Sec. 4.4).
* :mod:`repro.core.selection` — Algorithm 1: greedy ε-availability selection,
  the social filter (Eq. 3) and the random exploration node.
* :mod:`repro.core.dropping` — protective dropping with per-owner dropping
  scores and blacklisting (Sec. 4.6).
"""

from repro.core.config import SoupConfig
from repro.core.dropping import ReplicaInfo, ReplicaStore, StoreDecision
from repro.core.experience import (
    ExperienceReport,
    ExperienceSet,
    ObservationRecord,
    update_experience,
)
from repro.core.knowledge import KBEntry, KnowledgeBase
from repro.core.objects import ObjectType, SoupObject
from repro.core.ranking import BootstrapRanker, Recommendation, RegularRanker
from repro.core.selection import SelectionResult, select_mirrors

__all__ = [
    "SoupConfig",
    "ReplicaInfo",
    "ReplicaStore",
    "StoreDecision",
    "ExperienceReport",
    "ExperienceSet",
    "ObservationRecord",
    "update_experience",
    "KBEntry",
    "KnowledgeBase",
    "ObjectType",
    "SoupObject",
    "BootstrapRanker",
    "Recommendation",
    "RegularRanker",
    "SelectionResult",
    "select_mirrors",
]
