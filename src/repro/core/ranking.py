"""Mirror-candidate ranking: bootstrapping mode and regular mode.

A node runs in **bootstrapping mode** right after joining: it has no friends
reporting experience sets yet, so it ranks candidates from the
recommendations of the nodes it contacts ("every time a new node u contacts
a node v, v suggests the set of mirrors that works well for itself to u",
Sec. 4.3).  If no recommendations arrive it falls back to random contacts.

Once the node has friends and receives their experience sets it transitions
to **regular mode** and ranks candidates with Eq. (1) (Sec. 4.4), maintained
in the knowledge base.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import SoupConfig
from repro.core.experience import ExperienceReport, update_experience
from repro.core.knowledge import KnowledgeBase


@dataclass(frozen=True)
class Recommendation:
    """A mirror suggestion received from a contacted node.

    ``quality`` is the recommender's own experience value for that mirror;
    recommenders that do not disclose quality yield the configured
    bootstrap prior.
    """

    recommender: int
    mirror: int
    quality: Optional[float] = None


class BootstrapRanker:
    """Ranks candidates from stranger recommendations (Sec. 4.3).

    The rank of a candidate is the recency-weighted mean of the qualities
    attached to its recommendations, discounted because stranger
    recommendations are less trustworthy than own-friend experience: the
    paper notes a recommended mirror "might not be a good choice for u for
    various reasons" and bootstrapping should not be used for long.
    """

    #: Discount applied to recommended qualities versus first-hand experience.
    TRUST_DISCOUNT = 0.8

    def __init__(self, config: SoupConfig) -> None:
        self._config = config
        self._qualities: Dict[int, List[float]] = {}

    def add_recommendation(self, recommendation: Recommendation) -> None:
        quality = recommendation.quality
        if quality is None:
            quality = self._config.bootstrap_prior
        quality = max(0.0, min(1.0, quality))
        self._qualities.setdefault(recommendation.mirror, []).append(quality)

    def add_recommendations(self, recommendations: Iterable[Recommendation]) -> None:
        for recommendation in recommendations:
            self.add_recommendation(recommendation)

    @property
    def recommendation_count(self) -> int:
        return sum(len(v) for v in self._qualities.values())

    def ranking(self) -> List[Tuple[int, float]]:
        """Candidates with discounted mean quality, best first."""
        ranked = [
            (mirror, self.TRUST_DISCOUNT * (sum(qualities) / len(qualities)))
            for mirror, qualities in self._qualities.items()
        ]
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked

    def fallback_ranking(
        self, contacts: Iterable[int], rng: random.Random
    ) -> List[Tuple[int, float]]:
        """Random contacts at the bootstrap prior, for nodes that received
        no recommendations at all ("she will randomly select mirrors from
        her contacts", Sec. 4.3)."""
        pool = list(contacts)
        rng.shuffle(pool)
        return [(node, self._config.bootstrap_prior) for node in pool]


class RegularRanker:
    """Ranks candidates from friends' experience sets via Eq. (1).

    Wraps the knowledge base: :meth:`ingest_reports` applies one exchange
    round's reports; :meth:`ranking` exposes the KB's candidate ordering to
    Algorithm 1.
    """

    def __init__(
        self, knowledge: KnowledgeBase, config: SoupConfig, columnar: bool = False
    ) -> None:
        self._knowledge = knowledge
        self._config = config
        #: mirror -> [decayed request weight, decayed success weight]
        #: (used by the "aged_counts" estimator in scalar mode).
        self._counters: Dict[int, List[float]] = {}
        #: Packed-array twin of ``_counters`` (columnar engine mode);
        #: bit-identical by construction, property-tested in
        #: tests/property/test_columnar_properties.py.
        self._columns = None
        if columnar:
            from repro.core.columnar import AgedCounterColumns

            self._columns = AgedCounterColumns()

    def ingest_reports(self, reports: Iterable[ExperienceReport]) -> Dict[int, float]:
        """Apply one exchange round of reports; returns updated exp values."""
        if self._config.experience_normalization == "aged_counts":
            return self._ingest_aged_counts(reports)
        old_values = {
            entry.node_id: entry.experience for entry in self._knowledge
        }
        updated = update_experience(
            old_values,
            reports,
            self._config.alpha,
            self._config.o_max,
            normalization=self._config.experience_normalization,
        )
        for mirror, value in updated.items():
            if mirror == self._knowledge.owner:
                continue
            self._knowledge.set_experience(mirror, value)
        return updated

    def _ingest_aged_counts(self, reports: Iterable[ExperienceReport]) -> Dict[int, float]:
        """Aged-counter estimator: decay all counters, add capped reports.

        Each friend's per-round influence is capped at ``o_max``
        observations (the Eq.-(1) security property); decay implements the
        recency weighting; exp is the smoothed success ratio, which stays
        stable when a round carries only one or two observations.
        """
        retention = self._config.count_retention
        o_max = self._config.o_max
        columns = self._columns
        if columns is not None:
            columns.decay(retention)
        else:
            for counter in self._counters.values():
                counter[0] *= retention
                counter[1] *= retention

        updated: Dict[int, float] = {}
        owner = self._knowledge.owner
        for report in reports:
            if report.mirror == owner:
                continue
            # Per-friend cap first (Eq. 1's security property), then the
            # extension weight (tie strength, Sec. 8) scales the influence.
            weight = min(report.observations, o_max) * max(0.0, report.weight)
            if weight <= 0:
                continue
            if columns is not None:
                columns.add(report.mirror, weight, report.availability)
            else:
                counter = self._counters.setdefault(report.mirror, [0.0, 0.0])
                counter[0] += weight
                counter[1] += weight * report.availability
        prior = self._config.bootstrap_prior
        prior_weight = self._config.count_prior_weight
        if columns is not None:
            for mirror, value in columns.scores(prior, prior_weight):
                self._knowledge.set_experience(mirror, value)
                updated[mirror] = value
            return updated
        for mirror, (requests, successes) in self._counters.items():
            if requests <= 0.0:
                continue
            # Shrink toward the prior while observations are scarce.
            value = (successes + prior_weight * prior) / (requests + prior_weight)
            value = max(0.0, min(1.0, value))
            self._knowledge.set_experience(mirror, value)
            updated[mirror] = value
        return updated

    def age_unreported(self, mirrors: Iterable[int], reported: Iterable[int]) -> None:
        """Age the experience of current mirrors nobody reported about.

        A mirror that produced no observations this round earns no fresh
        term in Eq. (1); its value decays by (1 - α), which is what Eq. (1)
        yields with an empty recent-observation sum.
        """
        reported_set = set(reported)
        for mirror in mirrors:
            if mirror in reported_set:
                continue
            old = self._knowledge.experience_of(mirror)
            if old > 0.0:
                self._knowledge.set_experience(mirror, (1.0 - self._config.alpha) * old)

    def ranking(self) -> List[Tuple[int, float]]:
        return self._knowledge.ranked_candidates()
