"""Columnar (packed-array) kernels for the engine's hot path.

The epoch loop's per-node object traversal is the simulator's dominant
cost at paper scale (90,269 nodes).  This module provides batch
implementations of the two per-round numeric kernels — the Eq. (1)
experience update and the aged-counter estimator — operating on parallel
arrays instead of per-report Python objects.

Every kernel is **bit-for-bit equivalent** to its scalar counterpart in
:mod:`repro.core.experience` / :mod:`repro.core.ranking`: partial sums
accumulate in the same order (``np.add.at`` applies updates in index
order, exactly like the scalar grouping loop), elementwise operations use
the same IEEE-754 primitives, and output ordering follows first-appearance
order like the scalar dict iteration.  The behavioral-equivalence suite
(`tests/sim/test_equivalence.py`) and the Hypothesis properties
(`tests/property/test_columnar_properties.py`) hold the kernels to that
standard, which is what lets the engine's columnar mode produce
byte-identical results to the retained reference path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.experience import ExperienceReport

__all__ = [
    "pack_reports",
    "update_experience_columnar",
    "AgedCounterColumns",
]


def pack_reports(
    reports: Iterable[ExperienceReport],
) -> Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]:
    """Pack reports into (mirror ids, observations, availabilities, weights).

    ``mirrors`` keeps one entry per report (not deduplicated); callers
    group via :func:`np.add.at` so within-group accumulation order matches
    the scalar loops.
    """
    mirrors: List[int] = []
    observations: List[int] = []
    availabilities: List[float] = []
    weights: List[float] = []
    for report in reports:
        mirrors.append(report.mirror)
        observations.append(report.observations)
        availabilities.append(report.availability)
        weights.append(report.weight)
    return (
        mirrors,
        np.asarray(observations, dtype=np.float64),
        np.asarray(availabilities, dtype=np.float64),
        np.asarray(weights, dtype=np.float64),
    )


def update_experience_columnar(
    old_values: Mapping[int, float],
    reports: Sequence[ExperienceReport],
    alpha: float,
    o_max: int,
    normalization: str = "by_observations",
) -> Dict[int, float]:
    """Columnar Eq. (1): identical contract to
    :func:`repro.core.experience.update_experience`.

    Groups reports by mirror in first-appearance order, accumulates the
    capped observation weights with ``np.add.at`` (in-order, unbuffered,
    so per-group partial sums round exactly like the scalar ``sum``),
    then applies the smoothing elementwise.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if normalization not in ("by_observations", "by_cap"):
        raise ValueError(f"unknown normalization: {normalization!r}")
    if not reports:
        return {}

    index_of: Dict[int, int] = {}
    group_index = np.empty(len(reports), dtype=np.intp)
    for position, report in enumerate(reports):
        if report.observations < 0 or not 0.0 <= report.availability <= 1.0:
            raise ValueError(f"malformed report: {report}")
        index = index_of.get(report.mirror)
        if index is None:
            index = index_of[report.mirror] = len(index_of)
        group_index[position] = index

    n_groups = len(index_of)
    observations = np.fromiter(
        (r.observations for r in reports), dtype=np.float64, count=len(reports)
    )
    availability = np.fromiter(
        (r.availability for r in reports), dtype=np.float64, count=len(reports)
    )
    capped = np.minimum(observations, float(o_max))

    updated: Dict[int, float] = {}
    if normalization == "by_observations":
        total_weight = np.zeros(n_groups, dtype=np.float64)
        weighted_sum = np.zeros(n_groups, dtype=np.float64)
        np.add.at(total_weight, group_index, capped)
        np.add.at(weighted_sum, group_index, capped * availability)
        for mirror, index in index_of.items():
            if total_weight[index] == 0:
                continue
            fresh = weighted_sum[index] / total_weight[index]
            old = old_values.get(mirror, 0.0)
            updated[mirror] = (1.0 - alpha) * old + alpha * fresh
    else:
        counts = np.zeros(n_groups, dtype=np.float64)
        weighted_sum = np.zeros(n_groups, dtype=np.float64)
        np.add.at(counts, group_index, 1.0)
        np.add.at(weighted_sum, group_index, capped * availability / float(o_max))
        for mirror, index in index_of.items():
            fresh = weighted_sum[index] / counts[index]
            old = old_values.get(mirror, 0.0)
            updated[mirror] = (1.0 - alpha) * old + alpha * fresh
    return updated


class AgedCounterColumns:
    """Packed-array aged counters: the columnar twin of
    :meth:`repro.core.ranking.RegularRanker._ingest_aged_counts` state.

    The scalar estimator keeps ``{mirror: [requests, successes]}`` and,
    each round, decays every counter, folds in capped reports, and emits
    the smoothed per-mirror score.  Here the counters live in growable
    parallel arrays so the decay and the score computation are single
    vector operations; mirror insertion order is preserved, so emitted
    ``(mirror, value)`` sequences match the scalar dict iteration exactly.
    """

    __slots__ = ("_mirrors", "_index_of", "_requests", "_successes", "_size")

    def __init__(self) -> None:
        self._mirrors: List[int] = []
        self._index_of: Dict[int, int] = {}
        self._requests = np.zeros(8, dtype=np.float64)
        self._successes = np.zeros(8, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self._requests)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown_requests = np.zeros(capacity, dtype=np.float64)
        grown_successes = np.zeros(capacity, dtype=np.float64)
        grown_requests[: self._size] = self._requests[: self._size]
        grown_successes[: self._size] = self._successes[: self._size]
        self._requests = grown_requests
        self._successes = grown_successes

    def decay(self, retention: float) -> None:
        """``counter *= retention`` for every mirror, in one vector op."""
        if self._size:
            self._requests[: self._size] *= retention
            self._successes[: self._size] *= retention

    def add(self, mirror: int, weight: float, availability: float) -> None:
        """Fold one capped report in (weight already capped at o_max)."""
        index = self._index_of.get(mirror)
        if index is None:
            index = self._size
            self._ensure_capacity(index + 1)
            self._index_of[mirror] = index
            self._mirrors.append(mirror)
            self._size += 1
        self._requests[index] += weight
        self._successes[index] += weight * availability

    def scores(
        self, prior: float, prior_weight: float
    ) -> List[Tuple[int, float]]:
        """Smoothed per-mirror scores, in insertion order, skipping
        mirrors whose decayed request weight reached zero — exactly the
        emission rule of the scalar estimator."""
        if not self._size:
            return []
        requests = self._requests[: self._size]
        successes = self._successes[: self._size]
        values = (successes + prior_weight * prior) / (requests + prior_weight)
        np.minimum(values, 1.0, out=values)
        np.maximum(values, 0.0, out=values)
        positive = requests > 0.0
        return [
            (mirror, float(values[index]))
            for index, mirror in enumerate(self._mirrors)
            if positive[index]
        ]

    def state(self) -> Dict[int, List[float]]:
        """Scalar-shaped view ``{mirror: [requests, successes]}`` (tests)."""
        return {
            mirror: [
                float(self._requests[index]),
                float(self._successes[index]),
            ]
            for index, mirror in enumerate(self._mirrors)
        }
