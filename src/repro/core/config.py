"""Protocol configuration with the paper's published defaults.

Every tunable the paper names is a field here, with the value the authors
report as best:

* α = 0.75 — experience aging factor (Sec. 4.4: "Setting α = 0.75 provided
  us with the best trade-off between adaptation and stability").
* β = 1.25 — social filter; a friend qualifies as a mirror if it provides at
  least 80 % of an unrelated candidate's performance (Sec. 4.5).
* ε = 0.01 — target error rate: every user aims at 99 % data availability
  (Sec. 5.1).
* θ = 300, c = 100 — protective-dropping blacklist threshold and mismatch
  penalty; the "three-strike principle" (Sec. 4.6).
* o_max — per-exchange observation cap confining the influence of any single
  reporter in Eq. (1) (Sec. 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SoupConfig:
    """All SOUP protocol parameters.

    The defaults reproduce the paper's configuration; experiments override
    individual fields (e.g. the α/β ablation benches).
    """

    # --- Eq. (1): experience aging -------------------------------------
    alpha: float = 0.75
    #: Cap on observations a single friend may report per exchange (o_max).
    #: The paper does not publish its value; the cap must sit at the
    #: *typical honest* per-period observation volume so that honest reports
    #: saturate it (o/o_max ≈ 1, making exp track the availability friends
    #: actually observed) while a single malicious reporter cannot claim
    #: unbounded weight.  With daily exchanges and feed-browsing sessions a
    #: friend pair accumulates a few observations per period, hence 3.
    o_max: int = 3
    #: How experience values are estimated from friend reports:
    #:
    #: * ``"aged_counts"`` (default) — per-mirror success/request counters
    #:   decayed by ``count_retention`` each exchange round; exp is the
    #:   smoothed success ratio.  Implements Eq. (1)'s recency-weighting
    #:   intent ("a more recent observation carries more weight") while
    #:   staying robust when a round carries only one or two observations —
    #:   under the paper's decaying activity model, per-round observation
    #:   volume is small, and applying the printed EWMA directly would let a
    #:   single unlucky sample evict a good mirror.
    #: * ``"by_observations"`` — Eq. (1) with the fresh term normalized by
    #:   reported (capped) observations instead of ``n·o_max``.
    #: * ``"by_cap"`` — Eq. (1) exactly as printed (ablation bench).
    experience_normalization: str = "aged_counts"
    #: Retention factor for "aged_counts": each exchange round multiplies
    #: accumulated observation counters by this before adding new reports.
    count_retention: float = 0.85
    #: Pseudo-observation weight shrinking an under-observed mirror's exp
    #: toward ``bootstrap_prior``.  Counters noisy estimates being selected
    #: for their luck (winner's curse): a mirror seen online twice out of
    #: two observations is *not* treated as 100 % available.
    count_prior_weight: float = 2.0

    # --- Algorithm 1: selection ----------------------------------------
    #: Target error rate ε: select mirrors until P(data unavailable) < ε.
    epsilon: float = 0.01
    #: Social filter β: friends win if β·rank beats a stranger's rank.
    beta: float = 1.25
    #: Hard cap on mirror-set size, so low-quality rankings cannot make the
    #: greedy loop run away (the paper reports ≤ ~13 replicas even under
    #: attack; the cap is far above normal operation).
    max_mirrors: int = 30
    #: Prior rank assigned to recommendations whose quality is unknown.
    bootstrap_prior: float = 0.3

    # --- Sec. 4.6: protective dropping ----------------------------------
    #: Blacklist threshold θ.
    theta: float = 300.0
    #: Dropping-score increase c for announced-vs-stored mirror mismatches.
    mismatch_penalty: float = 100.0

    # --- Knowledge base --------------------------------------------------
    #: TTL (in selection rounds) before an unused non-friend KB entry expires.
    kb_ttl: int = 30

    # --- Storage ----------------------------------------------------------
    #: Median node storage capacity, in profiles (Sec. 5.1: Gaussian with a
    #: median of space for mirroring data of 50 users).
    storage_median_profiles: int = 50
    storage_sigma_profiles: float = 15.0
    storage_min_profiles: int = 5
    #: Cap on buffered updates a mirror keeps per offline target, so a
    #: flooding origin cannot grow surrogate storage without limit; the
    #: oldest update is dropped when full (a returning user refetches
    #: older history from the origin's profile).  0 disables the cap.
    update_buffer_cap: int = 512

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.beta < 1.0:
            raise ValueError(f"beta must be >= 1 (it boosts friends), got {self.beta}")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.o_max < 1:
            raise ValueError(f"o_max must be positive, got {self.o_max}")
        if self.experience_normalization not in (
            "aged_counts",
            "by_observations",
            "by_cap",
        ):
            raise ValueError(
                "experience_normalization must be 'aged_counts', "
                "'by_observations' or 'by_cap', got "
                f"{self.experience_normalization!r}"
            )
        if not 0.0 < self.count_retention < 1.0:
            raise ValueError(
                f"count_retention must be in (0, 1), got {self.count_retention}"
            )
        if self.count_prior_weight < 0.0:
            raise ValueError(
                f"count_prior_weight cannot be negative, got {self.count_prior_weight}"
            )
        if self.theta <= 0 or self.mismatch_penalty <= 0:
            raise ValueError("theta and mismatch_penalty must be positive")
        if self.max_mirrors < 1:
            raise ValueError(f"max_mirrors must be positive, got {self.max_mirrors}")
        if self.update_buffer_cap < 0:
            raise ValueError(
                f"update_buffer_cap cannot be negative, got {self.update_buffer_cap}"
            )

    @property
    def strikes_to_blacklist(self) -> int:
        """How many mirror-set mismatches blacklist a node (paper: 3)."""
        return int(self.theta // self.mismatch_penalty)
