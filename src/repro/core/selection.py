"""Algorithm 1: choosing mirrors from the candidate ranking.

Three stages (paper Sec. 4.5):

1. **Greedy ε-availability.**  Add top-ranked candidates one by one until the
   estimated probability of the data being unavailable,
   ``perr = Π (1 - r_i)``, drops below the target error rate ε (Eq. 2).

2. **Social filter.**  For every selected stranger, if some unselected friend
   ``v'`` satisfies ``r_{v'} · β > r_v``, the friend replaces the stranger
   (Eq. 3 — the paper prints ``max(β·r, 1)`` where the cap is clearly meant
   as an upper bound, i.e. ``min(β·r, 1)``; we implement the cap).

3. **Exploration.**  Add one random node without a ranking, "to prevent a
   possible overlooking of even better suited nodes".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import SoupConfig


@dataclass
class SelectionResult:
    """Outcome of one run of Algorithm 1."""

    mirrors: List[int]
    #: Estimated P(data unavailable) after the greedy stage, Π(1 - r_i).
    estimated_error: float
    #: Strangers replaced by friends in the social-filter stage.
    replacements: List[Tuple[int, int]] = field(default_factory=list)
    #: The random exploration node, if one was available to add.
    exploration_node: Optional[int] = None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.mirrors

    def __len__(self) -> int:
        return len(self.mirrors)


def boosted_rank(rank: float, is_friend: bool, beta: float) -> float:
    """Apply the social filter boost of Eq. (3), capped at 1."""
    if not is_friend:
        return rank
    return min(beta * rank, 1.0)


def select_mirrors(
    ranking: Sequence[Tuple[int, float]],
    friends: Iterable[int],
    config: SoupConfig,
    rng: random.Random,
    exploration_pool: Iterable[int] = (),
    exclude: Iterable[int] = (),
) -> SelectionResult:
    """Run Algorithm 1.

    ``ranking`` is the candidate list (node id, experience value) from
    either ranking mode, best first.  ``exploration_pool`` holds known but
    unranked nodes eligible as the random addition.  ``exclude`` removes
    nodes that must never be chosen (the owner itself, blacklisting peers).
    """
    excluded: Set[int] = set(exclude)
    friend_set: Set[int] = set(friends) - excluded

    candidates = [
        (node, max(0.0, min(1.0, rank)))
        for node, rank in ranking
        if node not in excluded
    ]
    # Shuffle before the stable sort so that rank ties (e.g. many unknown
    # candidates at the bootstrap prior) break randomly instead of by node
    # id — otherwise the whole OSN would pile onto the same few nodes.
    rng.shuffle(candidates)
    candidates.sort(key=lambda pair: -pair[1])

    # --- Stage 1: greedy until perr < epsilon ---------------------------
    mirrors: List[int] = []
    perr = 1.0
    for node, rank in candidates:
        # The paper's loop runs "while perr > ε": reaching ε exactly stops.
        if perr <= config.epsilon or len(mirrors) >= config.max_mirrors:
            break
        if rank <= 0.0:
            # Candidates below this point (the list is sorted) cannot reduce
            # perr; adding them would only inflate the replica overhead.
            break
        mirrors.append(node)
        perr *= 1.0 - rank

    # --- Stage 2: social filter ------------------------------------------
    ranks = dict(candidates)
    selected: Set[int] = set(mirrors)
    spare_friends = [
        (node, rank)
        for node, rank in candidates
        if node in friend_set and node not in selected
    ]
    # Best spare friends first, so the strongest friends do the replacing.
    spare_friends.sort(key=lambda pair: -pair[1])
    replacements: List[Tuple[int, int]] = []
    for index, stranger in enumerate(list(mirrors)):
        if stranger in friend_set:
            continue
        stranger_rank = ranks.get(stranger, 0.0)
        while spare_friends:
            friend, friend_rank = spare_friends[0]
            if boosted_rank(friend_rank, True, config.beta) > stranger_rank:
                mirrors[index] = friend
                selected.discard(stranger)
                selected.add(friend)
                replacements.append((stranger, friend))
                spare_friends.pop(0)
            break

    # --- Stage 3: random exploration --------------------------------------
    exploration_candidates = [
        node
        for node in exploration_pool
        if node not in selected and node not in excluded
    ]
    exploration_node: Optional[int] = None
    if exploration_candidates and len(mirrors) < config.max_mirrors:
        exploration_node = rng.choice(exploration_candidates)
        mirrors.append(exploration_node)

    return SelectionResult(
        mirrors=mirrors,
        estimated_error=perr,
        replacements=replacements,
        exploration_node=exploration_node,
    )
