"""Command-line interface: run any reproduction experiment directly.

Examples::

    python -m repro fig5 --dataset epinions --days 10
    python -m repro fig10 --fraction 0.5
    python -m repro table1
    python -m repro table4
    python -m repro deploy --duration 1200
    python -m repro fig15 --rate 20

Each subcommand prints the corresponding table/series; the benchmark suite
(`pytest benchmarks/ --benchmark-only`) runs the same experiments with the
paper's shape assertions attached.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _series(values, fmt="{:.3f}") -> str:
    return " ".join(fmt.format(float(v)) for v in values)


def _result_json(result, **extra) -> str:
    """Serialize a simulation result for external plotting: the full
    round-trippable ``SimulationResult.to_json_dict()`` payload plus the
    derived daily/steady series, plus any experiment tags in ``extra``."""
    payload = result.to_json_dict(include_derived=True)
    if result.reliability is not None:
        payload["reliability_summary"] = result.reliability.summary()
    payload.update(extra)
    return json.dumps(payload, indent=2)


def _obs_flags(p) -> None:
    """Observability flags shared by every experiment subcommand."""
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write structured trace events as JSONL to PATH")
    p.add_argument("--trace-filter", default=None, metavar="EVENT,...",
                   help="only emit the named trace event types "
                        "(comma-separated; see docs/OBSERVABILITY.md)")
    p.add_argument("--profile", action="store_true",
                   help="time wall-clock hot paths and print a per-phase "
                        "breakdown at exit")
    p.add_argument("--profile-trace", action="store_true",
                   help="with --trace: also emit a perf_profile event with "
                        "the per-epoch phase breakdown into the trace")
    p.add_argument("--log-level", default=None, metavar="LEVEL",
                   choices=("debug", "info", "warning", "error"),
                   help="attach a stderr handler to the repro.* loggers")


def _setup_observability(args):
    """Install tracer/profiler/logging from the CLI flags; returns the
    tracer (or None) for teardown."""
    level = getattr(args, "log_level", None)
    if level:
        import logging

        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        repro_logger = logging.getLogger("repro")
        repro_logger.addHandler(handler)
        repro_logger.setLevel(getattr(logging, level.upper()))
    tracer = None
    if getattr(args, "trace", None):
        from repro.obs import Tracer, set_tracer

        raw = getattr(args, "trace_filter", None)
        event_filter = (
            [name.strip() for name in raw.split(",") if name.strip()]
            if raw
            else None
        )
        tracer = Tracer.to_path(args.trace, event_filter)
        set_tracer(tracer)
    if getattr(args, "profile", False) or getattr(args, "profile_trace", False):
        from repro.obs.profiling import PROFILER

        PROFILER.reset()
        PROFILER.enable()
        PROFILER.trace = bool(getattr(args, "profile_trace", False))
    return tracer


def _teardown_observability(args, tracer) -> None:
    if tracer is not None:
        from repro.obs import set_tracer

        set_tracer(None)
        tracer.close()
    if getattr(args, "profile", False) or getattr(args, "profile_trace", False):
        from repro.obs.profiling import PROFILER

        PROFILER.disable()
        PROFILER.trace = False
        if getattr(args, "profile", False):
            print("", file=sys.stderr)
            for line in PROFILER.report_lines(top_level="engine.epoch"):
                print(line, file=sys.stderr)


def _correctness_overrides(args) -> dict:
    """ScenarioConfig overrides from the shared correctness-harness flags."""
    overrides = {}
    if getattr(args, "check_invariants", False):
        overrides["check_invariants"] = True
    if getattr(args, "faults", None):
        overrides["faults"] = args.faults
        # A fault-injected run without the checker would corrupt silently.
        overrides.setdefault("check_invariants", True)
    if getattr(args, "repair", False):
        overrides["repair"] = True
    # Architecture flags ride along: left at the defaults they add nothing
    # to the overrides, keeping the byte-identical soup path untouched.
    architecture = getattr(args, "architecture", None)
    if architecture and architecture != "soup":
        overrides["architecture"] = architecture
    if getattr(args, "measure_dht", False):
        overrides["measure_dht"] = True
    return overrides


def _cmd_fig5(args) -> int:
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(
        dataset=args.dataset, scale=args.scale, n_days=args.days, seed=args.seed,
        **_correctness_overrides(args),
    )
    result = run_scenario(config)
    if getattr(args, "json", False):
        print(_result_json(result, dataset=args.dataset, scale=args.scale))
        return 0
    from repro.sim.reporting import sparkline

    print(f"dataset={args.dataset} scale={args.scale} days={args.days}")
    print("availability/day:", _series(result.daily_availability()),
          f"  {sparkline(result.daily_availability(), 0.5, 1.0)}")
    print("replicas/day:    ", _series(result.daily_replica_overhead(), "{:.2f}"),
          f"  {sparkline(result.daily_replica_overhead())}")
    print(f"availability@day1={result.availability_at_day(1):.3f} "
          f"steady={result.steady_state_availability():.3f} "
          f"replicas={result.steady_state_replicas():.2f}")
    if result.arch:
        for component, numbers in sorted(result.arch.items()):
            rendered = " ".join(
                f"{key}={value:g}" for key, value in sorted(numbers.items())
            )
            print(f"arch.{component}: {rendered}")
    return 0


def _cmd_fig6(args) -> int:
    from repro.sim.engine import run_scenario
    from repro.sim.metrics import percentile_of
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(
        dataset=args.dataset,
        scale=args.scale,
        n_days=args.days,
        seed=args.seed,
        cdf_snapshot_days=tuple(
            d for d in (1, 14, args.days) if d <= args.days
        ),
        **_correctness_overrides(args),
    )
    result = run_scenario(config)
    for day, counts in sorted(result.stored_profiles_snapshots.items()):
        print(f"day {day:>3}: mean={np.mean(counts):.2f} "
              f"median={percentile_of(counts, 0.5):.0f} "
              f"p90={percentile_of(counts, 0.9):.0f} max={max(counts)}")
    print(f"top-half replica share: {result.top_half_replica_share:.2%}")
    print("drop rate/round:", _series(result.drop_rate_by_round, "{:.4f}"))
    return 0


def _cmd_fig7(args) -> int:
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    result = run_scenario(
        ScenarioConfig(
            dataset=args.dataset, scale=args.scale, n_days=args.days, seed=args.seed,
            **_correctness_overrides(args),
        )
    )
    for cohort, series in sorted(result.cohort_availability.items()):
        days = len(series) // result.epochs_per_day
        daily = series[: days * result.epochs_per_day].reshape(days, -1).mean(axis=1)
        print(f"{cohort:<15}", _series(daily))
    return 0


def _cmd_attack(args, kind: str) -> int:
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    overrides = _correctness_overrides(args)
    if kind == "slander":
        overrides["slander_fraction"] = args.fraction
        overrides["use_tie_strength"] = getattr(args, "ties", False)
    elif kind == "flooding":
        overrides["sybil_fraction"] = args.fraction
    elif kind == "departure":
        overrides["departure_fraction"] = args.fraction
        overrides["departure_day"] = args.event_day
    elif kind == "altruism":
        overrides["altruist_fraction"] = args.fraction
        overrides["altruist_join_day"] = args.event_day
    result = run_scenario(
        ScenarioConfig(
            dataset=args.dataset,
            scale=args.scale,
            n_days=args.days,
            seed=args.seed,
            **overrides,
        )
    )
    if getattr(args, "json", False):
        print(_result_json(result, experiment=kind, fraction=args.fraction))
        return 0
    print(f"{kind} fraction={args.fraction}")
    print("availability/day:", _series(result.daily_availability()))
    print("replicas/day:    ", _series(result.daily_replica_overhead(), "{:.2f}"))
    if kind == "flooding":
        print(f"blacklist entries: {result.blacklisted_owner_count}")
    return 0


def _cmd_table1(args) -> int:
    from repro.baselines.features import FEATURES, table1_rows

    header = ("system",) + FEATURES
    widths = [max(len(h), 10) for h in header]
    print("  ".join(h[:w].ljust(w) for h, w in zip(header, widths)))
    for row in table1_rows():
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return 0


def _cmd_table3(args) -> int:
    from repro.graphs.datasets import table3_rows

    for name, nodes, edges, degree in table3_rows(scale=args.scale, seed=args.seed):
        print(f"{name:<10} nodes={nodes:<8} edges={edges:<9} avg_degree={degree}")
    return 0


def _cmd_table4(args) -> int:
    from benchmarks.test_table4_related_work import run_comparison  # noqa: F401

    try:
        outcome = run_comparison()
    except ImportError:
        print("table4 requires the benchmarks directory on sys.path", file=sys.stderr)
        return 1
    soup = outcome["soup_powerlaw"]
    print(f"SOUP (power-law): availability={soup.steady_state_availability(3):.3f} "
          f"replicas={soup.steady_state_replicas(3):.1f}")
    soup_ps = outcome["soup_peerson"]
    peerson = outcome["peerson"]
    print(f"SOUP (PeerSoN mix): {soup_ps.steady_state_availability(3):.3f}/"
          f"{soup_ps.steady_state_replicas(3):.1f}  vs  PeerSoN "
          f"{peerson['availability']:.3f}/{peerson['replicas']:.1f} "
          f"(per-node {peerson['availability_min']:.2f}-{peerson['availability_max']:.2f})")
    soup_u = outcome["soup_uniform"]
    safebook = outcome["safebook"]
    print(f"SOUP (uniform 0.3): {soup_u.steady_state_availability(3):.3f}/"
          f"{soup_u.steady_state_replicas(3):.1f}  vs  Safebook "
          f"{safebook['availability']:.3f}/{safebook['replicas']:.1f}")
    return 0


def _cmd_deploy(args) -> int:
    from repro.deploy.emulation import Deployment

    deployment = Deployment(
        n_desktop=args.desktop,
        n_mobile=args.mobile,
        seed=args.seed,
        crypto_mode=args.crypto_mode,
        architecture=args.architecture,
    )
    report = deployment.run(duration_s=args.duration, selection_rounds=args.rounds)
    print(f"users={report.n_users} mobile={report.n_mobile} "
          f"friendships={report.friendships} photos={report.photos_shared} "
          f"messages={report.messages_sent}")
    if report.arch_metrics:
        for component, numbers in sorted(report.arch_metrics.items()):
            rendered = " ".join(
                f"{key}={value:g}" for key, value in sorted(numbers.items())
            )
            print(f"arch.{component}: {rendered}")
    print(f"availability={report.availability:.4f} "
          f"({report.profile_failures}/{report.profile_requests} failed requests)")
    gateway = [kb for _, kb in report.gateway_series]
    print(f"gateway DHT peak={max(gateway):.1f} KB/s")
    print("mirror variance/round:", _series(report.mirror_variance_by_round, "{:.2f}"))
    rel = report.reliability
    if rel is not None:
        print(f"reliability: retries={rel.transfer_retries} "
              f"giveups={rel.transfer_giveups} deaths={rel.deaths_declared} "
              f"revivals={rel.revivals} "
              f"circuit_transitions={int(sum(rel.circuit_transitions.values()))}")
        if rel.circuit_transitions:
            print("circuit:", " ".join(
                f"{key}={count}"
                for key, count in sorted(rel.circuit_transitions.items())
            ))
    return 0


def _cmd_metrics(args) -> int:
    """Run a scenario and render the metrics-registry view."""
    from repro.sim.engine import run_scenario
    from repro.sim.reporting import metrics_table
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(
        dataset=args.dataset, scale=args.scale, n_days=args.days, seed=args.seed,
        **_correctness_overrides(args),
    )
    result = run_scenario(config)
    if getattr(args, "json", False):
        payload = {"metrics": result.metrics or {}, "summary": result.summary()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for line in metrics_table(result):
        print(line)
    if result.reliability is not None:
        print()
        print("reliability summary:")
        for key, value in sorted(result.reliability.summary().items()):
            print(f"  {key}: {value:g}")
    return 0


def _cmd_trace_validate(args) -> int:
    """Validate a JSONL trace file against the event schemas.

    Streams the file (gzip-aware, bounded memory); a truncated final line
    — the signature of a killed writer — is reported as an error here,
    unlike the tolerant analysis commands.
    """
    from repro.obs import TRACE_SCHEMA_VERSION
    from repro.obs.analysis import TraceReadReport, iter_trace

    report = TraceReadReport()
    for _ in iter_trace(args.path, validate=True, report=report,
                        tolerate_truncation=False):
        pass
    if report.errors:
        shown = report.errors[:50]
        for error in shown:
            print(error, file=sys.stderr)
        if len(report.errors) > len(shown):
            print(f"... and {len(report.errors) - len(shown)} more",
                  file=sys.stderr)
        print(f"{args.path}: {len(report.errors)} invalid line(s)",
              file=sys.stderr)
        return 1
    print(f"{args.path}: {report.events} events, all valid "
          f"(schema v{TRACE_SCHEMA_VERSION})")
    return 0


def _warn_truncated(path: str, report) -> None:
    if report.truncated:
        print(f"{path}: trace ends mid-record (killed writer?); "
              f"analysis covers the complete prefix", file=sys.stderr)


def _cmd_trace_analyze(args) -> int:
    """Full streaming analysis: lifecycles, attribution, hot spots, anomalies."""
    from repro.obs.analysis import AnomalyConfig, analyze_trace, render_analysis

    analysis = analyze_trace(
        args.path, config=AnomalyConfig(), lookback=args.lookback
    )
    if args.json:
        print(json.dumps(analysis.to_json_dict(), indent=2, sort_keys=True))
    else:
        for line in render_analysis(analysis, top=args.top):
            print(line)
    _warn_truncated(args.path, analysis.report)
    return 0


def _cmd_trace_anomalies(args) -> int:
    """Run only the anomaly detectors over a trace."""
    from repro.obs.analysis import AnomalyConfig, analyze_trace, render_findings

    config = AnomalyConfig(
        repair_loop_count=args.repair_loop_count,
        repair_loop_window=args.repair_loop_window,
        churn_storm_drops=args.churn_storm_drops,
        churn_storm_window=args.churn_storm_window,
        flap_toggles=args.flap_toggles,
    )
    analysis = analyze_trace(args.path, config=config)
    if args.json:
        print(json.dumps(
            [finding.to_json_dict() for finding in analysis.findings],
            indent=2, sort_keys=True,
        ))
    else:
        for line in render_findings(analysis.findings):
            print(line)
    _warn_truncated(args.path, analysis.report)
    return 0


def _cmd_trace_timeline(args) -> int:
    """Causal timeline of every event concerning one owner."""
    from repro.obs.analysis import (
        TraceReadReport,
        owner_timeline,
        render_timeline,
    )

    report = TraceReadReport()
    entries = owner_timeline(args.path, args.owner, report=report)
    if args.json:
        print(json.dumps(
            [
                {"seq": e.seq, "epoch": e.epoch, "event": e.event,
                 "summary": e.summary}
                for e in entries
            ],
            indent=2, sort_keys=True,
        ))
    else:
        for line in render_timeline(args.owner, entries):
            print(line)
    _warn_truncated(args.path, report)
    return 0


def _cmd_trace(args) -> int:
    subcommand = args.trace_command
    if subcommand == "validate":
        return _cmd_trace_validate(args)
    if subcommand == "analyze":
        return _cmd_trace_analyze(args)
    if subcommand == "anomalies":
        return _cmd_trace_anomalies(args)
    if subcommand == "timeline":
        return _cmd_trace_timeline(args)
    raise AssertionError(f"unhandled trace subcommand {subcommand}")


def _build_sweep_spec(args):
    """Assemble the SweepSpec from a spec file and/or grid flags."""
    from repro.runtime import (
        SweepSpec,
        parse_base_flag,
        parse_seeds,
        parse_set_flag,
    )

    spec = SweepSpec.from_file(args.spec) if args.spec else SweepSpec()
    for flag in args.base or ():
        key, value = parse_base_flag(flag)
        spec.base[key] = value
    for flag in args.set or ():
        key, values = parse_set_flag(flag)
        spec.grid[key] = values
    if args.seeds:
        spec.seeds = parse_seeds(args.seeds)
    if args.name:
        spec.name = args.name
    return spec


def _format_eta(seconds) -> str:
    if seconds is None:
        return "eta ?"
    seconds = max(0.0, float(seconds))
    if seconds >= 3600:
        return f"eta {seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"eta {seconds / 60:.1f}m"
    return f"eta {seconds:.0f}s"


def _sweep_status_line(store, manifest) -> "tuple[str, int, int, list]":
    """One status line plus (done, total, failed-entries) for a run dir."""
    completed = store.completed_keys()
    tasks = manifest["tasks"]
    done = sum(1 for entry in tasks if entry["key"] in completed)
    failed = [entry for entry in tasks if entry.get("status") == "failed"]
    line = f"sweep {manifest['name']}: {done}/{len(tasks)} tasks complete"
    heartbeat = store.read_heartbeat()
    if heartbeat is not None and done < len(tasks):
        running = heartbeat.get("running") or 0
        parts = [f"{running} running", _format_eta(heartbeat.get("eta_seconds"))]
        if heartbeat.get("failed"):
            parts.append(f"{heartbeat['failed']} failed")
        line += f" ({', '.join(parts)})"
    return line, done, len(tasks), failed


def _cmd_sweep_status(args) -> int:
    """Report a run directory's completion state (exit 3 if incomplete).

    With ``--watch``, poll the manifest/artifacts/heartbeat every
    ``--interval`` seconds, printing a live progress line with ETA until
    the sweep completes (exit 0) or finishes with failures (exit 1).
    """
    import time as _time

    from repro.runtime import RunStore

    store = RunStore(args.out)
    watch = getattr(args, "watch", False)
    interval = getattr(args, "interval", 2.0)
    while True:
        manifest = store.load_manifest()
        if manifest is None:
            if watch:
                print(f"{args.out}: waiting for sweep manifest...",
                      file=sys.stderr)
                _time.sleep(interval)
                continue
            print(f"{args.out}: no sweep manifest", file=sys.stderr)
            return 3
        line, done, total, failed = _sweep_status_line(store, manifest)
        print(line)
        if done == total:
            return 0
        if failed:
            # finalize() ran: the sweep ended and these tasks failed.
            for entry in failed:
                print(f"  failed {entry['id']}: {entry.get('error', '?')}")
            return 1 if watch else 3
        if not watch:
            return 3
        _time.sleep(interval)


def _cmd_sweep(args) -> int:
    from repro.runtime import aggregate_json, aggregate_run, run_sweep
    from repro.sim.reporting import sweep_table

    if args.status:
        return _cmd_sweep_status(args)

    if not args.aggregate_only:
        try:
            spec = _build_sweep_spec(args)
            tasks = spec.expand()
        except ValueError as exc:
            print(f"sweep: invalid spec: {exc}", file=sys.stderr)
            return 2
        print(
            f"sweep {spec.name}: {len(tasks)} tasks -> {args.out} "
            f"(jobs={args.jobs or 'auto'})",
            file=sys.stderr,
        )

        def progress(event, task, detail):
            if event == "ok":
                print(
                    f"  [{task.task_id}] ok ({detail:.1f}s)  {task.label()}",
                    file=sys.stderr,
                )
            elif event == "fail":
                print(
                    f"  [{task.task_id}] FAILED: {detail}  {task.label()}",
                    file=sys.stderr,
                )
            elif event == "skip" and args.verbose:
                print(f"  [{task.task_id}] cached  {task.label()}", file=sys.stderr)

        outcome = run_sweep(
            spec, args.out, jobs=args.jobs, limit=args.limit, progress=progress,
            profile_phases=args.profile_phases,
        )
        print(
            f"sweep {spec.name}: {len(outcome.executed)} run, "
            f"{len(outcome.skipped)} cached, {len(outcome.failed)} failed",
            file=sys.stderr,
        )
        if args.profile_phases and outcome.phases.totals():
            print("", file=sys.stderr)
            for line in outcome.phases.report_lines(top_level="runtime.task"):
                print(line, file=sys.stderr)
        if outcome.interrupted:
            print(
                f"sweep {spec.name}: interrupted; checkpoint saved, "
                f"rerun with --resume to continue",
                file=sys.stderr,
            )
    cells = aggregate_run(args.out)
    if args.json:
        print(aggregate_json(cells))
    else:
        for line in sweep_table(cells):
            print(line)
    if not args.aggregate_only:
        if outcome.interrupted:
            return 130
        if outcome.failed:
            return 1
    return 0


def _cmd_compare(args) -> int:
    """Head-to-head architecture comparison (docs/ARCHITECTURES.md).

    Fans one scenario (spec file and/or ``--base`` flags) over every
    requested architecture with ``measure_dht`` forced on, runs the grid
    through the sweep orchestrator (checkpoint/resume and all), and
    reduces the artifacts into one comparison table plus a
    ``compare.json`` artifact in the run directory.
    """
    import json as _json
    from pathlib import Path

    from repro.arch import architecture_names
    from repro.runtime import (
        SweepSpec,
        aggregate_run,
        parse_base_flag,
        parse_seeds,
        run_sweep,
    )
    from repro.sim.reporting import COMPARE_TABLE_METRICS, compare_table

    known = architecture_names()
    if args.archs:
        archs = [name.strip() for name in args.archs.split(",") if name.strip()]
        unknown = sorted(set(archs) - set(known))
        if unknown:
            print(
                f"compare: unknown architecture(s) {unknown}; "
                f"registered: {known}",
                file=sys.stderr,
            )
            return 2
    else:
        archs = list(known)

    if not args.aggregate_only:
        try:
            spec = SweepSpec.from_file(args.spec) if args.spec else SweepSpec()
            for flag in args.base or ():
                key, value = parse_base_flag(flag)
                spec.base[key] = value
            if args.seeds:
                spec.seeds = parse_seeds(args.seeds)
            spec.name = args.name or (
                spec.name if spec.name != "sweep" else "compare"
            )
            # The architecture axis is the whole point: cross every row of
            # the underlying scenario with each architecture, DHT probe on
            # so every row reports hops/control/storage numbers.
            rows = spec.configs or [{}]
            spec.configs = [
                {**row, "architecture": arch, "measure_dht": True}
                for arch in archs
                for row in rows
            ]
            tasks = spec.expand()
        except ValueError as exc:
            print(f"compare: invalid spec: {exc}", file=sys.stderr)
            return 2
        print(
            f"compare {spec.name}: {len(archs)} architectures, "
            f"{len(tasks)} tasks -> {args.out} (jobs={args.jobs or 'auto'})",
            file=sys.stderr,
        )

        def progress(event, task, detail):
            if event == "ok":
                print(
                    f"  [{task.task_id}] ok ({detail:.1f}s)  {task.label()}",
                    file=sys.stderr,
                )
            elif event == "fail":
                print(
                    f"  [{task.task_id}] FAILED: {detail}  {task.label()}",
                    file=sys.stderr,
                )
            elif event == "skip" and args.verbose:
                print(f"  [{task.task_id}] cached  {task.label()}", file=sys.stderr)

        outcome = run_sweep(
            spec, args.out, jobs=args.jobs, limit=args.limit, progress=progress,
        )
        print(
            f"compare {spec.name}: {len(outcome.executed)} run, "
            f"{len(outcome.skipped)} cached, {len(outcome.failed)} failed",
            file=sys.stderr,
        )

    cells = aggregate_run(args.out)
    payload = {
        "schema": "soup-compare/v1",
        "architectures": archs,
        "metrics": [metric for metric, _ in COMPARE_TABLE_METRICS],
        "cells": [
            {
                "architecture": cell.overrides.get("architecture", "soup"),
                "overrides": cell.overrides,
                "seeds": cell.seeds,
                "stats": cell.stats(),
            }
            for cell in cells
        ],
    }
    artifact_path = Path(args.out) / "compare.json"
    artifact_path.write_text(
        _json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in compare_table(cells):
            print(line)
        print(f"compare: artifact written to {artifact_path}", file=sys.stderr)
    if not args.aggregate_only:
        if outcome.interrupted:
            return 130
        if outcome.failed:
            return 1
    return 0


def _cmd_fig15(args) -> int:
    from repro.deploy.traffic import MirrorLoadModel

    model = MirrorLoadModel(seed=args.seed)
    result = model.run(request_rate=args.rate, duration_s=args.duration)
    print(f"rate={args.rate}/s mean={result.mean_kb_per_s:.0f} KB/s "
          f"peak={result.peak_kb_per_s:.0f} KB/s served={result.requests_served} "
          f"timeouts={result.requests_timed_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SOUP (Middleware 2014) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, days=20):
        p.add_argument("--dataset", default="facebook",
                       choices=("facebook", "epinions", "slashdot"))
        p.add_argument("--scale", type=float, default=0.01)
        p.add_argument("--days", type=int, default=days)
        p.add_argument("--seed", type=int, default=5)
        p.add_argument("--json", action="store_true",
                       help="emit the result series as JSON")
        p.add_argument("--check-invariants", action="store_true",
                       help="verify protocol invariants every epoch; a "
                            "violation aborts with a one-line repro string")
        p.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault-injection plan, e.g. "
                            "'drop_transfer:rate=1.0:from_epoch=24' "
                            "(implies --check-invariants)")
        p.add_argument("--repair", action="store_true",
                       help="enable the reliability layer: acknowledged "
                            "replica transfers with retries, mirror failure "
                            "detection, and proactive replica repair")
        p.add_argument("--architecture", default="soup", metavar="NAME",
                       help="pluggable architecture: soup (default), "
                            "superpeer, social_dht, or cache "
                            "(docs/ARCHITECTURES.md)")
        p.add_argument("--measure-dht", action="store_true",
                       help="run the shadow DHT probe and report "
                            "arch.dht.* / arch.storage.* metrics")
        _obs_flags(p)

    common(sub.add_parser(
        "sim", help="run the replication simulator (generic entry point)"
    ))
    common(sub.add_parser(
        "metrics", help="run a scenario and print the metrics-registry view"
    ))
    common(sub.add_parser("fig5", help="availability & replica overhead"))
    common(sub.add_parser("fig6", help="stored-profile CDF snapshots"), days=30)
    common(sub.add_parser("fig7", help="cohort robustness"), days=18)

    for name, help_text, default_fraction in (
        ("fig8", "altruistic nodes", 0.05),
        ("fig9", "mass departure", 0.05),
        ("fig10", "slander attack", 0.5),
        ("fig11", "sybil flooding", 0.5),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p, days=26)
        p.add_argument("--fraction", type=float, default=default_fraction)
        p.add_argument("--event-day", type=float, default=10.0)
        if name == "fig10":
            p.add_argument("--ties", action="store_true",
                           help="enable the tie-strength extension")

    sub.add_parser("table1", help="DOSN feature matrix")
    p3 = sub.add_parser("table3", help="dataset summary")
    p3.add_argument("--scale", type=float, default=1.0)
    p3.add_argument("--seed", type=int, default=0)
    sub.add_parser("table4", help="SOUP vs PeerSoN/Safebook")

    pd = sub.add_parser("deploy", help="31-node deployment emulation")
    pd.add_argument("--architecture", default="soup", metavar="NAME",
                    help="pluggable architecture: soup (default), superpeer, "
                         "social_dht, or cache (docs/ARCHITECTURES.md)")
    pd.add_argument("--desktop", type=int, default=27)
    pd.add_argument("--mobile", type=int, default=4)
    pd.add_argument("--duration", type=float, default=1800.0)
    pd.add_argument("--rounds", type=int, default=15)
    pd.add_argument("--seed", type=int, default=7)
    pd.add_argument("--crypto-mode", default="full",
                    choices=("full", "by_id"),
                    help="signature scheme: real RSA ('full') or simulated "
                         "by-ID signatures ('by_id'; see docs/PROTOCOL.md)")
    _obs_flags(pd)

    ps = sub.add_parser(
        "sweep",
        help="run a declarative scenario sweep over a process pool "
             "with checkpoint/resume (see docs/SWEEPS.md)",
    )
    ps.add_argument("spec", nargs="?", default=None,
                    help="sweep spec file (TOML or JSON); optional when the "
                         "grid is given via --set/--base flags")
    ps.add_argument("--out", "-o", required=True, metavar="DIR",
                    help="run directory (created if missing; re-running "
                         "resumes: completed tasks are skipped by content key)")
    ps.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                    help="worker processes (default: all cores; 1 = serial "
                         "in-process, byte-identical artifacts)")
    ps.add_argument("--set", action="append", metavar="KEY=V1,V2,...",
                    help="add a grid axis (repeatable), e.g. "
                         "--set altruist_fraction=0.0,0.02,0.05")
    ps.add_argument("--base", action="append", metavar="KEY=VALUE",
                    help="override applied to every task (repeatable), e.g. "
                         "--base scale=0.01; dotted keys reach nested "
                         "config (--base soup.epsilon=0.02)")
    ps.add_argument("--seeds", default=None, metavar="LIST|LO:HI",
                    help="seeds per cell: '0,1,5' or half-open range '0:4'")
    ps.add_argument("--name", default=None, help="sweep name for the manifest")
    ps.add_argument("--limit", type=int, default=None, metavar="N",
                    help="execute at most N pending tasks, then stop "
                         "(the rest stays pending for a later resume)")
    ps.add_argument("--status", action="store_true",
                    help="only report the run directory's completion state "
                         "(exit 3 if tasks are missing)")
    ps.add_argument("--watch", action="store_true",
                    help="with --status: poll the run directory and its "
                         "telemetry heartbeat, printing live progress with "
                         "ETA until the sweep completes (exit 0) or ends "
                         "with failures (exit 1)")
    ps.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                    help="poll interval for --watch (default: 2)")
    ps.add_argument("--aggregate-only", action="store_true",
                    help="skip execution; re-aggregate existing artifacts")
    ps.add_argument("--json", action="store_true",
                    help="emit the aggregated cells as JSON")
    ps.add_argument("--verbose", action="store_true",
                    help="also log cached (skipped) tasks")
    ps.add_argument("--profile-phases", action="store_true",
                    help="capture each task's phase breakdown in its "
                         "artifact, merge across workers, and print the "
                         "folded per-phase table at exit")

    pc = sub.add_parser(
        "compare",
        help="head-to-head architecture comparison: fan one scenario over "
             "the registered architectures (soup, superpeer, social_dht, "
             "cache) and print one table (see docs/ARCHITECTURES.md)",
    )
    pc.add_argument("spec", nargs="?", default=None,
                    help="sweep spec file (TOML or JSON) with the base "
                         "scenario; the architecture axis is injected")
    pc.add_argument("--out", "-o", required=True, metavar="DIR",
                    help="run directory (created if missing; re-running "
                         "resumes; the comparison artifact lands at "
                         "DIR/compare.json)")
    pc.add_argument("--archs", default=None, metavar="A,B,...",
                    help="comma-separated architectures to compare "
                         "(default: every registered one)")
    pc.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                    help="worker processes (default: all cores)")
    pc.add_argument("--base", action="append", metavar="KEY=VALUE",
                    help="override applied to every task (repeatable), "
                         "e.g. --base scale=0.005")
    pc.add_argument("--seeds", default=None, metavar="LIST|LO:HI",
                    help="seeds per architecture: '0,1,5' or range '0:4'")
    pc.add_argument("--name", default=None, help="run name for the manifest")
    pc.add_argument("--limit", type=int, default=None, metavar="N",
                    help="execute at most N pending tasks, then stop")
    pc.add_argument("--aggregate-only", action="store_true",
                    help="skip execution; re-aggregate existing artifacts")
    pc.add_argument("--json", action="store_true",
                    help="print the comparison artifact JSON instead of "
                         "the table")
    pc.add_argument("--verbose", action="store_true",
                    help="also log cached (skipped) tasks")

    pf = sub.add_parser("fig15", help="mirror under high request rates")
    pf.add_argument("--rate", type=float, default=20.0)
    pf.add_argument("--duration", type=int, default=300)
    pf.add_argument("--seed", type=int, default=7)

    pp = sub.add_parser(
        "perf",
        help="profile one epoch-loop run and export the per-phase "
             "breakdown: table, folded stacks (flamegraph input), "
             "Chrome trace-event JSON (see docs/OBSERVABILITY.md)",
    )
    pp.add_argument("--dataset", default="facebook")
    pp.add_argument("--scale", type=float, default=0.02)
    pp.add_argument("--days", type=int, default=4)
    pp.add_argument("--seed", type=int, default=42)
    pp.add_argument("--engine", default="columnar",
                    choices=("columnar", "reference"),
                    help="engine path to profile (both are instrumented)")
    pp.add_argument("--folded", default=None, metavar="PATH",
                    help="write folded-stack lines ('path micros') for "
                         "flamegraph.pl / speedscope")
    pp.add_argument("--chrome", default=None, metavar="PATH",
                    help="write Chrome trace-event JSON "
                         "(chrome://tracing, Perfetto)")
    pp.add_argument("--by-epoch", action="store_true",
                    help="also print the per-epoch phase breakdown")
    pp.add_argument("--json", action="store_true",
                    help="print the phase breakdown as JSON to stdout")

    pb = sub.add_parser(
        "bench",
        help="run the standing perf suite; emit a soup-bench/v2 artifact, "
             "optionally diff it against a baseline and record the perf "
             "trajectory ('soup bench history' / 'soup bench trend'; "
             "see docs/BENCHMARKS.md)",
    )
    pb.add_argument("names", nargs="*", metavar="BENCH",
                    help="benchmarks to run (default: the whole suite; "
                         "see --list), or the verbs 'history' / 'trend' "
                         "to inspect the recorded perf trajectory")
    pb.add_argument("--list", action="store_true",
                    help="list the registered benchmarks and exit")
    pb.add_argument("--bench-profile", default="smoke", metavar="PROFILE",
                    choices=("smoke", "full", "synth1m"),
                    help="suite sizing: 'smoke' (CI, seconds), 'full' "
                         "(paper-scale WOSN epoch loop; minutes), or "
                         "'synth1m' (the standing million-node "
                         "scale-free generator rung)")
    pb.add_argument("--scale", type=float, default=None,
                    help="override the profile's dataset scale")
    pb.add_argument("--seed", type=int, default=None,
                    help="override the profile's seed")
    pb.add_argument("--out", default=None, metavar="PATH",
                    help="write the BENCH_*.json artifact here "
                         "(default: BENCH_<profile>.json)")
    pb.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline artifact to diff against "
                         "(e.g. benchmarks/baselines/BENCH_baseline.json)")
    pb.add_argument("--check", action="store_true",
                    help="with --baseline: exit 4 if any benchmark's "
                         "throughput regresses beyond the threshold")
    pb.add_argument("--threshold", type=float, default=None, metavar="FRAC",
                    help="relative throughput drop tolerated before a "
                         "regression is flagged (default: 0.30)")
    pb.add_argument("--json", action="store_true",
                    help="print the artifact JSON to stdout")
    pb.add_argument("--append-history", default=None, metavar="PATH",
                    help="append this run to a HISTORY.jsonl perf "
                         "trajectory (see docs/BENCHMARKS.md)")
    pb.add_argument("--history", default=None, metavar="PATH",
                    help="trajectory file for 'history'/'trend' "
                         "(default: benchmarks/baselines/HISTORY.jsonl)")
    pb.add_argument("--last", type=int, default=None, metavar="N",
                    help="with 'history': only show the last N entries")
    pb.add_argument("--case", default=None, metavar="BENCH",
                    help="with 'history': only show this benchmark's column")
    pb.add_argument("--check-history", action="store_true",
                    help="with 'trend': exit 4 if the newest history entry "
                         "regresses against the median of its predecessors")
    pb.add_argument("--window", type=int, default=5, metavar="N",
                    help="with --check-history: median window of prior "
                         "entries used as the baseline (default: 5)")

    prs = sub.add_parser(
        "resilience",
        help="run a chaos scenario on a live-socket (or simulated) cluster "
             "and evaluate declarative gates (see docs/RESILIENCE.md)",
    )
    prs.add_argument("--nodes", type=int, default=25,
                     help="cluster size (default 25)")
    prs.add_argument("--seed", type=int, default=7)
    prs.add_argument("--backend", default="live", choices=("sim", "live"),
                     help="transport backend: real TCP loopback sockets "
                          "('live') or the deterministic simulator ('sim')")
    prs.add_argument("--chaos", default="",
                     help="fault-plan spec, e.g. "
                          "'kill:epoch=3:count=7;partition:epoch=5:heal=8'")
    prs.add_argument("--epochs", type=int, default=12)
    prs.add_argument("--epoch-s", type=float, default=0.5, metavar="SECONDS",
                     help="epoch length (wall seconds on live, simulated "
                          "seconds on sim)")
    prs.add_argument("--rps", type=float, default=40.0,
                     help="open-loop request rate (fig15-style mix)")
    prs.add_argument("--gates", default=None, metavar="TOML",
                     help="gate file to enforce "
                          "(e.g. configs/gates/smoke.toml)")
    prs.add_argument("--report", default=None, metavar="PATH",
                     help="write the soup-resilience/v1 report JSON here")
    prs.add_argument("--json", action="store_true",
                     help="print the full report JSON to stdout")
    prs.add_argument("--obs-dir", default=None, metavar="DIR",
                     help="enable the live observability plane: per-node "
                          "flight recorders, merged trace analysis, and a "
                          "heartbeat.json for `soup live top`")
    prs.add_argument("--bundle", default=None, metavar="DIR",
                     help="after the run (and gate evaluation), assemble a "
                          "content-keyed post-mortem bundle under DIR "
                          "(requires --obs-dir); analyze it with "
                          "`soup postmortem`")

    ppm = sub.add_parser(
        "postmortem",
        help="analyze a post-mortem bundle: verify hashes, merge the flight "
             "recorders into one causal trace, and reconstruct "
             "kill -> consequence chains (see docs/OBSERVABILITY.md)",
    )
    ppm.add_argument("bundle", help="bundle directory (bundle-<key>)")
    ppm.add_argument("--json", action="store_true",
                     help="emit the full post-mortem as JSON")
    ppm.add_argument("--max-links", type=int, default=8, metavar="N",
                     help="evidence links shown per causal chain (default: 8)")
    ppm.add_argument("--require-chain", action="store_true",
                     help="exit 3 unless at least one cross-node causal chain "
                          "was reconstructed (CI guard)")

    pl = sub.add_parser(
        "live", help="watch a live resilience run's streaming telemetry"
    )
    lsub = pl.add_subparsers(dest="live_command", required=True)
    plt = lsub.add_parser(
        "top",
        help="poll a run's heartbeat.json: epoch progress, per-node Lamport "
             "clocks, merged live metrics",
    )
    plt.add_argument("--dir", required=True, metavar="DIR",
                     help="the run's --obs-dir")
    plt.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="poll interval (default: 2.0)")
    plt.add_argument("--once", action="store_true",
                     help="print one snapshot and exit "
                          "(exit 3 if the run has not finished)")

    pr = sub.add_parser("replay", help="replay a soup-repro/v1 violation line")
    pr.add_argument("line", help="one-line repro string from an InvariantViolation")

    pv = sub.add_parser(
        "trace-validate", help="validate a JSONL trace against the event schemas"
    )
    pv.add_argument("path", help="trace file written by --trace")

    pt = sub.add_parser(
        "trace",
        help="analyze JSONL trace files: replica lifecycles, unavailability "
             "attribution, anomalies (see docs/OBSERVABILITY.md)",
    )
    tsub = pt.add_subparsers(dest="trace_command", required=True)

    pta = tsub.add_parser(
        "analyze",
        help="stream a trace into lifecycle, attribution, hot-spot and "
             "anomaly views",
    )
    pta.add_argument("path", help="trace file (.jsonl or .jsonl.gz)")
    pta.add_argument("--json", action="store_true",
                     help="emit the full analysis as JSON")
    pta.add_argument("--top", type=int, default=20, metavar="N",
                     help="rows per ranking table (default: 20)")
    pta.add_argument("--lookback", type=int, default=24, metavar="EPOCHS",
                     help="how far before an unavailability window a causal "
                          "event may lie and still be blamed (default: 24)")

    ptn = tsub.add_parser(
        "anomalies", help="run only the rule-based anomaly detectors"
    )
    ptn.add_argument("path", help="trace file (.jsonl or .jsonl.gz)")
    ptn.add_argument("--json", action="store_true",
                     help="emit findings as JSON")
    ptn.add_argument("--repair-loop-count", type=int, default=3, metavar="K",
                     help="repair rounds per owner within the window that "
                          "count as a loop (default: 3)")
    ptn.add_argument("--repair-loop-window", type=int, default=12,
                     metavar="EPOCHS",
                     help="sliding window for repair loops (default: 12)")
    ptn.add_argument("--churn-storm-drops", type=int, default=20, metavar="N",
                     help="replica drops within the window that count as a "
                          "storm (default: 20)")
    ptn.add_argument("--churn-storm-window", type=int, default=2,
                     metavar="EPOCHS",
                     help="sliding window for churn storms (default: 2)")
    ptn.add_argument("--flap-toggles", type=int, default=4, metavar="N",
                     help="times a (owner, mirror) pair may enter/leave the "
                          "mirror set before it is flapping (default: 4)")

    ptt = tsub.add_parser(
        "timeline", help="causal timeline of every event concerning one owner"
    )
    ptt.add_argument("path", help="trace file (.jsonl or .jsonl.gz)")
    ptt.add_argument("owner", type=int, help="owner node id")
    ptt.add_argument("--json", action="store_true",
                     help="emit timeline entries as JSON")

    ptv = tsub.add_parser(
        "validate",
        help="validate a trace against the event schemas (alias of "
             "trace-validate, gzip-aware)",
    )
    ptv.add_argument("path", help="trace file (.jsonl or .jsonl.gz)")

    return parser


def _cmd_perf(args) -> int:
    from repro.obs.perf import chrome_trace, folded_lines
    from repro.obs.profiling import PROFILER
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(
        dataset=args.dataset,
        scale=args.scale,
        n_days=args.days,
        seed=args.seed,
        engine_mode=args.engine,
    )
    PROFILER.reset()
    PROFILER.enable()
    PROFILER.record_events = bool(args.chrome)
    try:
        result = run_scenario(config)
    finally:
        PROFILER.disable()
        PROFILER.record_events = False

    print(f"dataset={args.dataset} scale={args.scale} days={args.days} "
          f"seed={args.seed} engine={args.engine} "
          f"steady={result.steady_state_availability():.3f}",
          file=sys.stderr)
    for line in PROFILER.report_lines(top_level="engine.epoch"):
        print(line)
    if args.by_epoch:
        print("\nper-epoch phase wall seconds:")
        for epoch in PROFILER.epochs():
            phases = PROFILER.epoch_phases(epoch)
            rendered = " ".join(
                f"{name.rsplit('.', 1)[-1]}={wall:.4f}"
                for name, wall in sorted(phases.items())
            )
            print(f"epoch {epoch:>4}: {rendered}")
    if args.folded:
        lines = folded_lines(PROFILER)
        with open(args.folded, "w", encoding="utf-8") as sink:
            sink.write("\n".join(lines) + "\n")
        print(f"folded stacks: {args.folded} ({len(lines)} frames)",
              file=sys.stderr)
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as sink:
            json.dump(chrome_trace(PROFILER), sink)
            sink.write("\n")
        print(f"chrome trace: {args.chrome}", file=sys.stderr)
    if args.json:
        from repro.obs.perf import phase_breakdown

        print(json.dumps(
            {
                "phases": phase_breakdown(PROFILER),
                "totals": PROFILER.totals(),
                "cpu_totals": PROFILER.cpu_totals(),
                "counts": PROFILER.counts(),
            },
            indent=2,
            sort_keys=True,
        ))
    return 0


def _regression_summary(comparison) -> str:
    """The exit-4 line: every regressed case, with its attributed phase(s)
    in brackets when the artifacts carry phase breakdowns."""
    parts = []
    for row in comparison.regressions:
        if row.attributed_phases:
            parts.append(f"{row.name} [{', '.join(row.attributed_phases)}]")
        else:
            parts.append(row.name)
    return f"perf regression: {'; '.join(parts)}"


def _cmd_bench_history(args) -> int:
    from repro.bench import (
        DEFAULT_HISTORY_PATH,
        DEFAULT_THRESHOLD,
        check_history,
        load_history,
        render_history_lines,
        render_trend_lines,
    )

    mode = args.names[0]
    if len(args.names) > 1:
        print(f"bench {mode}: unexpected arguments {args.names[1:]}",
              file=sys.stderr)
        return 2
    history_path = args.history or DEFAULT_HISTORY_PATH
    try:
        entries = load_history(history_path)
    except ValueError as exc:
        print(f"bench {mode}: {exc}", file=sys.stderr)
        return 2
    if mode == "history":
        for line in render_history_lines(entries, case=args.case,
                                         last=args.last):
            print(line)
        return 0
    for line in render_trend_lines(entries):
        print(line)
    if args.check_history:
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        comparison, lines = check_history(
            entries, threshold=threshold, window=args.window
        )
        print()
        for line in lines:
            print(line)
        if comparison is not None and not comparison.ok:
            print(_regression_summary(comparison), file=sys.stderr)
            return 4
    return 0


def _cmd_bench(args) -> int:
    from datetime import datetime, timezone

    from repro.bench import (
        DEFAULT_THRESHOLD,
        append_history,
        benchmark_names,
        build_artifact,
        compare,
        history_entry,
        load_artifact,
        resolve_profile,
        run_suite,
        write_artifact,
    )

    if args.names and args.names[0] in ("history", "trend"):
        return _cmd_bench_history(args)
    if args.list:
        for name in benchmark_names():
            print(name)
        return 0

    profile = resolve_profile(
        args.bench_profile, scale=args.scale, seed=args.seed
    )
    names = args.names or None
    print(f"profile={profile.name} scale={profile.scale} seed={profile.seed}",
          file=sys.stderr)
    results = run_suite(profile, names)
    artifact = build_artifact(
        results,
        profile=profile.name,
        seed=profile.seed,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )

    out_path = args.out or f"BENCH_{profile.name}.json"
    write_artifact(artifact, out_path)
    for result in results:
        print(f"{result.name:<24} {result.throughput:>12.1f} {result.unit:<16} "
              f"wall={result.wall_seconds:.3f}s")
    print(f"artifact: {out_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
    if args.append_history:
        append_history(args.append_history, history_entry(artifact))
        print(f"history: appended to {args.append_history}", file=sys.stderr)

    if args.baseline:
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        comparison = compare(load_artifact(args.baseline), artifact, threshold)
        print(f"\nbaseline diff vs {args.baseline} (threshold {threshold:.0%}):")
        for line in comparison.report_lines():
            print(line)
        if args.check and not comparison.ok:
            print(_regression_summary(comparison), file=sys.stderr)
            return 4
    elif args.check:
        print("bench --check requires --baseline", file=sys.stderr)
        return 2
    return 0


def _cmd_resilience(args) -> int:
    from repro.deploy.gates import evaluate_gates, load_gates
    from repro.deploy.live import ResilienceConfig, ResilienceHarness

    if args.bundle and not args.obs_dir:
        print("resilience: --bundle requires --obs-dir", file=sys.stderr)
        return 2
    config = ResilienceConfig(
        n_nodes=args.nodes,
        seed=args.seed,
        backend=args.backend,
        chaos=args.chaos,
        epochs=args.epochs,
        epoch_s=args.epoch_s,
        load_rps=args.rps,
        obs_dir=args.obs_dir or "",
    )
    print(
        f"resilience: backend={config.backend} nodes={config.n_nodes} "
        f"seed={config.seed} epochs={config.epochs} chaos={config.chaos!r}",
        file=sys.stderr,
    )
    report = ResilienceHarness(config).run()

    gates = load_gates(args.gates) if args.gates else []
    outcome = evaluate_gates(gates, report)
    report["gates"] = outcome

    if args.report:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"report: {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        availability = report["availability"]
        print(
            f"availability mean={availability['mean']:.4f} "
            f"min={availability['min']:.4f} "
            f"during-chaos-min={availability['during_chaos_min']:.4f}"
        )
        read = report["latency"]["read"]
        print(
            f"read latency p50={read['p50_s'] * 1000:.2f}ms "
            f"p99={read['p99_s'] * 1000:.2f}ms ({read['count']} reads)"
        )
        durability = report["durability"]
        print(
            f"durability acked={durability['acked_updates']} "
            f"lost={durability['lost_acked_updates']}"
        )
        recovery = report["recovery"]
        if recovery["applicable"]:
            seconds = recovery["seconds"]
            print(
                "recovery after heal: "
                + (f"{seconds:.2f}s" if recovery["recovered"] else "NOT RECOVERED")
            )
    for result in outcome["results"]:
        status = "PASS" if result["passed"] else "FAIL"
        print(
            f"gate {status} {result['name']}: {result['metric']} "
            f"{result['op']} {result['value']} (actual {result['actual']})"
        )
    obs = report.get("obs")
    if obs:
        print(
            f"obs: {obs['trace_events']} trace events across "
            f"{obs['flight_files']} flight recorder(s), "
            f"{obs['chaos_actions']} chaos action(s), "
            f"{obs['anomalies']['total']} anomaly finding(s) -> {obs['dir']}",
            file=sys.stderr,
        )
    if args.bundle:
        # Assembled after gate evaluation so the bundle records the verdict.
        from repro.deploy.postmortem import assemble_bundle

        bundle_dir = assemble_bundle(args.obs_dir, args.bundle, report=report)
        print(f"bundle: {bundle_dir}", file=sys.stderr)
    if gates and not outcome["passed"]:
        names = ", ".join(outcome["violated"])
        print(f"resilience gates violated: {names}", file=sys.stderr)
        return 5
    return 0


def _cmd_postmortem(args) -> int:
    from repro.deploy.postmortem import (
        BundleError,
        correlate,
        load_bundle,
        render_postmortem,
    )

    try:
        bundle = load_bundle(args.bundle)
    except BundleError as exc:
        print(f"postmortem: {exc}", file=sys.stderr)
        return 2
    result = correlate(bundle)
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        for line in render_postmortem(result, max_links=args.max_links):
            print(line)
    if args.require_chain and not result.cross_node_chains:
        print(
            "postmortem: no cross-node causal chain reconstructed",
            file=sys.stderr,
        )
        return 3
    return 0


def _render_live_top(heartbeat) -> List[str]:
    """One `soup live top` frame from a heartbeat document."""
    epoch = heartbeat.get("epoch", 0)
    total = heartbeat.get("epochs", 0)
    state = "done" if heartbeat.get("done") else "running"
    lines = [f"live run: epoch {epoch}/{total} [{state}]"]
    nodes = heartbeat.get("nodes") or {}
    if nodes:
        lamports = [int(n.get("lamport", 0)) for n in nodes.values()]
        events = sum(int(n.get("events", 0)) for n in nodes.values())
        lines.append(
            f"  nodes: {len(nodes)}  events: {events}  "
            f"lamport frontier: {max(lamports)} (min {min(lamports)})"
        )
    metrics = heartbeat.get("metrics") or {}
    sent = metrics.get("live.msgs.sent")
    recv = metrics.get("live.msgs.recv")
    if sent is not None or recv is not None:
        sent_bytes = metrics.get("live.bytes.sent", 0)
        lines.append(
            f"  messages: sent={int(sent or 0)} recv={int(recv or 0)} "
            f"bytes={int(sent_bytes)}"
        )
    latency = metrics.get("live.msg.latency_s")
    if isinstance(latency, dict) and latency.get("count"):
        lines.append(
            f"  latency: mean={latency['mean'] * 1000:.1f}ms "
            f"p50={latency['p50'] * 1000:.1f}ms "
            f"p90={latency['p90'] * 1000:.1f}ms "
            f"({int(latency['count'])} msgs)"
        )
    return lines


def _cmd_live_top(args) -> int:
    """Poll an obs dir's heartbeat until the run completes (PR 5's sweep
    ``--watch`` loop, pointed at the resilience harness's heartbeat)."""
    import os
    import time as _time

    path = os.path.join(args.dir, "heartbeat.json")
    while True:
        heartbeat = None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                heartbeat = json.load(handle)
        except (OSError, json.JSONDecodeError):
            pass
        if heartbeat is None or heartbeat.get("schema") != "soup-live-heartbeat/v1":
            if args.once:
                print(f"{args.dir}: no live heartbeat", file=sys.stderr)
                return 3
            print(f"{args.dir}: waiting for live heartbeat...", file=sys.stderr)
            _time.sleep(args.interval)
            continue
        for line in _render_live_top(heartbeat):
            print(line)
        if heartbeat.get("done"):
            return 0
        if args.once:
            return 3
        _time.sleep(args.interval)


def _cmd_live(args) -> int:
    if args.live_command == "top":
        return _cmd_live_top(args)
    raise AssertionError(f"unhandled live command {args.live_command}")


def _cmd_replay(args) -> int:
    from repro.sim.invariants import run_repro

    violation = run_repro(args.line)
    if violation is None:
        print("no violation: scenario completed with invariant checks green")
        return 1
    print(violation.to_json())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = _setup_observability(args)
    try:
        return _dispatch(args)
    except Exception as exc:  # noqa: BLE001 - surface repro line, keep traceback opt-in
        from repro.sim.invariants import InvariantViolation

        if not isinstance(exc, InvariantViolation):
            raise
        print(f"invariant violation: {str(exc).splitlines()[0]}", file=sys.stderr)
        print(f"repro: {exc.repro}", file=sys.stderr)
        return 2
    finally:
        _teardown_observability(args, tracer)


def _dispatch(args) -> int:
    command = args.command
    if command in ("fig5", "sim"):
        return _cmd_fig5(args)
    if command == "metrics":
        return _cmd_metrics(args)
    if command == "trace-validate":
        return _cmd_trace_validate(args)
    if command == "trace":
        return _cmd_trace(args)
    if command == "fig6":
        return _cmd_fig6(args)
    if command == "fig7":
        return _cmd_fig7(args)
    if command == "fig8":
        return _cmd_attack(args, "altruism")
    if command == "fig9":
        return _cmd_attack(args, "departure")
    if command == "fig10":
        return _cmd_attack(args, "slander")
    if command == "fig11":
        return _cmd_attack(args, "flooding")
    if command == "table1":
        return _cmd_table1(args)
    if command == "table3":
        return _cmd_table3(args)
    if command == "table4":
        return _cmd_table4(args)
    if command == "deploy":
        return _cmd_deploy(args)
    if command == "fig15":
        return _cmd_fig15(args)
    if command == "sweep":
        return _cmd_sweep(args)
    if command == "compare":
        return _cmd_compare(args)
    if command == "resilience":
        return _cmd_resilience(args)
    if command == "postmortem":
        return _cmd_postmortem(args)
    if command == "live":
        return _cmd_live(args)
    if command == "replay":
        return _cmd_replay(args)
    if command == "bench":
        return _cmd_bench(args)
    if command == "perf":
        return _cmd_perf(args)
    raise AssertionError(f"unhandled command {command}")


if __name__ == "__main__":
    raise SystemExit(main())
