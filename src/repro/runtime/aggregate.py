"""Reduce a sweep run directory back into the tables the paper reports.

Artifacts are grouped into **cells** — tasks that share every override
except the seed — and each cell's per-seed summary numbers are reduced to
mean/min/max/percentiles, the shape the paper's "averaged over N seeds"
tables quote.  Full :class:`~repro.sim.metrics.SimulationResult` objects
are reconstructed from the artifacts too, so the existing
:mod:`repro.sim.reporting` renderers (``describe_result``,
``markdown_report``) work on sweep output unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.metrics import SimulationResult, percentile_of
from repro.runtime.store import RunStore


@dataclass
class TaskRecord:
    """One completed task, loaded back from its artifact."""

    task_id: str
    key: str
    overrides: Dict[str, Any]
    summary: Dict[str, float]
    _result_payload: Dict[str, Any] = field(repr=False, default_factory=dict)
    _result: Optional[SimulationResult] = field(repr=False, default=None)

    @property
    def seed(self) -> int:
        return int(self.overrides.get("seed", 0))

    @property
    def result(self) -> SimulationResult:
        """The reconstructed simulation result (lazily deserialized)."""
        if self._result is None:
            self._result = SimulationResult.from_json_dict(self._result_payload)
        return self._result

    def cell_items(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(
            sorted(
                (key, value)
                for key, value in self.overrides.items()
                if key != "seed"
            )
        )

    def cell_label(self) -> str:
        items = self.cell_items()
        if not items:
            return "(defaults)"
        return " ".join(f"{key}={value}" for key, value in items)


@dataclass
class SweepCell:
    """All seeds of one configuration, with reduced summary statistics."""

    label: str
    overrides: Dict[str, Any]  # without the seed
    records: List[TaskRecord] = field(default_factory=list)

    @property
    def seeds(self) -> List[int]:
        return [record.seed for record in self.records]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for record in self.records:
            for name in record.summary:
                if name not in names:
                    names.append(name)
        return names

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-metric mean/min/max/p10/p50/p90 across seeds."""
        reduced: Dict[str, Dict[str, float]] = {}
        for name in self.metric_names():
            values = [
                float(record.summary[name])
                for record in self.records
                if name in record.summary
            ]
            reduced[name] = {
                "n": float(len(values)),
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
                "p10": percentile_of(values, 0.1),
                "p50": percentile_of(values, 0.5),
                "p90": percentile_of(values, 0.9),
            }
        return reduced


def load_records(run_dir: "str | Path") -> List[TaskRecord]:
    """Load every completed task of a run directory, in manifest order."""
    store = RunStore(run_dir)
    manifest = store.load_manifest()
    if manifest is None:
        raise FileNotFoundError(f"no sweep manifest in {run_dir}")
    records: List[TaskRecord] = []
    for entry in manifest["tasks"]:
        artifact = store.read_artifact(entry["key"])
        if artifact is None:
            continue
        records.append(
            TaskRecord(
                task_id=entry["id"],
                key=entry["key"],
                overrides=dict(artifact["task"]["overrides"]),
                summary=dict(artifact["summary"]),
                _result_payload=artifact["result"],
            )
        )
    return records


def aggregate(records: List[TaskRecord]) -> List[SweepCell]:
    """Group records into seed-cells, preserving first-appearance order."""
    cells: Dict[Tuple[Tuple[str, Any], ...], SweepCell] = {}
    for record in records:
        items = record.cell_items()
        cell = cells.get(items)
        if cell is None:
            cell = cells[items] = SweepCell(
                label=record.cell_label(),
                overrides={key: value for key, value in items},
            )
        cell.records.append(record)
    return list(cells.values())


def aggregate_run(run_dir: "str | Path") -> List[SweepCell]:
    return aggregate(load_records(run_dir))


def results_by_label(records: List[TaskRecord]) -> Dict[str, SimulationResult]:
    """``label -> SimulationResult`` for reporting helpers that expect one
    result per named run (labels include the seed when cells have several)."""
    multi_seed = len({record.seed for record in records}) > 1
    named: Dict[str, SimulationResult] = {}
    for record in records:
        label = record.cell_label()
        if multi_seed:
            label = f"{label} seed={record.seed}"
        named[label] = record.result
    return named


def aggregate_json(cells: List[SweepCell]) -> str:
    """The reduced table as JSON (the ``soup sweep --json`` output)."""
    payload = [
        {
            "label": cell.label,
            "overrides": cell.overrides,
            "seeds": cell.seeds,
            "stats": cell.stats(),
        }
        for cell in cells
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
