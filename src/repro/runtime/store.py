"""Crash-safe on-disk run directories for sweeps.

Layout of one run directory::

    <run_dir>/
      manifest.json          # spec, task list, last known statuses
      tasks/<task_key>.json  # one artifact per completed task
      telemetry/
        heartbeat.json       # live progress snapshot (done/total, ETA)
        events.jsonl         # sweep_task_started/finished trace events

Every file is written atomically: serialize to a temp file in the same
directory, ``fsync``, then ``os.replace`` over the final name.  A sweep
killed at any instant therefore leaves either a complete artifact or none —
never a truncated one — which is what makes resume lossless.

The ``telemetry/`` files are the exception to determinism, on purpose:
they carry wallclock timestamps and durations so a running sweep can be
watched live (``soup sweep --out DIR --status --watch``).  They are
append-only observability output, never read by resume.

Completion is decided from the artifacts alone (a key's artifact exists,
parses, and self-identifies with that key); the statuses recorded in the
manifest are a convenience snapshot written when a sweep run finishes, and
are never trusted by resume.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.runtime.spec import SweepSpec, SweepTask

MANIFEST_SCHEMA = "soup-sweep-run/v1"
ARTIFACT_SCHEMA = "soup-sweep-task/v1"
HEARTBEAT_SCHEMA = "soup-sweep-heartbeat/v1"


def atomic_write_json(path: Path, document: Dict[str, Any]) -> None:
    """Serialize ``document`` and atomically replace ``path`` with it."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class RunStore:
    """One sweep run directory: manifest + per-task artifacts."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.telemetry_dir = self.root / "telemetry"
        #: Next telemetry seq; initialized lazily from the existing event
        #: file so resumed sweeps keep the sequence monotonic.
        self._telemetry_seq: Optional[int] = None

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def heartbeat_path(self) -> Path:
        return self.telemetry_dir / "heartbeat.json"

    @property
    def telemetry_events_path(self) -> Path:
        return self.telemetry_dir / "events.jsonl"

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def initialize(self, spec: SweepSpec, tasks: List[SweepTask]) -> None:
        """(Re-)write the manifest for this sweep's task list.

        Existing artifacts are left untouched — they are the checkpoint.
        Re-initializing with a changed spec simply records the new task
        list; overlapping tasks (same content key) still count as done.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.tasks_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "name": spec.name,
            "spec": spec.to_mapping(),
            "spec_hash": spec.spec_hash(),
            "tasks": [
                {
                    "id": task.task_id,
                    "key": task.key,
                    "overrides": task.overrides,
                    "status": "pending",
                }
                for task in tasks
            ],
        }
        atomic_write_json(self.manifest_path, manifest)

    def load_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.manifest_path.exists():
            return None
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"{self.manifest_path}: unsupported manifest schema "
                f"{manifest.get('schema')!r}"
            )
        return manifest

    def finalize(self, statuses: Dict[str, Dict[str, Any]]) -> None:
        """Record per-task outcomes (``key -> {"status": ..., "error": ...}``)
        into the manifest.  Purely informational — resume re-derives truth
        from the artifacts."""
        manifest = self.load_manifest()
        if manifest is None:
            raise RuntimeError(f"no manifest in {self.root}; initialize first")
        for entry in manifest["tasks"]:
            outcome = statuses.get(entry["key"])
            if outcome is not None:
                entry["status"] = outcome["status"]
                error = outcome.get("error")
                if error:
                    entry["error"] = error
                else:
                    entry.pop("error", None)
        atomic_write_json(self.manifest_path, manifest)

    # ------------------------------------------------------------------
    # telemetry (live progress; wallclock on purpose, never read by resume)
    # ------------------------------------------------------------------
    def write_heartbeat(self, payload: Dict[str, Any]) -> None:
        """Atomically replace the heartbeat snapshot (schema-stamped)."""
        document = {"schema": HEARTBEAT_SCHEMA}
        document.update(payload)
        atomic_write_json(self.heartbeat_path, document)

    def read_heartbeat(self) -> Optional[Dict[str, Any]]:
        """The last heartbeat, or None if absent/corrupt (mid-replace)."""
        if not self.heartbeat_path.exists():
            return None
        try:
            with open(self.heartbeat_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != HEARTBEAT_SCHEMA:
            return None
        return payload

    def append_telemetry_event(self, event: str, **fields: Any) -> None:
        """Append one schema-valid trace event to ``telemetry/events.jsonl``.

        The file is a regular v1 trace (``soup trace-validate`` passes on
        it); ``seq`` continues across resumes.  Each record is one
        ``write`` of a newline-terminated line, so concurrent appends
        from one process never interleave mid-record.
        """
        from repro.obs.trace import TRACE_SCHEMA_VERSION

        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        if self._telemetry_seq is None:
            try:
                with open(
                    self.telemetry_events_path, "r", encoding="utf-8"
                ) as handle:
                    self._telemetry_seq = sum(1 for _ in handle)
            except OSError:
                self._telemetry_seq = 0
        record = {"v": TRACE_SCHEMA_VERSION, "seq": self._telemetry_seq,
                  "event": event}
        record.update(fields)
        self._telemetry_seq += 1
        with open(self.telemetry_events_path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def artifact_path(self, key: str) -> Path:
        return self.tasks_dir / f"{key}.json"

    def write_artifact(self, task: SweepTask, payload: Dict[str, Any]) -> Path:
        if payload.get("schema") != ARTIFACT_SCHEMA:
            raise ValueError(
                f"artifact for {task.task_id} missing schema {ARTIFACT_SCHEMA!r}"
            )
        if payload.get("task", {}).get("key") != task.key:
            raise ValueError(
                f"artifact for {task.task_id} does not self-identify with "
                f"key {task.key}"
            )
        path = self.artifact_path(task.key)
        atomic_write_json(path, payload)
        return path

    def read_artifact(self, key: str) -> Optional[Dict[str, Any]]:
        """The artifact for ``key``, or None if absent or invalid (a
        corrupt artifact is treated as missing, so resume re-runs it)."""
        path = self.artifact_path(key)
        if not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != ARTIFACT_SCHEMA:
            return None
        if payload.get("task", {}).get("key") != key:
            return None
        return payload

    def completed_keys(self) -> Set[str]:
        """Keys with a valid artifact on disk (the resume checkpoint)."""
        completed: Set[str] = set()
        if not self.tasks_dir.is_dir():
            return completed
        for path in sorted(self.tasks_dir.glob("*.json")):
            key = path.stem
            if self.read_artifact(key) is not None:
                completed.add(key)
        return completed
