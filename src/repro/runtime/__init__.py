"""repro.runtime — the parallel sweep orchestrator.

The paper's evaluation is a grid of scenarios (datasets × scales × seeds ×
attack/altruism/departure fractions).  This package runs such grids as one
declarative **sweep**: expand a :class:`SweepSpec` into content-hashed
tasks, fan them out over a process pool (``--jobs N``; ``--jobs 1`` is the
byte-identical serial reference), checkpoint every completed task into an
atomic on-disk run directory, resume losslessly after a kill, and reduce
the artifacts back into the mean/percentile-across-seeds tables
:mod:`repro.sim.reporting` prints.

See ``docs/SWEEPS.md`` for the spec format, run-directory layout and
resume semantics; the ``soup sweep`` CLI subcommand drives all of it.
"""

from repro.runtime.aggregate import (
    SweepCell,
    TaskRecord,
    aggregate,
    aggregate_json,
    aggregate_run,
    load_records,
    results_by_label,
)
from repro.runtime.executor import (
    SweepOutcome,
    SweepTelemetry,
    execute_task,
    run_sweep,
)
from repro.runtime.spec import (
    SweepSpec,
    SweepTask,
    TASK_KEY_VERSION,
    build_config,
    config_fingerprint,
    parse_base_flag,
    parse_seeds,
    parse_set_flag,
    task_key,
)
from repro.runtime.store import (
    ARTIFACT_SCHEMA,
    HEARTBEAT_SCHEMA,
    MANIFEST_SCHEMA,
    RunStore,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "HEARTBEAT_SCHEMA",
    "MANIFEST_SCHEMA",
    "RunStore",
    "SweepCell",
    "SweepOutcome",
    "SweepSpec",
    "SweepTelemetry",
    "SweepTask",
    "TASK_KEY_VERSION",
    "TaskRecord",
    "aggregate",
    "aggregate_json",
    "aggregate_run",
    "build_config",
    "config_fingerprint",
    "execute_task",
    "load_records",
    "parse_base_flag",
    "parse_seeds",
    "parse_set_flag",
    "results_by_label",
    "run_sweep",
    "task_key",
]
