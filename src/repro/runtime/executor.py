"""The sweep executor: fan tasks out over processes, checkpoint each one.

``run_sweep`` expands a :class:`~repro.runtime.spec.SweepSpec`, skips every
task whose artifact already exists in the run directory (checkpoint/resume
by content-hashed task key), and executes the rest — either in-process
(``jobs=1``, the byte-identical serial reference path) or on a spawned
``ProcessPoolExecutor``.

Determinism contract: a task's artifact depends only on its resolved
config.  Workers run nothing but :func:`repro.sim.engine.run_task` under a
disabled tracer and a fresh metrics registry, the spawn start method keeps
them free of inherited interpreter state, and artifacts are serialized with
sorted keys — so ``--jobs 1`` and ``--jobs N`` produce byte-identical
artifacts, and re-running a finished sweep re-runs nothing.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.obs import MetricsRegistry, set_tracer
from repro.obs.profiling import Profiler
from repro.runtime.spec import SweepSpec, SweepTask, build_config
from repro.runtime.store import ARTIFACT_SCHEMA, RunStore

logger = logging.getLogger("repro.runtime.executor")

#: ``progress(event, task, detail)`` callback; events are "skip", "ok",
#: "fail" with detail = seconds (ok), error string (fail), or None.
ProgressFn = Callable[[str, SweepTask, Any], None]

#: Seconds between heartbeat refreshes while waiting on long tasks.
HEARTBEAT_INTERVAL_S = 5.0


class SweepTelemetry:
    """Live progress for one ``run_sweep`` invocation.

    Appends ``sweep_task_started`` / ``sweep_task_finished`` trace events
    to ``<run_dir>/telemetry/events.jsonl`` and keeps
    ``telemetry/heartbeat.json`` fresh with done/total counts, the mean
    task duration and an ETA — what ``soup sweep --status --watch``
    renders.  All wallclock: telemetry describes the orchestrator, not
    the simulated world, so the artifact determinism contract is
    untouched.
    """

    def __init__(self, store: RunStore, name: str, total: int,
                 cached: int, workers: int) -> None:
        self.store = store
        self.name = name
        self.total = total
        self.done = cached  # cached tasks count as done from the start
        self.failed = 0
        self.running = 0
        self.workers = max(1, workers)
        self.durations: List[float] = []
        self.interrupted = False

    def _eta_seconds(self) -> Optional[float]:
        if not self.durations:
            return None
        pending = self.total - self.done
        mean = sum(self.durations) / len(self.durations)
        return pending * mean / self.workers

    def heartbeat(self) -> None:
        self.store.write_heartbeat({
            "name": self.name,
            "updated_at": time.time(),
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "running": self.running,
            "mean_task_seconds": (
                sum(self.durations) / len(self.durations)
                if self.durations else None
            ),
            "eta_seconds": self._eta_seconds(),
            "interrupted": self.interrupted,
        })

    def sweep_interrupted(self, reason: str) -> None:
        """Record the early stop: one final trace event + a last valid
        heartbeat (``interrupted: true``) so ``--status`` and ``--resume``
        see a cleanly checkpointed, not silently dead, run."""
        self.interrupted = True
        self.store.append_telemetry_event(
            "sweep_interrupted", done=self.done, total=self.total,
            running=self.running, reason=reason,
        )
        self.heartbeat()

    def task_started(self, task: SweepTask) -> None:
        self.running += 1
        self.store.append_telemetry_event(
            "sweep_task_started", task=task.task_id, key=task.key,
            pending=self.total - self.done, total=self.total,
        )
        self.heartbeat()

    def task_finished(self, task: SweepTask, status: str,
                      seconds: Optional[float] = None,
                      error: Optional[str] = None) -> None:
        self.running = max(0, self.running - 1)
        self.done += 1
        if status == "failed":
            self.failed += 1
        if seconds is not None:
            self.durations.append(seconds)
        fields: Dict[str, Any] = dict(
            task=task.task_id, key=task.key, status=status,
            done=self.done, total=self.total,
        )
        if seconds is not None:
            fields["seconds"] = round(seconds, 6)
        if error is not None:
            fields["error"] = error
        self.store.append_telemetry_event("sweep_task_finished", **fields)
        self.heartbeat()


def execute_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one task and build its artifact document (worker entry point).

    Takes/returns plain JSON-safe dicts so it crosses process boundaries
    under the spawn start method.  The tracer is forced off for the run:
    per-task trace files are not part of the sweep contract, and a tracer
    inherited by the in-process serial path would otherwise make ``--jobs
    1`` behave differently from workers.

    When ``payload["profile_phases"]`` is set, the task runs under the
    phase timers and the artifact additionally carries the worker's
    mergeable accumulator state under ``"phases"`` — wallclock data, so
    the flag defaults to off to keep artifacts byte-identical across
    ``--jobs`` settings and hosts.
    """
    from repro.obs.profiling import PROFILER
    from repro.sim.engine import run_task  # deferred: keep spawn imports lean

    config = build_config(payload["overrides"])
    previous_tracer = set_tracer(None)
    phase_state: Optional[Dict[str, Any]] = None
    try:
        if payload.get("profile_phases"):
            from repro.obs.perf import capture_phases

            with capture_phases() as report:
                with PROFILER.span("runtime.task"):
                    result, metrics_state = run_task(config)
            phase_state = report.state
        else:
            with PROFILER.span("runtime.task"):
                result, metrics_state = run_task(config)
    finally:
        set_tracer(previous_tracer)
    artifact = {
        "schema": ARTIFACT_SCHEMA,
        "task": {
            "id": payload["id"],
            "key": payload["key"],
            "overrides": payload["overrides"],
        },
        "summary": result.summary(),
        "result": result.to_json_dict(),
        "metrics_state": metrics_state,
    }
    if phase_state is not None:
        artifact["phases"] = phase_state
    return artifact


def _task_payload(task: SweepTask, profile_phases: bool = False) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "id": task.task_id, "key": task.key, "overrides": task.overrides,
    }
    if profile_phases:
        payload["profile_phases"] = True
    return payload


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` invocation did."""

    run_dir: Path
    tasks: List[SweepTask]
    executed: List[str] = field(default_factory=list)  # task keys run now
    skipped: List[str] = field(default_factory=list)  # already checkpointed
    failed: Dict[str, str] = field(default_factory=dict)  # key -> error
    #: Merged engine metrics across every task executed in this invocation.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Merged per-phase timing accumulators across workers (populated only
    #: when ``run_sweep(..., profile_phases=True)``; merge order cannot
    #: matter — the accumulators are a commutative monoid like the metrics
    #: registry, property-tested in tests/obs/test_perf.py).
    phases: Profiler = field(default_factory=Profiler)
    #: True when SIGTERM/KeyboardInterrupt stopped the sweep early; the
    #: run directory is still a valid resume checkpoint.
    interrupted: bool = False

    @property
    def complete(self) -> bool:
        return not self.failed and (
            len(self.executed) + len(self.skipped) == len(self.tasks)
        )


def run_sweep(
    spec: SweepSpec,
    run_dir: "str | Path",
    jobs: Optional[int] = None,
    limit: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    telemetry: bool = True,
    profile_phases: bool = False,
) -> SweepOutcome:
    """Execute (or resume) a sweep into ``run_dir``.

    ``jobs=1`` runs tasks serially in-process; ``jobs=N`` fans out over a
    spawned process pool; ``jobs=None`` uses ``os.cpu_count()``.  ``limit``
    caps how many pending tasks this invocation executes — the remainder
    stays pending for a later resume (and doubles as a deterministic
    stand-in for a killed sweep in tests/CI).

    ``telemetry=True`` (the default) streams live progress into
    ``<run_dir>/telemetry/``: ``sweep_task_started``/``sweep_task_finished``
    trace events and an atomically-refreshed ``heartbeat.json`` with an
    ETA — what ``soup sweep --status --watch`` renders.  Telemetry is
    wallclock-stamped observability output only; it never feeds resume
    and is excluded from the artifact determinism contract.

    ``profile_phases=True`` runs every task under the phase timers: each
    worker captures its own accumulators, and the outcome folds them into
    ``SweepOutcome.phases`` in completion order (the merge is
    order-independent, so ``--jobs N`` scheduling cannot change the
    aggregate).  Opt-in because the per-task artifacts then carry
    wallclock phase data and are no longer byte-identical across hosts.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")

    tasks = spec.expand()
    store = RunStore(run_dir)
    store.initialize(spec, tasks)
    completed = store.completed_keys()

    outcome = SweepOutcome(run_dir=Path(run_dir), tasks=tasks)
    statuses: Dict[str, Dict[str, Any]] = {}
    pending: List[SweepTask] = []
    for task in tasks:
        if task.key in completed:
            outcome.skipped.append(task.key)
            statuses[task.key] = {"status": "cached"}
            if progress is not None:
                progress("skip", task, None)
        else:
            pending.append(task)
    if limit is not None:
        for task in pending[limit:]:
            statuses[task.key] = {"status": "pending"}
        pending = pending[:limit]

    logger.info(
        "sweep %s: %d tasks (%d cached, %d to run), jobs=%d",
        spec.name, len(tasks), len(outcome.skipped), len(pending), jobs,
    )

    workers = min(jobs, max(1, len(pending)))
    live: Optional[SweepTelemetry] = None
    if telemetry:
        live = SweepTelemetry(
            store, spec.name, total=len(tasks),
            cached=len(outcome.skipped), workers=workers,
        )
        live.heartbeat()

    def record_success(task: SweepTask, artifact: Dict[str, Any], seconds: float) -> None:
        store.write_artifact(task, artifact)
        outcome.executed.append(task.key)
        statuses[task.key] = {"status": "ok"}
        outcome.metrics.merge_state(artifact.get("metrics_state", {}))
        outcome.phases.merge_state(artifact.get("phases", {}))
        if live is not None:
            live.task_finished(task, "ok", seconds=seconds)
        if progress is not None:
            progress("ok", task, seconds)

    def record_failure(task: SweepTask, error: BaseException, seconds: float) -> None:
        message = f"{type(error).__name__}: {error}"
        outcome.failed[task.key] = message
        statuses[task.key] = {"status": "failed", "error": message}
        logger.error("task %s failed: %s", task.task_id, message)
        if live is not None:
            live.task_finished(task, "failed", seconds=seconds, error=message)
        if progress is not None:
            progress("fail", task, message)

    # SIGTERM → KeyboardInterrupt, so one code path handles Ctrl-C and a
    # polite kill (what CI runners and process supervisors send) the same
    # way: stop cleanly, flush telemetry, leave a resumable checkpoint.
    previous_sigterm = None
    if threading.current_thread() is threading.main_thread():
        def _on_sigterm(signum, frame):  # noqa: ARG001
            raise KeyboardInterrupt("SIGTERM")

        previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)

    def mark_interrupted(reason: str) -> None:
        outcome.interrupted = True
        logger.warning("sweep %s interrupted (%s); checkpoint is resumable",
                       spec.name, reason)
        if live is not None:
            live.sweep_interrupted(reason)

    try:
        if jobs == 1 or len(pending) <= 1:
            for task in pending:
                if live is not None:
                    live.task_started(task)
                start = time.perf_counter()
                try:
                    artifact = execute_task(_task_payload(task, profile_phases))
                except KeyboardInterrupt:
                    statuses[task.key] = {"status": "interrupted"}
                    mark_interrupted("signal")
                    break
                except Exception as exc:  # noqa: BLE001 - record, keep sweeping
                    record_failure(task, exc, time.perf_counter() - start)
                    continue
                record_success(task, artifact, time.perf_counter() - start)
        else:
            # Spawn (not fork): workers must not inherit tracers, registries,
            # or any other interpreter state that could diverge from --jobs 1.
            context = multiprocessing.get_context("spawn")
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            # Lazy submission: keep exactly ``workers`` futures in flight so
            # a sweep_task_started event means the task really has a worker
            # slot, not just a queue position.
            queue = list(pending)
            in_flight: Dict[Any, "tuple[SweepTask, float]"] = {}

            def submit_next() -> None:
                task = queue.pop(0)
                if live is not None:
                    live.task_started(task)
                future = pool.submit(
                    execute_task, _task_payload(task, profile_phases)
                )
                in_flight[future] = (task, time.perf_counter())

            try:
                while queue and len(in_flight) < workers:
                    submit_next()
                while in_flight:
                    done, _ = wait(
                        set(in_flight),
                        timeout=HEARTBEAT_INTERVAL_S,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # Long tasks: keep the heartbeat fresh so --watch can
                        # tell "still running" from "died".
                        if live is not None:
                            live.heartbeat()
                        continue
                    for future in done:
                        task, start = in_flight.pop(future)
                        elapsed = time.perf_counter() - start
                        try:
                            artifact = future.result()
                        except Exception as exc:  # noqa: BLE001
                            record_failure(task, exc, elapsed)
                        else:
                            record_success(task, artifact, elapsed)
                        if queue:
                            submit_next()
            except KeyboardInterrupt:
                for task, _ in in_flight.values():
                    statuses[task.key] = {"status": "interrupted"}
                mark_interrupted("signal")
                # Drop queued work and stop the workers without blocking on
                # them; a spawn worker mid-task is killed, its artifact is
                # simply absent and --resume re-runs it.
                pool.shutdown(wait=False, cancel_futures=True)
                for process in (getattr(pool, "_processes", None) or {}).values():
                    process.terminate()
            else:
                pool.shutdown(wait=True)
    except KeyboardInterrupt:
        # Interrupt landed outside the task loops (e.g. during telemetry):
        # still leave a coherent checkpoint behind.
        mark_interrupted("signal")
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    store.finalize(statuses)
    return outcome
