"""The sweep executor: fan tasks out over processes, checkpoint each one.

``run_sweep`` expands a :class:`~repro.runtime.spec.SweepSpec`, skips every
task whose artifact already exists in the run directory (checkpoint/resume
by content-hashed task key), and executes the rest — either in-process
(``jobs=1``, the byte-identical serial reference path) or on a spawned
``ProcessPoolExecutor``.

Determinism contract: a task's artifact depends only on its resolved
config.  Workers run nothing but :func:`repro.sim.engine.run_task` under a
disabled tracer and a fresh metrics registry, the spawn start method keeps
them free of inherited interpreter state, and artifacts are serialized with
sorted keys — so ``--jobs 1`` and ``--jobs N`` produce byte-identical
artifacts, and re-running a finished sweep re-runs nothing.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.obs import MetricsRegistry, set_tracer
from repro.runtime.spec import SweepSpec, SweepTask, build_config
from repro.runtime.store import ARTIFACT_SCHEMA, RunStore

logger = logging.getLogger("repro.runtime.executor")

#: ``progress(event, task, detail)`` callback; events are "skip", "ok",
#: "fail" with detail = seconds (ok), error string (fail), or None.
ProgressFn = Callable[[str, SweepTask, Any], None]


def execute_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one task and build its artifact document (worker entry point).

    Takes/returns plain JSON-safe dicts so it crosses process boundaries
    under the spawn start method.  The tracer is forced off for the run:
    per-task trace files are not part of the sweep contract, and a tracer
    inherited by the in-process serial path would otherwise make ``--jobs
    1`` behave differently from workers.
    """
    from repro.sim.engine import run_task  # deferred: keep spawn imports lean

    config = build_config(payload["overrides"])
    previous_tracer = set_tracer(None)
    try:
        result, metrics_state = run_task(config)
    finally:
        set_tracer(previous_tracer)
    return {
        "schema": ARTIFACT_SCHEMA,
        "task": {
            "id": payload["id"],
            "key": payload["key"],
            "overrides": payload["overrides"],
        },
        "summary": result.summary(),
        "result": result.to_json_dict(),
        "metrics_state": metrics_state,
    }


def _task_payload(task: SweepTask) -> Dict[str, Any]:
    return {"id": task.task_id, "key": task.key, "overrides": task.overrides}


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` invocation did."""

    run_dir: Path
    tasks: List[SweepTask]
    executed: List[str] = field(default_factory=list)  # task keys run now
    skipped: List[str] = field(default_factory=list)  # already checkpointed
    failed: Dict[str, str] = field(default_factory=dict)  # key -> error
    #: Merged engine metrics across every task executed in this invocation.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def complete(self) -> bool:
        return not self.failed and (
            len(self.executed) + len(self.skipped) == len(self.tasks)
        )


def run_sweep(
    spec: SweepSpec,
    run_dir: "str | Path",
    jobs: Optional[int] = None,
    limit: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepOutcome:
    """Execute (or resume) a sweep into ``run_dir``.

    ``jobs=1`` runs tasks serially in-process; ``jobs=N`` fans out over a
    spawned process pool; ``jobs=None`` uses ``os.cpu_count()``.  ``limit``
    caps how many pending tasks this invocation executes — the remainder
    stays pending for a later resume (and doubles as a deterministic
    stand-in for a killed sweep in tests/CI).
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")

    tasks = spec.expand()
    store = RunStore(run_dir)
    store.initialize(spec, tasks)
    completed = store.completed_keys()

    outcome = SweepOutcome(run_dir=Path(run_dir), tasks=tasks)
    statuses: Dict[str, Dict[str, Any]] = {}
    pending: List[SweepTask] = []
    for task in tasks:
        if task.key in completed:
            outcome.skipped.append(task.key)
            statuses[task.key] = {"status": "cached"}
            if progress is not None:
                progress("skip", task, None)
        else:
            pending.append(task)
    if limit is not None:
        for task in pending[limit:]:
            statuses[task.key] = {"status": "pending"}
        pending = pending[:limit]

    logger.info(
        "sweep %s: %d tasks (%d cached, %d to run), jobs=%d",
        spec.name, len(tasks), len(outcome.skipped), len(pending), jobs,
    )

    def record_success(task: SweepTask, artifact: Dict[str, Any], seconds: float) -> None:
        store.write_artifact(task, artifact)
        outcome.executed.append(task.key)
        statuses[task.key] = {"status": "ok"}
        outcome.metrics.merge_state(artifact.get("metrics_state", {}))
        if progress is not None:
            progress("ok", task, seconds)

    def record_failure(task: SweepTask, error: BaseException) -> None:
        message = f"{type(error).__name__}: {error}"
        outcome.failed[task.key] = message
        statuses[task.key] = {"status": "failed", "error": message}
        logger.error("task %s failed: %s", task.task_id, message)
        if progress is not None:
            progress("fail", task, message)

    if jobs == 1 or len(pending) <= 1:
        for task in pending:
            start = time.perf_counter()
            try:
                artifact = execute_task(_task_payload(task))
            except Exception as exc:  # noqa: BLE001 - record, keep sweeping
                record_failure(task, exc)
                continue
            record_success(task, artifact, time.perf_counter() - start)
    else:
        # Spawn (not fork): workers must not inherit tracers, registries,
        # or any other interpreter state that could diverge from --jobs 1.
        context = multiprocessing.get_context("spawn")
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            started = {
                pool.submit(execute_task, _task_payload(task)): (
                    task, time.perf_counter(),
                )
                for task in pending
            }
            remaining = set(started)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    task, start = started[future]
                    try:
                        artifact = future.result()
                    except Exception as exc:  # noqa: BLE001
                        record_failure(task, exc)
                        continue
                    record_success(task, artifact, time.perf_counter() - start)

    store.finalize(statuses)
    return outcome
