"""Declarative sweep specifications.

A :class:`SweepSpec` describes a whole grid of simulator runs — the shape
every figure of the paper's evaluation has (datasets × scales × seeds ×
attack/altruism/departure fractions).  It expands deterministically into a
list of :class:`SweepTask`, each fully described by a flat ``overrides``
mapping applied on top of :class:`repro.sim.scenario.ScenarioConfig`
defaults, plus a content-hashed **task key** derived from the fully
resolved config.  The key is what the checkpoint/resume layer
(:mod:`repro.runtime.store`) uses to decide whether a task's artifact
already exists, so renaming a run directory or reordering the grid never
re-runs finished work — and changing any config field (or the key schema
version) always does.

Specs load from TOML or JSON files or build up from ``--set key=v1,v2``
CLI flags; see ``docs/SWEEPS.md`` for the format.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.scenario import OnlineDistribution, ScenarioConfig

#: Bumped whenever task execution semantics change in a way that makes old
#: artifacts incomparable (a "code-relevant knob" of the task key).
TASK_KEY_VERSION = 1

#: ScenarioConfig fields that accept sequences (TOML/JSON lists arrive as
#: lists; the dataclass wants tuples).
_TUPLE_FIELDS = {"cdf_snapshot_days", "invariant_names"}

_SPEC_KEYS = {"name", "base", "grid", "configs", "seeds"}


def coerce_value(text: str) -> Any:
    """Parse one ``--set``/``--base`` value: int, float, bool, or string."""
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text.strip()


def parse_set_flag(flag: str) -> Tuple[str, List[Any]]:
    """Parse one ``--set key=v1,v2,...`` grid axis."""
    key, sep, raw = flag.partition("=")
    if not sep or not key.strip() or not raw.strip():
        raise ValueError(
            f"malformed --set flag {flag!r}; expected key=value[,value...]"
        )
    return key.strip(), [coerce_value(part) for part in raw.split(",")]


def parse_base_flag(flag: str) -> Tuple[str, Any]:
    """Parse one ``--base key=value`` override applied to every task."""
    key, sep, raw = flag.partition("=")
    if not sep or not key.strip():
        raise ValueError(f"malformed --base flag {flag!r}; expected key=value")
    return key.strip(), coerce_value(raw)


def parse_seeds(text: str) -> List[int]:
    """Parse a seeds flag: ``0,1,5`` or a half-open range ``0:4``."""
    text = text.strip()
    if ":" in text:
        start_text, _, stop_text = text.partition(":")
        start, stop = int(start_text), int(stop_text)
        if stop <= start:
            raise ValueError(f"empty seed range {text!r}")
        return list(range(start, stop))
    seeds = [int(part) for part in text.split(",") if part.strip()]
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def _scenario_field_names() -> Dict[str, dataclasses.Field]:
    return {f.name: f for f in dataclasses.fields(ScenarioConfig)}


def build_config(overrides: Mapping[str, Any]) -> ScenarioConfig:
    """Build a validated :class:`ScenarioConfig` from a flat override map.

    Dotted keys reach into the nested model dataclasses: ``soup.epsilon``
    or ``activity.peak_per_day``.  Enum-valued fields accept their string
    value (``online_distribution = "peerson"``).  Unknown field names fail
    with the list of valid ones, so a typo in a sweep spec dies at
    expansion time.
    """
    fields = _scenario_field_names()
    direct: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    for key, value in overrides.items():
        if "." in key:
            head, _, rest = key.partition(".")
            nested.setdefault(head, {})[rest] = value
            continue
        if key not in fields:
            raise ValueError(
                f"unknown ScenarioConfig field {key!r}; "
                f"valid fields: {', '.join(sorted(fields))}"
            )
        if key == "online_distribution" and isinstance(value, str):
            value = OnlineDistribution(value)
        if key in _TUPLE_FIELDS and isinstance(value, list):
            value = tuple(value)
        direct[key] = value

    for head, sub in nested.items():
        if head not in ("soup", "activity"):
            raise ValueError(
                f"unknown nested override {head!r} (supported: soup.*, activity.*)"
            )
        if head in direct:
            raise ValueError(f"cannot mix {head!r} and {head}.* overrides")
        base = type(getattr(ScenarioConfig(), head))()
        valid = {f.name for f in dataclasses.fields(base)}
        unknown = sorted(set(sub) - valid)
        if unknown:
            raise ValueError(
                f"unknown {head}.* field(s) {unknown}; valid: {sorted(valid)}"
            )
        direct[head] = dataclasses.replace(base, **sub)

    return ScenarioConfig(**direct)


def _jsonable(value: Any) -> Any:
    """Reduce config values to canonical JSON-safe primitives for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def config_fingerprint(config: ScenarioConfig) -> Dict[str, Any]:
    """The canonical document the task key hashes: the fully resolved
    config plus the code-relevant key version."""
    return {"task_key_version": TASK_KEY_VERSION, "config": _jsonable(config)}


def task_key(config: ScenarioConfig) -> str:
    doc = json.dumps(config_fingerprint(config), sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SweepTask:
    """One fully resolved unit of work in a sweep."""

    index: int
    overrides: Dict[str, Any]
    key: str

    @property
    def task_id(self) -> str:
        return f"t{self.index:04d}"

    @property
    def seed(self) -> int:
        return int(self.overrides.get("seed", 0))

    def build_config(self) -> ScenarioConfig:
        return build_config(self.overrides)

    def label(self) -> str:
        """Human-readable ``k=v`` summary of the task's overrides."""
        return " ".join(
            f"{key}={value}" for key, value in sorted(self.overrides.items())
        )


@dataclass
class SweepSpec:
    """A declarative grid of scenario runs.

    * ``base`` — overrides applied to every task.
    * ``grid`` — field name → list of values; the cartesian product over
      all axes (in insertion order) forms the cells.
    * ``configs`` — explicit override mappings, an alternative (or
      addition) to the grid: each entry is crossed with the grid and seeds.
    * ``seeds`` — every cell runs once per seed (innermost axis).
    """

    name: str = "sweep"
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    configs: List[Dict[str, Any]] = field(default_factory=list)
    seeds: List[int] = field(default_factory=lambda: [0])

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "SweepSpec":
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown sweep spec key(s) {unknown}; valid: {sorted(_SPEC_KEYS)}"
            )
        grid = {key: list(values) for key, values in data.get("grid", {}).items()}
        for key, values in grid.items():
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")
        seeds = [int(seed) for seed in data.get("seeds", [0])]
        if not seeds:
            raise ValueError("seeds must not be empty")
        return cls(
            name=str(data.get("name", "sweep")),
            base=dict(data.get("base", {})),
            grid=grid,
            configs=[dict(entry) for entry in data.get("configs", [])],
            seeds=seeds,
        )

    @classmethod
    def from_file(cls, path: "str | Path") -> "SweepSpec":
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11
                raise ValueError(
                    f"cannot load TOML spec {path}: tomllib unavailable on this "
                    "Python; use a JSON spec instead"
                ) from None
            data = tomllib.loads(text)
        else:
            data = json.loads(text)
        spec = cls.from_mapping(data)
        if spec.name == "sweep":
            spec.name = path.stem
        return spec

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": dict(self.base),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "configs": [dict(entry) for entry in self.configs],
            "seeds": list(self.seeds),
        }

    def spec_hash(self) -> str:
        doc = json.dumps(_jsonable(self.to_mapping()), sort_keys=True)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def expand(self) -> List[SweepTask]:
        """The deterministic task list: configs × grid (insertion order of
        axes) × seeds, each validated by building its ScenarioConfig."""
        rows: Sequence[Mapping[str, Any]] = self.configs or [{}]
        axes = list(self.grid.items())
        combos = list(
            itertools.product(*(values for _, values in axes))
        ) if axes else [()]

        tasks: List[SweepTask] = []
        seen: Dict[str, SweepTask] = {}
        for row in rows:
            for combo in combos:
                cell = {**self.base, **row}
                cell.update(
                    {key: value for (key, _), value in zip(axes, combo)}
                )
                for seed in self.seeds:
                    overrides = {**cell, "seed": int(seed)}
                    config = build_config(overrides)  # fail fast on bad grids
                    key = task_key(config)
                    if key in seen:
                        raise ValueError(
                            f"duplicate task in sweep: {overrides!r} collides "
                            f"with {seen[key].overrides!r}"
                        )
                    task = SweepTask(
                        index=len(tasks), overrides=overrides, key=key
                    )
                    seen[key] = task
                    tasks.append(task)
        if not tasks:
            raise ValueError("sweep spec expands to zero tasks")
        return tasks
