"""Test-facing surface of the runtime correctness harness.

Everything the simulator checks at runtime (:mod:`repro.sim.invariants`,
:mod:`repro.sim.faults`) is re-exported here so tests — and the pytest
plugin in :mod:`repro.testing.plugin` — drive the *same* machinery:

* :func:`assert_overlay_invariants` / :func:`assert_mirror_manager_invariants`
  — structural checks for DHT overlays and protocol nodes.
* :func:`run_checked` — run a scenario with invariant checking forced on.
* :func:`expect_violation` — run a scenario that *must* violate an
  invariant; returns the :class:`InvariantViolation` and asserts the
  one-line repro string replays it.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.faults import FaultInjector, FaultSpec
from repro.sim.invariants import (
    ENGINE_INVARIANTS,
    InvariantChecker,
    InvariantViolation,
    Violation,
    check_mirror_manager,
    check_overlay,
    format_repro,
    mirror_manager_violations,
    overlay_violations,
    parse_repro,
    run_repro,
)

__all__ = [
    "ENGINE_INVARIANTS",
    "FaultInjector",
    "FaultSpec",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "assert_mirror_manager_invariants",
    "assert_overlay_invariants",
    "check_mirror_manager",
    "check_overlay",
    "expect_violation",
    "format_repro",
    "mirror_manager_violations",
    "overlay_violations",
    "parse_repro",
    "run_checked",
    "run_repro",
]


def assert_overlay_invariants(overlay, epoch: int = -1) -> None:
    """Assert a :class:`PastryOverlay` satisfies every structural invariant."""
    check_overlay(overlay, epoch=epoch)


def assert_mirror_manager_invariants(manager, epoch: int = -1) -> None:
    """Assert a :class:`MirrorManager`'s local state is consistent."""
    check_mirror_manager(manager, epoch=epoch)


def run_checked(config):
    """Run a scenario with invariant checking enabled regardless of config."""
    from dataclasses import replace

    from repro.sim.engine import run_scenario

    return run_scenario(replace(config, check_invariants=True))


def expect_violation(config, invariant: Optional[str] = None) -> InvariantViolation:
    """Run a (typically fault-injected) scenario that must trip the checker.

    Asserts the violation's repro line replays to the same invariant and
    epoch, then returns it for further inspection.
    """
    from dataclasses import replace

    from repro.sim.engine import run_scenario

    try:
        run_scenario(replace(config, check_invariants=True))
    except InvariantViolation as violation:
        if invariant is not None and violation.invariant != invariant:
            raise AssertionError(
                f"expected a {invariant!r} violation, got {violation.invariant!r}"
            )
        replayed = run_repro(violation.repro)
        if replayed is None:
            raise AssertionError(
                f"repro line did not reproduce the violation: {violation.repro}"
            )
        if (replayed.invariant, replayed.epoch) != (
            violation.invariant,
            violation.epoch,
        ):
            raise AssertionError(
                "repro line reproduced a different violation: "
                f"{replayed.invariant}@{replayed.epoch} vs "
                f"{violation.invariant}@{violation.epoch}"
            )
        return violation
    raise AssertionError("scenario completed without the expected InvariantViolation")
