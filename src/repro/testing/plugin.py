"""Pytest plugin exposing the runtime correctness harness to the suite.

Loaded via ``pytest_plugins = ["repro.testing.plugin"]`` in
``tests/conftest.py``.  It contributes:

* ``pytest --check-invariants`` — forces *every* :class:`SoupSimulation`
  built during the test session to run with the per-epoch invariant
  checker on, exactly like passing ``--check-invariants`` to the CLI.
  Any simulation any test runs then fails loudly (with a one-line repro
  string) the moment protocol state goes inconsistent.
* ``checked_overlay`` fixture — a :class:`PastryOverlay` factory whose
  overlays are verified against the structural DHT invariants at test
  teardown, so a test cannot leave a silently corrupted ring behind.
* ``invariant_checker`` fixture — a fresh :class:`InvariantChecker` over
  all engine invariants.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    group = parser.getgroup("soup")
    group.addoption(
        "--check-invariants",
        action="store_true",
        default=False,
        help=(
            "run every SoupSimulation in the session with per-epoch runtime "
            "invariant checking enabled (repro.sim.invariants)"
        ),
    )


def pytest_configure(config) -> None:
    if config.getoption("--check-invariants"):
        from repro.sim import invariants

        invariants.FORCE_CHECKS = True


def pytest_unconfigure(config) -> None:
    from repro.sim import invariants

    invariants.FORCE_CHECKS = False


@pytest.fixture
def invariant_checker():
    """A fresh checker over every engine invariant."""
    from repro.sim.invariants import InvariantChecker

    return InvariantChecker()


@pytest.fixture
def checked_overlay():
    """Factory for PastryOverlays that are invariant-checked at teardown."""
    from repro.dht.pastry import PastryOverlay
    from repro.sim.invariants import check_overlay

    overlays = []

    def build(**kwargs) -> PastryOverlay:
        overlay = PastryOverlay(**kwargs)
        overlays.append(overlay)
        return overlay

    yield build

    for overlay in overlays:
        if len(overlay):
            check_overlay(overlay)
