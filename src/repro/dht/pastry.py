"""The Pastry-style overlay: join, prefix routing, leave, entry shifting.

This is the reproduction's stand-in for FreePastry.  The overlay is
simulated in-process: every node holds real Pastry routing state
(:mod:`repro.dht.node_state`) and messages are routed hop by hop through
that state, so hop counts, join costs and entry-shifting traffic are all
faithful to the protocol even though no sockets are involved.

Key responsibility follows Pastry: the live node numerically closest to a
key stores the entries published under it.  Joins and leaves shift entries
between nodes, which is exactly the churn cost the paper measures at its
bootstrap node (Fig. 14a) and the reason SOUP keeps mobile nodes off the
DHT (Sec. 3.3).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.obs import get_registry, get_tracer
from repro.obs.profiling import PROFILER

from repro.dht.node_state import (
    ID_DIGITS,
    LeafSet,
    RoutingTable,
    ring_distance,
    shared_prefix_length,
)
from repro.dht.storage import DirectoryEntry

logger = logging.getLogger("repro.dht.pastry")

#: Hop-count histogram buckets (Pastry routes are O(log n) short).
_HOP_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0)


class DhtError(Exception):
    """Raised on operations against unknown or offline nodes."""


@dataclass
class RouteResult:
    """Outcome of routing a key through the overlay."""

    responsible: int
    path: List[int]
    #: False when the operation could not reach a live responsible node
    #: (publish against an unreachable home, lookup with all alternates
    #: down) — the caller should back off and retry later.
    delivered: bool = True

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


@dataclass
class _OverlayNode:
    """A DHT member's full state."""

    node_id: int
    routing_table: RoutingTable
    leaf_set: LeafSet
    entries: Dict[int, DirectoryEntry] = field(default_factory=dict)


@dataclass
class TransferRecord:
    """One entry movement caused by churn, for traffic accounting."""

    from_node: int
    to_node: int
    key: int
    size_bytes: int


class PastryOverlay:
    """An in-process Pastry ring with directory-entry storage."""

    def __init__(self, leaf_half_size: int = 8, max_route_hops: int = 64) -> None:
        self._nodes: Dict[int, _OverlayNode] = {}
        self._leaf_half_size = leaf_half_size
        self._max_route_hops = max_route_hops
        #: Log of entry movements; deployment emulation drains this to
        #: charge bandwidth to the nodes involved.
        self.transfer_log: List[TransferRecord] = []
        #: Optional liveness oracle (node_id -> currently reachable).  Left
        #: unset, every overlay member counts as live — the historical
        #: behaviour, kept because several scenarios park nodes offline
        #: while leaving them in the ring.  The deployment emulation wires
        #: this to the simulated network's online state, making publish
        #: and lookup honest about unreachable homes.
        self._liveness: Optional[Callable[[int], bool]] = None
        #: How many alternate next-closest nodes a lookup probes when the
        #: responsible node is unreachable.
        self.lookup_max_alternates = 3
        self.lookup_retries = 0
        self.lookup_alternate_hits = 0
        self.publishes_unreachable = 0
        #: Cached metrics handles, rebound when the current registry
        #: changes (routing is hot; a name lookup per hop would show up).
        self._metrics_registry = None
        self._hops_histogram = None
        #: Architecture seams (repro.arch): an optional placement strategy
        #: remapping directory keys, and an optional routing policy
        #: offering extra next-hop candidates.  Both default to None — the
        #: plain-Pastry behaviour — and candidates from the policy pass
        #: through the same monotone progress rule as structural hops.
        self._placement = None
        self._routing_policy = None

    # --- membership -------------------------------------------------------
    def set_liveness(self, liveness: Optional[Callable[[int], bool]]) -> None:
        """Install (or clear) the liveness oracle used by publish/lookup."""
        self._liveness = liveness

    def set_placement(self, placement) -> None:
        """Install (or clear) a placement strategy (repro.arch).

        ``placement.map_key(key)`` remaps every directory key at the
        publish/lookup boundary; entries are stored and re-homed under
        the mapped key, so both sides agree without coordination.
        """
        self._placement = placement

    def set_routing_policy(self, policy) -> None:
        """Install (or clear) a routing policy offering shortcut hops."""
        self._routing_policy = policy

    def _map_key(self, key: int) -> int:
        if self._placement is None:
            return key
        return self._placement.map_key(key)

    def _is_live(self, node_id: int) -> bool:
        return self._liveness is None or self._liveness(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def _require(self, node_id: int) -> _OverlayNode:
        node = self._nodes.get(node_id)
        if node is None:
            raise DhtError(f"node {node_id:#x} is not in the overlay")
        return node

    def join(self, node_id: int, bootstrap_id: Optional[int] = None) -> RouteResult:
        """Add a node, building its state from the join route.

        Pastry join: route a join message from the bootstrap node toward the
        joiner's own ID; every node on the path contributes routing rows,
        and the final (numerically closest) node donates its leaf set.
        Entries the new node is now responsible for are shifted to it.
        """
        if node_id in self._nodes:
            raise DhtError(f"node {node_id:#x} already joined")
        new_node = _OverlayNode(
            node_id=node_id,
            routing_table=RoutingTable(node_id),
            leaf_set=LeafSet(node_id, self._leaf_half_size),
        )
        if not self._nodes:
            self._nodes[node_id] = new_node
            return RouteResult(responsible=node_id, path=[node_id])

        if bootstrap_id is None:
            bootstrap_id = next(iter(self._nodes))
        route = self.route(bootstrap_id, node_id)

        # Harvest state from the join path.
        for hop_id in route.path:
            hop = self._nodes[hop_id]
            new_node.routing_table.consider(hop_id)
            new_node.leaf_set.consider(hop_id)
            for known in hop.routing_table.known_nodes():
                new_node.routing_table.consider(known)
        closest = self._nodes[route.responsible]
        new_node.leaf_set.consider_all(closest.leaf_set.members())
        new_node.leaf_set.consider(closest.node_id)

        self._nodes[node_id] = new_node
        # Announce the joiner to its new neighbourhood.
        for member_id in list(new_node.leaf_set.members()) + list(
            new_node.routing_table.known_nodes()
        ):
            member = self._nodes.get(member_id)
            if member is not None:
                member.leaf_set.consider(node_id)
                member.routing_table.consider(node_id)

        # Periodic leaf-set maintenance, run eagerly at churn events: nodes
        # the join announcement did not reach would otherwise keep routing
        # around the joiner, delivering keys it is now responsible for to
        # the old owner.
        self._repair_leaf_sets()
        self._shift_entries_to_new_node(new_node)
        return route

    def leave(self, node_id: int) -> List[TransferRecord]:
        """Remove a node; its entries shift to the next-closest live nodes.

        Returns the transfers performed (a departing node hands its entries
        over, which is the churn cost Sec. 3.2 calls out).
        """
        departing = self._require(node_id)
        del self._nodes[node_id]
        for other in self._nodes.values():
            other.leaf_set.remove(node_id)
            other.routing_table.remove(node_id)
        # Repair leaf sets *before* re-homing so the surviving ring agrees
        # on responsibility while entries move.
        self._repair_leaf_sets()

        transfers: List[TransferRecord] = []
        for key, entry in departing.entries.items():
            if not self._nodes:
                break
            new_home = self._responsible_node(key)
            self._nodes[new_home].entries[key] = entry
            record = TransferRecord(
                from_node=node_id,
                to_node=new_home,
                key=key,
                size_bytes=entry.size_bytes(),
            )
            transfers.append(record)
            self.transfer_log.append(record)
        # Responsibility can also shift for entries on *surviving* nodes
        # (e.g. an entry the departed node had delivered to a neighbour
        # while leaf sets were still converging).  Sweep and re-home them
        # as part of the same repair round.
        transfers.extend(self._rehome_misplaced_entries())
        return transfers

    def fail(self, node_id: int) -> None:
        """Abrupt failure: the node vanishes *with* its entries (no handover).

        Entries it held are lost until owners republish — the adverse
        scenario behind Fig. 9's availability dip.
        """
        self._require(node_id)
        del self._nodes[node_id]
        for other in self._nodes.values():
            other.leaf_set.remove(node_id)
            other.routing_table.remove(node_id)
        self._repair_leaf_sets()

    def _repair_leaf_sets(self) -> None:
        """Offer every node its true ring neighbours (periodic repair).

        Real Pastry nodes periodically exchange leaf sets with their
        neighbours, which converges each set to the actual ``l/2`` nearest
        nodes per side.  The simulation runs that maintenance eagerly at
        every churn event: a leaf set can be *full* yet stale (holding
        one-sided or distant members harvested from an old join path), and
        such sets silently misroute keys near ring boundaries — so repair
        must not be limited to sets that have thinned below capacity.
        """
        if len(self._nodes) <= 1:
            return
        ordered = sorted(self._nodes)
        n = len(ordered)
        for index, node_id in enumerate(ordered):
            node = self._nodes[node_id]
            for offset in range(1, self._leaf_half_size + 1):
                node.leaf_set.consider(ordered[(index + offset) % n])
                node.leaf_set.consider(ordered[(index - offset) % n])

    def _rehome_misplaced_entries(self) -> List[TransferRecord]:
        """Move every entry stored away from its responsible node home."""
        transfers: List[TransferRecord] = []
        for node in list(self._nodes.values()):
            moved = [
                key
                for key in node.entries
                if self._responsible_node(key) != node.node_id
            ]
            for key in moved:
                entry = node.entries.pop(key)
                new_home = self._responsible_node(key)
                self._nodes[new_home].entries[key] = entry
                record = TransferRecord(
                    from_node=node.node_id,
                    to_node=new_home,
                    key=key,
                    size_bytes=entry.size_bytes(),
                )
                transfers.append(record)
                self.transfer_log.append(record)
        return transfers

    # --- routing ------------------------------------------------------------
    def _hop_metric(self):
        """The hop-count histogram in the *current* registry (cached)."""
        registry = get_registry()
        if registry is not self._metrics_registry:
            self._metrics_registry = registry
            self._hops_histogram = registry.histogram(
                "dht.route.hops", buckets=_HOP_BUCKETS
            )
        return self._hops_histogram

    def route(
        self, start_id: int, key: int, avoid: FrozenSet[int] = frozenset()
    ) -> RouteResult:
        """Prefix-route ``key`` from ``start_id``; returns path and owner.

        ``avoid`` excludes nodes from consideration as next hops, so a
        retry can steer around an unreachable responsible node and
        terminate at the next-closest live candidate instead.  Routing
        stays structural otherwise (no per-hop liveness checks) — the
        final node is the closest *non-avoided* overlay member.
        """
        if PROFILER.enabled:
            with PROFILER.span("dht.route"):
                result = self._route(start_id, key, avoid)
        else:
            result = self._route(start_id, key, avoid)
        self._hop_metric().observe(result.hops)
        return result

    def _route(
        self, start_id: int, key: int, avoid: FrozenSet[int] = frozenset()
    ) -> RouteResult:
        current = self._require(start_id)
        path = [current.node_id]
        for _ in range(self._max_route_hops):
            next_id = self._next_hop(current, key, avoid)
            if next_id is None or next_id == current.node_id:
                return RouteResult(responsible=current.node_id, path=path)
            current = self._nodes[next_id]
            path.append(next_id)
        raise DhtError(f"routing loop for key {key:#x} from {start_id:#x}")

    def _next_hop(
        self, node: _OverlayNode, key: int, avoid: FrozenSet[int] = frozenset()
    ) -> Optional[int]:
        """One Pastry routing step from ``node`` toward ``key``.

        Every hop must strictly decrease ``(ring_distance to key, node id)``
        — the same total order :meth:`_responsible_node` minimises.  Pure
        prefix-progress hops that move numerically *away* from the key are
        rejected; mixing them with leaf-set hops is what allowed two nodes
        with different leaf-set views to bounce a message between each
        other forever.  With the monotone rule, routing provably
        terminates, and accurate leaf sets make the final node the
        numerically closest one.
        """
        own_order = (ring_distance(node.node_id, key), node.node_id)

        def improves(candidate: Optional[int]) -> bool:
            return (
                candidate is not None
                and candidate in self._nodes
                and candidate not in avoid
                and (ring_distance(candidate, key), candidate) < own_order
            )

        # Routing-policy shortcuts (repro.arch): the best *improving*
        # candidate the policy offers.  Filtered through the same monotone
        # order as every structural hop, so a policy can only shorten
        # routes — it cannot create loops or change the responsible node.
        policy_hop: Optional[int] = None
        policy_order = own_order
        if self._routing_policy is not None:
            for candidate in self._routing_policy.extra_candidates(
                node.node_id, key
            ):
                if candidate not in self._nodes or candidate in avoid:
                    continue
                order = (ring_distance(candidate, key), candidate)
                if order < policy_order:
                    policy_hop = candidate
                    policy_order = order

        def best_of(structural: Optional[int]) -> Optional[int]:
            if policy_hop is None:
                return structural
            if structural is None:
                return policy_hop
            structural_order = (ring_distance(structural, key), structural)
            return policy_hop if policy_order < structural_order else structural

        # Leaf-set range: deliver to the numerically closest member.
        if node.leaf_set.covers(key) or not node.leaf_set.members():
            closest = node.leaf_set.closest_to(key)
            if improves(closest):
                return best_of(closest)
            if not avoid:
                return best_of(None)
            # The closest member is being avoided: fall through to the
            # general scan so the route can settle on an alternate.
        else:
            # Routing table: match one more prefix digit (if that makes
            # numeric progress too).
            table_hop = node.routing_table.next_hop(key)
            if improves(table_hop):
                return best_of(table_hop)
        # Rare case: any known node strictly closer to the key.
        candidates = node.routing_table.known_nodes() + node.leaf_set.members()
        best = policy_hop
        best_order = policy_order
        for candidate in candidates:
            if candidate not in self._nodes or candidate in avoid:
                continue
            order = (ring_distance(candidate, key), candidate)
            if order < best_order:
                best = candidate
                best_order = order
        return best

    def _responsible_node(self, key: int) -> int:
        """Ground-truth responsibility: numerically closest live node."""
        if not self._nodes:
            raise DhtError("overlay is empty")
        return min(self._nodes, key=lambda nid: (ring_distance(nid, key), nid))

    # --- directory operations -------------------------------------------------
    def publish(self, from_id: int, key: int, entry: DirectoryEntry) -> RouteResult:
        """Publish an entry under ``key``; stale versions never overwrite.

        When a liveness oracle is installed and the responsible node is
        unreachable, the entry is *not* stored anywhere else (that would
        misplace it) — the route comes back ``delivered=False`` and the
        caller backs off and republishes later.
        """
        key = self._map_key(key)
        route = self.route(from_id, key)
        registry = get_registry()
        registry.counter("dht.publishes").inc()
        if not self._is_live(route.responsible):
            self.publishes_unreachable += 1
            registry.counter("dht.publishes.unreachable").inc()
            logger.debug(
                "publish of key %#x from %#x: responsible %#x unreachable",
                key, from_id, route.responsible,
            )
            route.delivered = False
            return route
        home = self._nodes[route.responsible]
        existing = home.entries.get(key)
        if existing is None or entry.version >= existing.version:
            home.entries[key] = entry
        return route

    def lookup(self, from_id: int, key: int) -> Tuple[Optional[DirectoryEntry], RouteResult]:
        """Look up the entry stored under ``key``.

        If the responsible node is unreachable (per the liveness oracle),
        the lookup retries via alternate next-hops — re-routing around
        every home found dead so far — up to ``lookup_max_alternates``
        times.  An alternate may well hold the entry (re-homed during an
        incomplete churn repair); if every candidate is down the result is
        ``(None, route)`` with ``delivered=False``.
        """
        key = self._map_key(key)
        registry = get_registry()
        registry.counter("dht.lookups").inc()
        route = self.route(from_id, key)
        avoid: FrozenSet[int] = frozenset()
        for _ in range(self.lookup_max_alternates):
            if self._is_live(route.responsible):
                entry = self._nodes[route.responsible].entries.get(key)
                if avoid and entry is not None:
                    self.lookup_alternate_hits += 1
                    registry.counter("dht.lookups.alternate_hits").inc()
                self._trace_lookup(key, route, len(avoid), found=entry is not None)
                return entry, route
            self.lookup_retries += 1
            registry.counter("dht.lookups.retries").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    "retry", kind="dht_lookup",
                    dest=route.responsible, attempt=len(avoid) + 1,
                    reason="responsible-unreachable",
                )
            avoid = avoid | {route.responsible}
            if len(avoid) >= len(self._nodes):
                break
            rerouted = self.route(from_id, key, avoid=avoid)
            if rerouted.responsible in avoid:
                break  # no further alternates reachable from here
            route = rerouted
        route.delivered = False
        registry.counter("dht.lookups.failed").inc()
        self._trace_lookup(key, route, len(avoid), found=False)
        return None, route

    def _trace_lookup(
        self, key: int, route: RouteResult, alternates: int, found: bool
    ) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                "dht_lookup",
                key=key,
                responsible=route.responsible,
                hops=list(route.path),
                delivered=route.delivered,
                alternates=alternates,
                found=found,
            )

    def entries_at(self, node_id: int) -> Dict[int, DirectoryEntry]:
        return dict(self._require(node_id).entries)

    def _shift_entries_to_new_node(self, new_node: _OverlayNode) -> None:
        """Move entries the joiner is now responsible for onto it."""
        for other in list(self._nodes.values()):
            if other.node_id == new_node.node_id:
                continue
            moved = [
                key
                for key in other.entries
                if self._responsible_node(key) == new_node.node_id
            ]
            for key in moved:
                entry = other.entries.pop(key)
                new_node.entries[key] = entry
                self.transfer_log.append(
                    TransferRecord(
                        from_node=other.node_id,
                        to_node=new_node.node_id,
                        key=key,
                        size_bytes=entry.size_bytes(),
                    )
                )

    # --- validation helpers (tests) -----------------------------------------
    def misplaced_entries(self) -> List[int]:
        """Keys stored away from their responsible node (should be empty)."""
        wrong = []
        for node in self._nodes.values():
            for key in node.entries:
                if self._responsible_node(key) != node.node_id:
                    wrong.append(key)
        return wrong
