"""Directory entries stored in the DHT.

A SOUP directory entry "typically contains a user's name, her SOUP ID, the
interfaces (i.e., IP addresses) via which she can currently be contacted,
and the SOUP IDs of all the mirrors of her data" (Sec. 3.2).  Crucially the
DHT stores only these *pointers*: the data itself lives on the mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class DirectoryEntry:
    """One user's published directory entry."""

    soup_id: int
    name: str = ""
    interfaces: Tuple[str, ...] = ()
    mirror_ids: Tuple[int, ...] = ()
    #: Monotonic version; republishing bumps it so stale entries lose.
    version: int = 0
    #: RSA signature integer over the entry body (None in plain simulations).
    signature: int = None
    #: The owner's public key.  SOUP IDs are self-certifying (the hash of
    #: the public key), so carrying the key in the entry lets any node
    #: verify both the entry and future objects from the owner.
    public_key: object = None

    def with_mirrors(self, mirror_ids: List[int]) -> "DirectoryEntry":
        """A republished copy announcing a new mirror set."""
        return DirectoryEntry(
            soup_id=self.soup_id,
            name=self.name,
            interfaces=self.interfaces,
            mirror_ids=tuple(mirror_ids),
            version=self.version + 1,
            signature=self.signature,
            public_key=self.public_key,
        )

    def size_bytes(self) -> int:
        """Approximate wire size: ids are 8 bytes, interfaces ~16 each."""
        return (
            8
            + len(self.name.encode("utf-8"))
            + 16 * len(self.interfaces)
            + 8 * len(self.mirror_ids)
            + 8   # version
            + 128  # signature
        )
