"""Structured overlay: a Pastry-style DHT used as SOUP's directory.

The paper builds its globally searchable information directory on FreePastry
(Sec. 3.2/6).  This package is a from-scratch Python Pastry:

* :mod:`repro.dht.node_state` — per-node routing state: the 16-ary prefix
  routing table over 64-bit SOUP IDs and the leaf set.
* :mod:`repro.dht.pastry` — the overlay itself: join via bootstrap nodes,
  prefix routing with hop tracking, leave with state repair, and key
  responsibility (numerically closest node).
* :mod:`repro.dht.storage` — directory entries (name, SOUP ID, interfaces,
  mirror pointers — never the data itself) and the entry shifting that
  churn causes, with byte accounting for the control-overhead experiments.
* :mod:`repro.dht.bootstrap` — the public bootstrap-node registry new nodes
  use as their DHT entry point.
"""

from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.node_state import ID_BITS, ID_DIGITS, LeafSet, RoutingTable, digit_at, shared_prefix_length
from repro.dht.pastry import PastryOverlay, RouteResult
from repro.dht.storage import DirectoryEntry

__all__ = [
    "BootstrapRegistry",
    "ID_BITS",
    "ID_DIGITS",
    "LeafSet",
    "RoutingTable",
    "digit_at",
    "shared_prefix_length",
    "PastryOverlay",
    "RouteResult",
    "DirectoryEntry",
]
