"""Pastry routing state: routing table and leaf set over 64-bit IDs.

IDs are 64-bit integers (the SOUP ID space) interpreted as 16 hexadecimal
digits, Pastry's ``b = 4`` configuration.  The routing table has one row per
digit position and one column per digit value; the leaf set keeps the
``l/2`` numerically closest nodes on each side of the owner (with
wraparound, as the ID space is a ring).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

ID_BITS = 64
ID_DIGITS = 16  # 64 bits / 4 bits per hex digit
_DIGIT_MASK = 0xF
ID_SPACE = 1 << ID_BITS


def digit_at(node_id: int, position: int) -> int:
    """The ``position``-th hex digit of ``node_id`` (0 = most significant)."""
    if not 0 <= position < ID_DIGITS:
        raise ValueError(f"digit position out of range: {position}")
    shift = 4 * (ID_DIGITS - 1 - position)
    return (node_id >> shift) & _DIGIT_MASK


def shared_prefix_length(a: int, b: int) -> int:
    """Number of leading hex digits two IDs share (16 when equal)."""
    for position in range(ID_DIGITS):
        if digit_at(a, position) != digit_at(b, position):
            return position
    return ID_DIGITS


def ring_distance(a: int, b: int) -> int:
    """Shortest distance between two IDs on the 64-bit ring."""
    d = abs(a - b)
    return min(d, ID_SPACE - d)


class RoutingTable:
    """Pastry prefix-routing table for one node."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._rows: List[List[Optional[int]]] = [
            [None] * 16 for _ in range(ID_DIGITS)
        ]

    def entry(self, row: int, column: int) -> Optional[int]:
        return self._rows[row][column]

    def consider(self, node_id: int) -> bool:
        """Offer a node for inclusion; returns True if the table changed.

        The node lands in the row given by its shared prefix length with the
        owner and the column given by its first differing digit.  Existing
        entries are kept (first-come), matching Pastry's locality-agnostic
        simulation behaviour.
        """
        if node_id == self.owner:
            return False
        row = shared_prefix_length(self.owner, node_id)
        if row >= ID_DIGITS:
            return False
        column = digit_at(node_id, row)
        if self._rows[row][column] is None:
            self._rows[row][column] = node_id
            return True
        return False

    def remove(self, node_id: int) -> None:
        row = shared_prefix_length(self.owner, node_id)
        if row < ID_DIGITS:
            column = digit_at(node_id, row)
            if self._rows[row][column] == node_id:
                self._rows[row][column] = None

    def next_hop(self, key: int) -> Optional[int]:
        """The routing-table hop for ``key``: the entry matching one more
        prefix digit than the owner does."""
        row = shared_prefix_length(self.owner, key)
        if row >= ID_DIGITS:
            return None
        return self._rows[row][digit_at(key, row)]

    def known_nodes(self) -> List[int]:
        return [entry for row in self._rows for entry in row if entry is not None]

    def size(self) -> int:
        return len(self.known_nodes())


class LeafSet:
    """The numerically closest neighbours on the ID ring.

    Pastry keeps the ``l/2`` nearest nodes on *each side* of the owner
    (clockwise successors and counter-clockwise predecessors), not the
    ``l`` nearest by absolute ring distance.  The per-side split matters
    for correctness: it guarantees the immediate neighbour in both
    directions stays in the set, which is what makes leaf-set delivery
    land on the numerically closest node.
    """

    def __init__(self, owner: int, half_size: int = 8) -> None:
        if half_size < 1:
            raise ValueError(f"half_size must be positive, got {half_size}")
        self.owner = owner
        self.half_size = half_size
        self._members: Set[int] = set()

    def _cw_distance(self, node_id: int) -> int:
        return (node_id - self.owner) % ID_SPACE

    def _sides(self) -> Tuple[List[int], List[int]]:
        """Members split into (successors, predecessors), nearest first."""
        by_cw = sorted(self._members, key=self._cw_distance)
        successors = by_cw[: self.half_size]
        predecessors = by_cw[::-1][: self.half_size]
        return successors, predecessors

    def consider(self, node_id: int) -> None:
        """Offer a node; keeps the ``half_size`` nearest per side."""
        if node_id == self.owner:
            return
        self._members.add(node_id)
        if len(self._members) > 2 * self.half_size:
            successors, predecessors = self._sides()
            self._members = set(successors) | set(predecessors)

    def consider_all(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.consider(node_id)

    def remove(self, node_id: int) -> None:
        self._members.discard(node_id)

    def members(self) -> List[int]:
        return sorted(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def covers(self, key: int) -> bool:
        """Whether ``key`` falls within the leaf set's ring span.

        The span is measured per side, with every member counted in the
        direction it is actually nearer: a key is covered when it lies no
        farther clockwise than the farthest successor, or no farther
        counter-clockwise than the farthest predecessor.
        """
        if not self._members:
            return False
        succ_span = 0
        pred_span = 0
        for member in self._members:
            cw = self._cw_distance(member)
            ccw = ID_SPACE - cw
            if cw <= ccw:
                succ_span = max(succ_span, cw)
            else:
                pred_span = max(pred_span, ccw)
        key_cw = self._cw_distance(key)
        key_ccw = (ID_SPACE - key_cw) % ID_SPACE
        return (0 < key_cw <= succ_span) or (0 < key_ccw <= pred_span) or key_cw == 0

    def closest_to(self, key: int) -> int:
        """The leaf-set member (or owner) numerically closest to ``key``."""
        candidates = list(self._members) + [self.owner]
        return min(candidates, key=lambda nid: (ring_distance(nid, key), nid))
