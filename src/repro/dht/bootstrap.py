"""Publicly known bootstrapping nodes.

"SOUP incorporates a list of publicly known bootstrapping nodes to help new
nodes join SOUP.  A bootstrapping node is simply a regular node enhanced
with a function to bootstrap others" (Sec. 3.2).  Bootstrap nodes also serve
as the initial gateway for mobile nodes (Sec. 3.3).
"""

from __future__ import annotations

import random
from typing import List, Optional


class BootstrapRegistry:
    """The well-known bootstrap-node list."""

    def __init__(self, node_ids: Optional[List[int]] = None) -> None:
        self._node_ids: List[int] = list(node_ids or [])

    def register(self, node_id: int) -> None:
        if node_id not in self._node_ids:
            self._node_ids.append(node_id)

    def unregister(self, node_id: int) -> None:
        if node_id in self._node_ids:
            self._node_ids.remove(node_id)

    def all(self) -> List[int]:
        return list(self._node_ids)

    def __len__(self) -> int:
        return len(self._node_ids)

    def pick(self, rng: random.Random) -> int:
        """A random bootstrap node for a joiner (spreads the join load)."""
        if not self._node_ids:
            raise LookupError("no bootstrap nodes registered")
        return rng.choice(self._node_ids)
