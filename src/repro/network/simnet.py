"""The simulated network: links, delivery, and traffic metering.

Every registered node has a :class:`LinkSpec` (latency, bandwidth — mobile
nodes get slower links, Sec. 3.3) and a handler invoked on delivery.
Transfer time is ``latency + size / min(sender_up, receiver_down)``.
Messages to offline or unknown nodes fail; the sender's failure callback
fires, which is how fetch attempts against offline mirrors are *observed*
as failures and end up in experience sets.

:class:`TrafficMeter` buckets bytes per second per direction, producing
exactly the KB/s-over-time series plotted in Figs. 14a, 14b and 15.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.events import EventLoop
from repro.obs import get_registry

logger = logging.getLogger("repro.network.simnet")


@dataclass(frozen=True)
class LinkSpec:
    """A node's access link."""

    latency_s: float = 0.04
    upstream_bytes_per_s: float = 1_000_000.0
    downstream_bytes_per_s: float = 4_000_000.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.upstream_bytes_per_s <= 0 or self.downstream_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")


#: Typical 2014-era access links, used by the deployment emulation.
DESKTOP_LINK = LinkSpec(latency_s=0.03, upstream_bytes_per_s=750_000, downstream_bytes_per_s=1_000_000)
MOBILE_LINK = LinkSpec(latency_s=0.12, upstream_bytes_per_s=150_000, downstream_bytes_per_s=1_000_000)
SERVER_LINK = LinkSpec(latency_s=0.01, upstream_bytes_per_s=12_500_000, downstream_bytes_per_s=12_500_000)


class DeliveryFailure(Exception):
    """Raised/reported when a message cannot be delivered."""


class TrafficMeter:
    """Per-second byte counters for one node."""

    def __init__(self) -> None:
        self._sent: Dict[int, int] = {}
        self._received: Dict[int, int] = {}

    @staticmethod
    def _spread(
        table: Dict[int, int], time_s: float, size_bytes: int, duration_s: float
    ) -> None:
        """Distribute ``size_bytes`` over ``duration_s`` starting at
        ``time_s`` — a large transfer occupies the link for its whole
        duration instead of spiking one bucket."""
        start = int(time_s)
        seconds = max(1, int(duration_s) + 1)
        per_second = size_bytes // seconds
        remainder = size_bytes - per_second * seconds
        for offset in range(seconds):
            amount = per_second + (remainder if offset == 0 else 0)
            if amount:
                table[start + offset] = table.get(start + offset, 0) + amount

    def record_sent(
        self, time_s: float, size_bytes: int, duration_s: float = 0.0
    ) -> None:
        self._spread(self._sent, time_s, size_bytes, duration_s)

    def record_received(
        self, time_s: float, size_bytes: int, duration_s: float = 0.0
    ) -> None:
        self._spread(self._received, time_s, size_bytes, duration_s)

    def total_sent(self) -> int:
        return sum(self._sent.values())

    def total_received(self) -> int:
        return sum(self._received.values())

    def series_kb_per_s(
        self, start_s: int = 0, end_s: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """(second, KB/s) series of total traffic (both directions)."""
        buckets = set(self._sent) | set(self._received)
        if end_s is None:
            end_s = max(buckets) + 1 if buckets else start_s
        series = []
        for second in range(start_s, end_s):
            total = self._sent.get(second, 0) + self._received.get(second, 0)
            series.append((second, total / 1024.0))
        return series

    def peak_kb_per_s(self) -> float:
        series = self.series_kb_per_s()
        return max((kb for _, kb in series), default=0.0)

    def mean_kb_per_s(self) -> float:
        series = self.series_kb_per_s()
        if not series:
            return 0.0
        return sum(kb for _, kb in series) / len(series)


Handler = Callable[[int, Any], None]
FailureHandler = Callable[[int, Any, str], None]


class _NetEvent:
    """One scheduled delivery or failure notification, pooled.

    Every :meth:`SimNetwork.send` used to allocate a fresh closure per
    message; at deployment-emulation message rates that allocation (and
    the captured cell objects) dominated the network layer's profile.  An
    event object instead carries the message fields in ``__slots__`` and
    returns itself to the network's free list after firing, so steady-state
    traffic allocates nothing per message.  The event loop fires each
    scheduled entry exactly once, so an event is only recycled after its
    single shot — at-most-once delivery is preserved (property-tested in
    tests/property/test_reliability_properties.py).
    """

    __slots__ = (
        "net",
        "kind",
        "sender",
        "receiver",
        "message",
        "size_bytes",
        "receive_duration",
        "reason",
        "failure_handler",
    )

    #: Event kinds.
    DELIVER = 0
    FAIL = 1

    def __init__(self, net: "SimNetwork") -> None:
        self.net = net
        self.kind = _NetEvent.DELIVER
        self.sender = 0
        self.receiver = 0
        self.message = None
        self.size_bytes = 0
        self.receive_duration = 0.0
        self.reason = ""
        self.failure_handler: Optional[FailureHandler] = None

    def __call__(self) -> None:
        net = self.net
        try:
            if self.kind == _NetEvent.DELIVER:
                net._deliver(
                    self.sender,
                    self.receiver,
                    self.message,
                    self.size_bytes,
                    self.receive_duration,
                )
            else:
                handler = self.failure_handler
                if handler is not None:
                    handler(self.receiver, self.message, self.reason)
        finally:
            # Drop payload/handler references before pooling so a recycled
            # slot cannot keep a message graph alive.
            self.message = None
            self.failure_handler = None
            net._event_pool.append(self)


class SimNetwork:
    """Message delivery between registered nodes over an event loop."""

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self._links: Dict[int, LinkSpec] = {}
        self._handlers: Dict[int, Handler] = {}
        self._failure_handlers: Dict[int, FailureHandler] = {}
        self._online: Dict[int, bool] = {}
        self.meters: Dict[int, TrafficMeter] = {}
        #: Separate meters for DHT/overlay control traffic, so control
        #: overhead (Fig. 14a) can be reported independently of user data.
        self.control_meters: Dict[int, TrafficMeter] = {}
        self.messages_delivered = 0
        self.messages_failed = 0
        #: Failure counts broken down by reason ("sender-offline",
        #: "unreachable", "lost-in-flight"), so diagnoses don't have to
        #: guess which leg of the path dropped the message.
        self.failures_by_reason: Dict[str, int] = {}
        #: Time each node's uplink is busy until (sends serialize).
        self._uplink_free_at: Dict[int, float] = {}
        #: Time each node's downlink is busy until (receives serialize).
        self._downlink_free_at: Dict[int, float] = {}
        #: Free list of recycled :class:`_NetEvent` objects.
        self._event_pool: List[_NetEvent] = []

    # --- membership -------------------------------------------------------
    def register(
        self,
        node_id: int,
        handler: Handler,
        link: LinkSpec = LinkSpec(),
        on_failure: Optional[FailureHandler] = None,
    ) -> None:
        if node_id in self._links:
            raise ValueError(f"node {node_id} already registered")
        self._links[node_id] = link
        self._handlers[node_id] = handler
        if on_failure is not None:
            self._failure_handlers[node_id] = on_failure
        self._online[node_id] = True
        self.meters[node_id] = TrafficMeter()
        self.control_meters[node_id] = TrafficMeter()

    def control_meter(self, node_id: int) -> TrafficMeter:
        """The DHT-control traffic meter for a node (created on demand for
        ids charged before registration, e.g. overlay-only members)."""
        meter = self.control_meters.get(node_id)
        if meter is None:
            meter = TrafficMeter()
            self.control_meters[node_id] = meter
        return meter

    def unregister(self, node_id: int) -> None:
        for table in (
            self._links,
            self._handlers,
            self._failure_handlers,
            self._online,
            self.meters,
            self.control_meters,
            self._uplink_free_at,
            self._downlink_free_at,
        ):
            table.pop(node_id, None)

    def set_online(self, node_id: int, online: bool) -> None:
        if node_id not in self._links:
            raise KeyError(f"unknown node {node_id}")
        self._online[node_id] = online

    def is_online(self, node_id: int) -> bool:
        return self._online.get(node_id, False)

    def link_of(self, node_id: int) -> LinkSpec:
        return self._links[node_id]

    # --- sending ---------------------------------------------------------
    def _count_failure(self, reason: str) -> None:
        self.messages_failed += 1
        self.failures_by_reason[reason] = self.failures_by_reason.get(reason, 0) + 1
        get_registry().counter(f"net.failures.{reason}").inc()

    def uplink_backlog_s(self, node_id: int) -> float:
        """How far beyond *now* the node's uplink is already committed —
        queued sends delay both delivery and the returning ack, so retry
        timeouts must stretch by this much to avoid false losses."""
        return max(0.0, self._uplink_free_at.get(node_id, 0.0) - self.loop.now)

    def transfer_time(self, sender: int, receiver: int, size_bytes: int) -> float:
        s_link = self._links[sender]
        r_link = self._links[receiver]
        bottleneck = min(s_link.upstream_bytes_per_s, r_link.downstream_bytes_per_s)
        return s_link.latency_s + r_link.latency_s + size_bytes / bottleneck

    def _acquire_event(self) -> _NetEvent:
        pool = self._event_pool
        if pool:
            return pool.pop()
        return _NetEvent(self)

    def _schedule_failure(
        self,
        delay: float,
        handler: FailureHandler,
        sender: int,
        receiver: int,
        message: Any,
        reason: str,
    ) -> None:
        event = self._acquire_event()
        event.kind = _NetEvent.FAIL
        event.sender = sender
        event.receiver = receiver
        event.message = message
        event.reason = reason
        event.failure_handler = handler
        self.loop.schedule(delay, event)

    def _deliver(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        # The receiver may have gone offline while the bytes were in
        # flight; they are then lost.
        if not self._online.get(receiver, False):
            self._count_failure("lost-in-flight")
            return
        # Concurrent inbound streams share (serialize on) the downlink.
        start = max(self.loop.now, self._downlink_free_at.get(receiver, 0.0))
        self._downlink_free_at[receiver] = start + receive_duration
        self.meters[receiver].record_received(start, size_bytes, receive_duration)
        self.messages_delivered += 1
        get_registry().counter("net.delivered").inc()
        self._handlers[receiver](sender, message)

    def send(self, sender: int, receiver: int, message: Any, size_bytes: int) -> None:
        """Send a message; delivery or failure is scheduled on the loop."""
        if sender not in self._links:
            raise KeyError(f"unknown sender {sender}")
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        if not self._online.get(sender, False):
            # A node that went offline mid-action loses the send, but the
            # loss is reported: its failure handler fires (immediately —
            # the sender's own stack notices synchronously) so retry
            # machinery can reschedule the send for when it reconnects.
            self._count_failure("sender-offline")
            failure_handler = self._failure_handlers.get(sender)
            if failure_handler is not None:
                self._schedule_failure(
                    0.0, failure_handler, sender, receiver, message, "sender-offline"
                )
            return
        # Sends serialize on the sender's uplink: a burst of pushes occupies
        # the link back to back instead of stacking into one instant.
        send_duration = size_bytes / self._links[sender].upstream_bytes_per_s
        start = max(self.loop.now, self._uplink_free_at.get(sender, 0.0))
        self._uplink_free_at[sender] = start + send_duration
        self.meters[sender].record_sent(start, size_bytes, send_duration)
        queue_delay = start - self.loop.now

        if receiver not in self._links or not self._online.get(receiver, False):
            self._count_failure("unreachable")
            failure_handler = self._failure_handlers.get(sender)
            if failure_handler is not None:
                # Failure is detected after a timeout ~ the link latency.
                delay = self._links[sender].latency_s * 2 + 0.5
                self._schedule_failure(
                    delay, failure_handler, sender, receiver, message, "unreachable"
                )
            return

        delay = self.transfer_time(sender, receiver, size_bytes)
        event = self._acquire_event()
        event.kind = _NetEvent.DELIVER
        event.sender = sender
        event.receiver = receiver
        event.message = message
        event.size_bytes = size_bytes
        event.receive_duration = size_bytes / min(
            self._links[sender].upstream_bytes_per_s,
            self._links[receiver].downstream_bytes_per_s,
        )
        self.loop.schedule(queue_delay + delay, event)
