"""The simulated network: links, delivery, and traffic metering.

Every registered node has a :class:`LinkSpec` (latency, bandwidth — mobile
nodes get slower links, Sec. 3.3) and a handler invoked on delivery.
Transfer time is ``latency + size / min(sender_up, receiver_down)``.
Messages to offline or unknown nodes fail; the sender's failure callback
fires, which is how fetch attempts against offline mirrors are *observed*
as failures and end up in experience sets.

:class:`TrafficMeter` buckets bytes per second per direction, producing
exactly the KB/s-over-time series plotted in Figs. 14a, 14b and 15.

:class:`SimNetwork` is one backend of the :class:`~repro.network.transport.Transport`
seam — the deterministic discrete-event one.  The live asyncio backend
(:mod:`repro.deploy.live`) implements the same contract over TCP loopback
sockets, so the middleware above runs unchanged on either.
"""

from __future__ import annotations

import logging
from typing import Any, List, Optional

from repro.network.events import EventLoop
from repro.network.transport import (  # noqa: F401  (re-exported compat names)
    DESKTOP_LINK,
    MOBILE_LINK,
    SERVER_LINK,
    DeliveryFailure,
    FailureHandler,
    Handler,
    LinkSpec,
    TrafficMeter,
    Transport,
)
from repro.obs import get_registry
from repro.obs.profiling import PROFILER

logger = logging.getLogger("repro.network.simnet")


class _NetEvent:
    """One scheduled delivery or failure notification, pooled.

    Every :meth:`SimNetwork.send` used to allocate a fresh closure per
    message; at deployment-emulation message rates that allocation (and
    the captured cell objects) dominated the network layer's profile.  An
    event object instead carries the message fields in ``__slots__`` and
    returns itself to the network's free list after firing, so steady-state
    traffic allocates nothing per message.  The event loop fires each
    scheduled entry exactly once, so an event is only recycled after its
    single shot — at-most-once delivery is preserved (property-tested in
    tests/property/test_reliability_properties.py).
    """

    __slots__ = (
        "net",
        "kind",
        "sender",
        "receiver",
        "message",
        "size_bytes",
        "receive_duration",
        "reason",
        "failure_handler",
    )

    #: Event kinds.
    DELIVER = 0
    FAIL = 1

    def __init__(self, net: "SimNetwork") -> None:
        self.net = net
        self.kind = _NetEvent.DELIVER
        self.sender = 0
        self.receiver = 0
        self.message = None
        self.size_bytes = 0
        self.receive_duration = 0.0
        self.reason = ""
        self.failure_handler: Optional[FailureHandler] = None

    def __call__(self) -> None:
        net = self.net
        try:
            if self.kind == _NetEvent.DELIVER:
                net._deliver(
                    self.sender,
                    self.receiver,
                    self.message,
                    self.size_bytes,
                    self.receive_duration,
                )
            else:
                handler = self.failure_handler
                if handler is not None:
                    handler(self.receiver, self.message, self.reason)
        finally:
            # Drop payload/handler references before pooling so a recycled
            # slot cannot keep a message graph alive.
            self.message = None
            self.failure_handler = None
            net._event_pool.append(self)


class SimNetwork(Transport):
    """Message delivery between registered nodes over an event loop."""

    def __init__(self, loop: EventLoop) -> None:
        super().__init__(loop)
        #: Free list of recycled :class:`_NetEvent` objects.
        self._event_pool: List[_NetEvent] = []

    # --- sending ---------------------------------------------------------
    def _acquire_event(self) -> _NetEvent:
        pool = self._event_pool
        if pool:
            return pool.pop()
        return _NetEvent(self)

    def _schedule_failure(
        self,
        delay: float,
        handler: FailureHandler,
        sender: int,
        receiver: int,
        message: Any,
        reason: str,
    ) -> None:
        event = self._acquire_event()
        event.kind = _NetEvent.FAIL
        event.sender = sender
        event.receiver = receiver
        event.message = message
        event.reason = reason
        event.failure_handler = handler
        self.loop.schedule(delay, event)

    def _deliver(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        # Hot path: skip even the no-op span unless profiling is on.
        if PROFILER.enabled:
            with PROFILER.span("net.deliver"):
                return self._deliver_now(
                    sender, receiver, message, size_bytes, receive_duration
                )
        return self._deliver_now(
            sender, receiver, message, size_bytes, receive_duration
        )

    def _deliver_now(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        # The receiver may have gone offline while the bytes were in
        # flight; they are then lost.
        if not self._online.get(receiver, False):
            self._count_failure("lost-in-flight")
            return
        # A paused (SIGSTOP-stalled) receiver buffers the bytes; they are
        # handed to the handler on resume.
        if self._chaos is not None and receiver in self._chaos.paused:
            self._buffer_inbound(sender, receiver, message, size_bytes, receive_duration)
            return
        # Concurrent inbound streams share (serialize on) the downlink.
        start = max(self.loop.now, self._downlink_free_at.get(receiver, 0.0))
        self._downlink_free_at[receiver] = start + receive_duration
        self.meters[receiver].record_received(start, size_bytes, receive_duration)
        self.messages_delivered += 1
        get_registry().counter("net.delivered").inc()
        self._handlers[receiver](sender, message)

    def _flush_inbound(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        self._deliver(sender, receiver, message, size_bytes, receive_duration)

    def send(self, sender: int, receiver: int, message: Any, size_bytes: int) -> None:
        """Send a message; delivery or failure is scheduled on the loop."""
        if sender not in self._links:
            raise KeyError(f"unknown sender {sender}")
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        if not self._online.get(sender, False):
            # A node that went offline mid-action loses the send, but the
            # loss is reported: its failure handler fires (immediately —
            # the sender's own stack notices synchronously) so retry
            # machinery can reschedule the send for when it reconnects.
            self._count_failure("sender-offline")
            failure_handler = self._failure_handlers.get(sender)
            if failure_handler is not None:
                self._schedule_failure(
                    0.0, failure_handler, sender, receiver, message, "sender-offline"
                )
            return
        if self._chaos is not None:
            blocked = self._chaos_blocks(sender, receiver)
            if blocked == "paused":
                self._buffer_outbound(sender, receiver, message, size_bytes)
                return
            if blocked == "chaos-drop":
                # Lost in flight: the sender learns nothing until its own
                # timeout machinery notices the missing ack.
                self._count_failure("chaos-drop")
                return
            if blocked is not None:  # "partitioned"
                self._count_failure(blocked)
                failure_handler = self._failure_handlers.get(sender)
                if failure_handler is not None:
                    delay = self._links[sender].latency_s * 2 + 0.5
                    self._schedule_failure(
                        delay, failure_handler, sender, receiver, message, blocked
                    )
                return
        # Sends serialize on the sender's uplink: a burst of pushes occupies
        # the link back to back instead of stacking into one instant.
        send_duration = size_bytes / self._links[sender].upstream_bytes_per_s
        start = max(self.loop.now, self._uplink_free_at.get(sender, 0.0))
        self._uplink_free_at[sender] = start + send_duration
        self.meters[sender].record_sent(start, size_bytes, send_duration)
        queue_delay = start - self.loop.now

        if receiver not in self._links or not self._online.get(receiver, False):
            self._count_failure("unreachable")
            failure_handler = self._failure_handlers.get(sender)
            if failure_handler is not None:
                # Failure is detected after a timeout ~ the link latency.
                delay = self._links[sender].latency_s * 2 + 0.5
                self._schedule_failure(
                    delay, failure_handler, sender, receiver, message, "unreachable"
                )
            return

        delay = self.transfer_time(sender, receiver, size_bytes)
        if self._chaos is not None:
            delay += self._chaos.extra_delay_s
        event = self._acquire_event()
        event.kind = _NetEvent.DELIVER
        event.sender = sender
        event.receiver = receiver
        event.message = message
        event.size_bytes = size_bytes
        event.receive_duration = size_bytes / min(
            self._links[sender].upstream_bytes_per_s,
            self._links[receiver].downstream_bytes_per_s,
        )
        self.loop.schedule(queue_delay + delay, event)
