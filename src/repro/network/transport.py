"""The transport seam: one message-passing contract, two backends.

Everything above the network layer — the :class:`~repro.node.middleware.SoupNode`
middleware, the reliability machinery (:mod:`repro.network.reliability`) and
the Pastry directory — talks to the network through the interface defined
here, never to a concrete backend.  Two backends implement it:

* :class:`~repro.network.simnet.SimNetwork` — the deterministic
  discrete-event simulation (latency/bandwidth models, metered links).
* :class:`~repro.deploy.live.LiveTransport` — an asyncio runtime carrying
  every frame over real TCP loopback sockets (real buffers, real timing).

Because both subclass :class:`Transport`, the same middleware code paths
run unchanged on either backend — which is what lets the resilience
harness (:mod:`repro.deploy.live`) make availability claims about the
*protocol*, not about one network model.

The base class also owns the chaos primitives that fault injection needs
on *both* backends (see :mod:`repro.sim.faults` for the spec grammar):

* **partition** — nodes are assigned to groups; messages crossing a group
  boundary fail with reason ``"partitioned"``.
* **delay** — a fixed extra latency added to every delivery.
* **drop** — seeded random message loss in flight (``"chaos-drop"``).
* **pause** — a SIGSTOP-style stall: a paused node neither receives nor
  sends; traffic is buffered and flushed on resume.

All primitives are inert by default: a transport with no chaos applied
behaves bit-for-bit like one without these hooks (guarded by a single
``_chaos is None`` check on the send path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Set, Tuple


class Clock(Protocol):
    """What a transport needs from time: a monotonic ``now`` and one-shot
    timers.  :class:`~repro.network.events.EventLoop` provides it for the
    simulated world; :class:`~repro.deploy.live.AsyncClock` for wallclock."""

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, callback: Callable[[], None]) -> None: ...


@dataclass(frozen=True)
class LinkSpec:
    """A node's access link."""

    latency_s: float = 0.04
    upstream_bytes_per_s: float = 1_000_000.0
    downstream_bytes_per_s: float = 4_000_000.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.upstream_bytes_per_s <= 0 or self.downstream_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")


#: Typical 2014-era access links, used by the deployment emulation.
DESKTOP_LINK = LinkSpec(latency_s=0.03, upstream_bytes_per_s=750_000, downstream_bytes_per_s=1_000_000)
MOBILE_LINK = LinkSpec(latency_s=0.12, upstream_bytes_per_s=150_000, downstream_bytes_per_s=1_000_000)
SERVER_LINK = LinkSpec(latency_s=0.01, upstream_bytes_per_s=12_500_000, downstream_bytes_per_s=12_500_000)


class DeliveryFailure(Exception):
    """Raised/reported when a message cannot be delivered."""


class TrafficMeter:
    """Per-second byte counters for one node."""

    def __init__(self) -> None:
        self._sent: Dict[int, int] = {}
        self._received: Dict[int, int] = {}

    @staticmethod
    def _spread(
        table: Dict[int, int], time_s: float, size_bytes: int, duration_s: float
    ) -> None:
        """Distribute ``size_bytes`` over ``duration_s`` starting at
        ``time_s`` — a large transfer occupies the link for its whole
        duration instead of spiking one bucket."""
        start = int(time_s)
        seconds = max(1, int(duration_s) + 1)
        per_second = size_bytes // seconds
        remainder = size_bytes - per_second * seconds
        for offset in range(seconds):
            amount = per_second + (remainder if offset == 0 else 0)
            if amount:
                table[start + offset] = table.get(start + offset, 0) + amount

    def record_sent(
        self, time_s: float, size_bytes: int, duration_s: float = 0.0
    ) -> None:
        self._spread(self._sent, time_s, size_bytes, duration_s)

    def record_received(
        self, time_s: float, size_bytes: int, duration_s: float = 0.0
    ) -> None:
        self._spread(self._received, time_s, size_bytes, duration_s)

    def total_sent(self) -> int:
        return sum(self._sent.values())

    def total_received(self) -> int:
        return sum(self._received.values())

    def series_kb_per_s(
        self, start_s: int = 0, end_s: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """(second, KB/s) series of total traffic (both directions)."""
        buckets = set(self._sent) | set(self._received)
        if end_s is None:
            end_s = max(buckets) + 1 if buckets else start_s
        series = []
        for second in range(start_s, end_s):
            total = self._sent.get(second, 0) + self._received.get(second, 0)
            series.append((second, total / 1024.0))
        return series

    def peak_kb_per_s(self) -> float:
        series = self.series_kb_per_s()
        return max((kb for _, kb in series), default=0.0)

    def mean_kb_per_s(self) -> float:
        series = self.series_kb_per_s()
        if not series:
            return 0.0
        return sum(kb for _, kb in series) / len(series)


Handler = Callable[[int, Any], None]
FailureHandler = Callable[[int, Any, str], None]


@dataclass
class _ChaosState:
    """Active network-level faults (absent entirely on a healthy transport)."""

    #: node -> partition group; messages crossing groups fail.
    partition: Optional[Dict[int, int]] = None
    #: Extra seconds added to every delivery.
    extra_delay_s: float = 0.0
    #: Probability a message is silently lost in flight.
    drop_rate: float = 0.0
    #: Seeded stream for drop decisions (replayable).
    drop_rng: random.Random = field(default_factory=lambda: random.Random(0))
    #: Nodes currently stalled (SIGSTOP-style).
    paused: Set[int] = field(default_factory=set)

    @property
    def inert(self) -> bool:
        return (
            self.partition is None
            and self.extra_delay_s == 0.0
            and self.drop_rate == 0.0
            and not self.paused
        )


class Transport:
    """Shared state and contract for message transports.

    Subclasses implement :meth:`send` (and deliver inbound messages to the
    registered handlers); everything else — membership, link specs, online
    state, traffic meters, failure accounting, and the chaos primitives —
    lives here so both backends expose identical semantics.
    """

    def __init__(self, clock: Clock) -> None:
        #: Kept under the historical name ``loop``: the middleware reads
        #: ``network.loop.now`` for timestamps and schedules timers on it.
        self.loop = clock
        self._links: Dict[int, LinkSpec] = {}
        self._handlers: Dict[int, Handler] = {}
        self._failure_handlers: Dict[int, FailureHandler] = {}
        self._online: Dict[int, bool] = {}
        self.meters: Dict[int, TrafficMeter] = {}
        #: Separate meters for DHT/overlay control traffic, so control
        #: overhead (Fig. 14a) can be reported independently of user data.
        self.control_meters: Dict[int, TrafficMeter] = {}
        self.messages_delivered = 0
        self.messages_failed = 0
        #: Failure counts broken down by reason ("sender-offline",
        #: "unreachable", "lost-in-flight", "partitioned", "chaos-drop"),
        #: so diagnoses don't have to guess which leg dropped the message.
        self.failures_by_reason: Dict[str, int] = {}
        #: Time each node's uplink is busy until (sends serialize).
        self._uplink_free_at: Dict[int, float] = {}
        #: Time each node's downlink is busy until (receives serialize).
        self._downlink_free_at: Dict[int, float] = {}
        #: Active chaos, or None when the network is healthy (the common
        #: case: one attribute check on the send path).
        self._chaos: Optional[_ChaosState] = None
        #: Buffered traffic of paused nodes, flushed on resume.
        self._paused_inbox: Dict[int, List[Tuple[int, Any, int, float]]] = {}
        self._paused_outbox: Dict[int, List[Tuple[int, Any, int]]] = {}

    # --- membership -------------------------------------------------------
    def register(
        self,
        node_id: int,
        handler: Handler,
        link: LinkSpec = LinkSpec(),
        on_failure: Optional[FailureHandler] = None,
    ) -> None:
        if node_id in self._links:
            raise ValueError(f"node {node_id} already registered")
        self._links[node_id] = link
        self._handlers[node_id] = handler
        if on_failure is not None:
            self._failure_handlers[node_id] = on_failure
        self._online[node_id] = True
        self.meters[node_id] = TrafficMeter()
        self.control_meters[node_id] = TrafficMeter()

    def control_meter(self, node_id: int) -> TrafficMeter:
        """The DHT-control traffic meter for a node (created on demand for
        ids charged before registration, e.g. overlay-only members)."""
        meter = self.control_meters.get(node_id)
        if meter is None:
            meter = TrafficMeter()
            self.control_meters[node_id] = meter
        return meter

    def unregister(self, node_id: int) -> None:
        for table in (
            self._links,
            self._handlers,
            self._failure_handlers,
            self._online,
            self.meters,
            self.control_meters,
            self._uplink_free_at,
            self._downlink_free_at,
            self._paused_inbox,
            self._paused_outbox,
        ):
            table.pop(node_id, None)

    def node_ids(self) -> List[int]:
        return list(self._links)

    def set_online(self, node_id: int, online: bool) -> None:
        if node_id not in self._links:
            raise KeyError(f"unknown node {node_id}")
        self._online[node_id] = online

    def is_online(self, node_id: int) -> bool:
        return self._online.get(node_id, False)

    def link_of(self, node_id: int) -> LinkSpec:
        return self._links[node_id]

    # --- chaos primitives -------------------------------------------------
    def _ensure_chaos(self) -> _ChaosState:
        if self._chaos is None:
            self._chaos = _ChaosState()
        return self._chaos

    def _settle_chaos(self) -> None:
        """Drop the chaos state object once every fault is cleared, so the
        healthy send path goes back to a single None check."""
        if self._chaos is not None and self._chaos.inert:
            self._chaos = None

    def set_partition(self, groups: Dict[int, int]) -> None:
        """Split the network: messages between different groups fail.
        Nodes absent from ``groups`` default to group 0."""
        self._ensure_chaos().partition = dict(groups)

    def heal_partition(self) -> None:
        if self._chaos is not None:
            self._chaos.partition = None
            self._settle_chaos()

    def set_extra_delay(self, seconds: float) -> None:
        """Add a fixed delay to every delivery (0 clears it)."""
        if seconds < 0:
            raise ValueError("extra delay cannot be negative")
        if seconds == 0.0 and self._chaos is None:
            return
        self._ensure_chaos().extra_delay_s = seconds
        self._settle_chaos()

    def set_drop(self, rate: float, seed: object = 0) -> None:
        """Silently lose each message with probability ``rate`` (seeded,
        so a fixed seed replays the same loss pattern).  0 clears it."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("drop rate must be in [0, 1]")
        if rate == 0.0 and self._chaos is None:
            return
        chaos = self._ensure_chaos()
        chaos.drop_rate = rate
        chaos.drop_rng = random.Random(f"drop/{seed}")
        self._settle_chaos()

    def pause(self, node_id: int) -> None:
        """SIGSTOP-style stall: the node stops sending and receiving;
        traffic to/from it is buffered until :meth:`resume`."""
        if node_id not in self._links:
            raise KeyError(f"unknown node {node_id}")
        self._ensure_chaos().paused.add(node_id)

    def resume(self, node_id: int) -> None:
        """Resume a paused node and flush its buffered traffic."""
        if self._chaos is None or node_id not in self._chaos.paused:
            return
        self._chaos.paused.discard(node_id)
        self._settle_chaos()
        for sender, message, size_bytes, receive_duration in self._paused_inbox.pop(
            node_id, []
        ):
            self._flush_inbound(sender, node_id, message, size_bytes, receive_duration)
        for receiver, message, size_bytes in self._paused_outbox.pop(node_id, []):
            self.send(node_id, receiver, message, size_bytes)

    def is_paused(self, node_id: int) -> bool:
        return self._chaos is not None and node_id in self._chaos.paused

    def partitioned(self, a: int, b: int) -> bool:
        """Whether a partition currently separates ``a`` and ``b``."""
        if self._chaos is None or self._chaos.partition is None:
            return False
        groups = self._chaos.partition
        return groups.get(a, 0) != groups.get(b, 0)

    def reachable(self, a: int, b: int) -> bool:
        """Whether a message from ``a`` could currently reach ``b``: both
        registered and online, neither paused, no partition in between.
        Protocol-level serving decisions consult this so the same code
        paths see chaos identically on both backends."""
        if not self._online.get(a, False) or not self._online.get(b, False):
            return False
        if self._chaos is None:
            return True
        if a in self._chaos.paused or b in self._chaos.paused:
            return False
        return not self.partitioned(a, b)

    # --- shared accounting ------------------------------------------------
    def _count_failure(self, reason: str) -> None:
        from repro.obs import get_registry

        self.messages_failed += 1
        self.failures_by_reason[reason] = self.failures_by_reason.get(reason, 0) + 1
        get_registry().counter(f"net.failures.{reason}").inc()

    def uplink_backlog_s(self, node_id: int) -> float:
        """How far beyond *now* the node's uplink is already committed —
        queued sends delay both delivery and the returning ack, so retry
        timeouts must stretch by this much to avoid false losses."""
        return max(0.0, self._uplink_free_at.get(node_id, 0.0) - self.loop.now)

    def transfer_time(self, sender: int, receiver: int, size_bytes: int) -> float:
        s_link = self._links[sender]
        r_link = self._links[receiver]
        bottleneck = min(s_link.upstream_bytes_per_s, r_link.downstream_bytes_per_s)
        return s_link.latency_s + r_link.latency_s + size_bytes / bottleneck

    # --- chaos hooks for the send path ------------------------------------
    def _chaos_blocks(self, sender: int, receiver: int) -> Optional[str]:
        """Returns the sentinel ``"paused"`` if the sender is stalled (the
        caller must buffer the send for resume), a failure reason if
        active chaos blocks this send, or None to proceed.  Drop decisions
        are made here too, so every backend consumes the seeded stream
        identically."""
        chaos = self._chaos
        if chaos is None:
            return None
        if sender in chaos.paused:
            return "paused"
        if chaos.partition is not None and self.partitioned(sender, receiver):
            return "partitioned"
        if chaos.drop_rate and chaos.drop_rng.random() < chaos.drop_rate:
            return "chaos-drop"
        return None

    def _buffer_outbound(
        self, sender: int, receiver: int, message: Any, size_bytes: int
    ) -> None:
        self._paused_outbox.setdefault(sender, []).append(
            (receiver, message, size_bytes)
        )

    def _buffer_inbound(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        self._paused_inbox.setdefault(receiver, []).append(
            (sender, message, size_bytes, receive_duration)
        )

    def _chaos_extra_delay(self) -> float:
        return self._chaos.extra_delay_s if self._chaos is not None else 0.0

    def _flush_inbound(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        """Deliver one buffered inbound message after a resume (backend-
        specific: the sim re-enters its delivery path, the live transport
        hands the frame to the node's handler)."""
        raise NotImplementedError

    # --- the contract -----------------------------------------------------
    def send(self, sender: int, receiver: int, message: Any, size_bytes: int) -> None:
        """Send a message; delivery or failure is reported asynchronously
        through the registered handlers."""
        raise NotImplementedError
