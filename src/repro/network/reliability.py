"""Reliable delivery over the simulated network.

:class:`~repro.network.transport.Transport` backends are deliberately
unreliable: messages to offline nodes vanish, in-flight bytes are lost when
the receiver goes dark, and a sender crashing mid-action loses the send.  The
protocol stack, however, makes durability claims — "data of any
participant [is] always available" — that rest on those very messages
(replica pushes, buffered-update deliveries) actually arriving.  This
module supplies the machinery between the two:

* :class:`RetryPolicy` — exponential backoff with deterministic,
  seed-derived jitter, a per-attempt timeout and an attempt cap.  The
  jitter for (seed, message, attempt) is a pure function, so a fixed
  scenario seed replays the exact retry schedule.
* :class:`CircuitBreaker` — per-destination closed → open → half-open
  breaker.  A destination that keeps timing out stops consuming uplink
  and timers until a probe succeeds (cf. the gateway-overload concern of
  Sec. 3.3: a mobile node hammering a dead gateway helps nobody).
* :class:`FailureDetector` — suspicion-based detector in the
  eventually-perfect style: ack timeouts raise suspicion, observed
  deliveries (an ack, or any inbound message) clear it.  Crossing the
  threshold declares the peer dead and fires ``on_dead`` — which is what
  triggers proactive replica repair in
  :meth:`repro.node.middleware.SoupNode.repair_mirrors`.
* :class:`ReliableEndpoint` — acknowledged sends: payloads travel in
  sequence-numbered :class:`Envelope` frames, receivers ack every frame
  (including duplicates) and deduplicate before delivering to the inner
  handler, so *ack loss → retry* never applies an update twice.  Per-
  message timers run on the transport's clock — the simulated
  :class:`~repro.network.events.EventLoop` or the live asyncio clock, so
  the same reliability code runs on either backend.

Everything here is deterministic for a fixed seed: timer ordering comes
from the event loop's sequence numbers and jitter from hashed-seed RNG
streams, never from global randomness.
"""

from __future__ import annotations

import itertools
import logging
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.network.transport import Clock, Transport
from repro.obs import get_registry, get_tracer

logger = logging.getLogger("repro.network.reliability")

#: Wire size of an acknowledgement frame (message id + MAC).
ACK_BYTES = 64

GiveUpHandler = Callable[[int, Any, str], None]
AckHandler = Callable[[int, Any], None]


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seed-derived jitter.

    ``backoff_s(attempt, seed, key)`` is a pure function: the same
    (policy, seed, key, attempt) always yields the same delay, so retry
    schedules replay exactly under a fixed scenario seed — jitter draws
    its own :class:`random.Random` stream and never touches shared RNGs.
    """

    #: Total send attempts (first try included).
    max_attempts: int = 4
    #: Backoff before the first retry.
    base_delay_s: float = 0.5
    #: Backoff growth factor per retry.
    multiplier: float = 2.0
    #: Fractional jitter: each delay is scaled by ``1 ± jitter_fraction``.
    jitter_fraction: float = 0.25
    #: How long to wait for an ack before declaring the attempt lost.
    attempt_timeout_s: float = 3.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.attempt_timeout_s <= 0:
            raise ValueError("delays must be non-negative, timeout positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff must not shrink)")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def backoff_s(self, attempt: int, seed: object, key: object) -> float:
        """Delay before retry number ``attempt`` (1-based) of message ``key``."""
        delay = self.base_delay_s * self.multiplier ** max(0, attempt - 1)
        if self.jitter_fraction:
            u = random.Random(f"{seed}/{key}/{attempt}").random()
            delay *= 1.0 + self.jitter_fraction * (2.0 * u - 1.0)
        return delay

    def schedule(self, seed: object, key: object) -> List[float]:
        """The full backoff schedule for one message (determinism tests)."""
        return [
            self.backoff_s(attempt, seed, key)
            for attempt in range(1, self.max_attempts)
        ]


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-destination circuit breaker (closed → open → half-open).

    ``failure_threshold`` consecutive failures open the circuit; after
    ``reset_timeout_s`` a single probe send is allowed (half-open).  A
    success closes the circuit again, another failure re-opens it.
    State transitions are counted for the reliability metrics.
    """

    def __init__(
        self, failure_threshold: int = 3, reset_timeout_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._state: Dict[int, str] = {}
        self._failures: Dict[int, int] = {}
        self._opened_at: Dict[int, float] = {}
        #: "closed->open" / "open->half-open" / "half-open->closed" /
        #: "half-open->open" counters.
        self.transitions: Dict[str, int] = {}

    def _transition(self, dest: int, new_state: str) -> None:
        old = self._state.get(dest, CLOSED)
        if old == new_state:
            return
        self._state[dest] = new_state
        key = f"{old}->{new_state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        get_registry().counter(f"reliability.circuit.{key}").inc()
        if new_state == OPEN:
            logger.debug("circuit to %s opened (%s)", dest, key)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit("circuit_open", dest=dest)

    def state_of(self, dest: int, now: Optional[float] = None) -> str:
        state = self._state.get(dest, CLOSED)
        if (
            state == OPEN
            and now is not None
            and now - self._opened_at.get(dest, 0.0) >= self.reset_timeout_s
        ):
            self._transition(dest, HALF_OPEN)
            return HALF_OPEN
        return state

    def allow(self, dest: int, now: float) -> bool:
        """Whether a send to ``dest`` may be attempted right now."""
        return self.state_of(dest, now) != OPEN

    def record_success(self, dest: int, now: float) -> None:
        self._failures[dest] = 0
        self._transition(dest, CLOSED)

    def record_failure(self, dest: int, now: float) -> None:
        state = self.state_of(dest, now)
        if state == HALF_OPEN:
            # The probe failed: straight back to open.
            self._opened_at[dest] = now
            self._transition(dest, OPEN)
            return
        count = self._failures.get(dest, 0) + 1
        self._failures[dest] = count
        if state == CLOSED and count >= self.failure_threshold:
            self._opened_at[dest] = now
            self._transition(dest, OPEN)


# ---------------------------------------------------------------------------
# failure detector
# ---------------------------------------------------------------------------
class FailureDetector:
    """Suspicion-based failure detection.

    Every missed ack (or failed probe) raises a peer's suspicion level by
    one; any observed delivery from the peer resets it.  Crossing
    ``suspicion_threshold`` declares the peer dead and fires ``on_dead``
    once; a later observed delivery revives it (and fires ``on_alive``).

    The detector is intentionally simple — an integer suspicion level per
    peer — because the simulation's epochs/timers already quantize time;
    what matters for the protocol is the *decision* ("this mirror is
    gone, replace it now"), which this emits deterministically.
    """

    def __init__(
        self,
        suspicion_threshold: int = 3,
        on_dead: Optional[Callable[[int], None]] = None,
        on_alive: Optional[Callable[[int], None]] = None,
    ) -> None:
        if suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be at least 1")
        self.suspicion_threshold = suspicion_threshold
        self.on_dead = on_dead
        self.on_alive = on_alive
        self._suspicion: Dict[int, int] = {}
        self._dead: Set[int] = set()
        self.deaths_declared = 0
        self.revivals = 0

    def suspicion_of(self, peer: int) -> int:
        return self._suspicion.get(peer, 0)

    def is_dead(self, peer: int) -> bool:
        return peer in self._dead

    def dead_peers(self) -> Set[int]:
        return set(self._dead)

    def record_failure(self, peer: int) -> bool:
        """Raise suspicion; returns True when ``peer`` is *newly* dead."""
        level = self._suspicion.get(peer, 0) + 1
        self._suspicion[peer] = level
        if level >= self.suspicion_threshold and peer not in self._dead:
            self._dead.add(peer)
            self.deaths_declared += 1
            self._note_death(peer, "suspicion-threshold")
            if self.on_dead is not None:
                self.on_dead(peer)
            return True
        return False

    @staticmethod
    def _note_death(peer: int, reason: str) -> None:
        get_registry().counter("reliability.deaths_declared").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("failure_declared", peer=peer, reason=reason)

    def record_success(self, peer: int) -> None:
        """An observed delivery: clear suspicion, revive if declared dead."""
        self._suspicion[peer] = 0
        if peer in self._dead:
            self._dead.discard(peer)
            self.revivals += 1
            get_registry().counter("reliability.revivals").inc()
            if self.on_alive is not None:
                self.on_alive(peer)

    def declare_dead(self, peer: int) -> bool:
        """Force-declare a peer dead (e.g. on direct evidence such as a
        storage probe answering without the replica)."""
        self._suspicion[peer] = max(
            self._suspicion.get(peer, 0), self.suspicion_threshold
        )
        if peer in self._dead:
            return False
        self._dead.add(peer)
        self.deaths_declared += 1
        self._note_death(peer, "direct-evidence")
        if self.on_dead is not None:
            self.on_dead(peer)
        return True


# ---------------------------------------------------------------------------
# acknowledged sends
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Envelope:
    """A reliably-sent payload: (origin, msg_id) identifies it for dedup."""

    msg_id: int
    origin: int
    attempt: int
    payload: Any


@dataclass(frozen=True)
class Ack:
    """Acknowledgement of one envelope."""

    msg_id: int


@dataclass
class ReliabilityStats:
    """Counters one endpoint (or an aggregate of endpoints) accumulates."""

    sent: int = 0
    acked: int = 0
    retries: int = 0
    timeouts: int = 0
    give_ups: int = 0
    circuit_blocked: int = 0
    duplicates_dropped: int = 0
    network_failures: int = 0

    def merge(self, other: "ReliabilityStats") -> "ReliabilityStats":
        for name in (
            "sent", "acked", "retries", "timeouts", "give_ups",
            "circuit_blocked", "duplicates_dropped", "network_failures",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self


@dataclass
class _PendingSend:
    """In-flight reliable send (one per msg_id until acked or given up)."""

    msg_id: int
    dest: int
    payload: Any
    size_bytes: int
    attempt: int = 0
    on_ack: Optional[AckHandler] = None
    on_giveup: Optional[GiveUpHandler] = None


class ReliableEndpoint:
    """Acknowledged, deduplicated delivery for one node.

    Wraps the node's plain network handler: register
    :meth:`handle_message` as the node's :class:`SimNetwork` handler and
    :meth:`handle_network_failure` as its failure handler, then send
    through :meth:`send_reliable`.  Plain (unwrapped) messages pass
    through untouched, so reliable and fire-and-forget traffic coexist on
    one handler.
    """

    def __init__(
        self,
        node_id: int,
        network: Transport,
        inner_handler: Callable[[int, Any], None],
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        detector: Optional[FailureDetector] = None,
        seed: object = 0,
        on_plain_failure: Optional[GiveUpHandler] = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.loop: Clock = network.loop
        self.inner_handler = inner_handler
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.detector = detector or FailureDetector()
        self.seed = seed
        self.on_plain_failure = on_plain_failure
        self.stats = ReliabilityStats()
        self._counter = itertools.count()
        self._pending: Dict[int, _PendingSend] = {}
        #: (origin, msg_id) pairs already delivered to the inner handler.
        self._delivered: Set[Tuple[int, int]] = set()

    # --- sending ----------------------------------------------------------
    def pending_count(self) -> int:
        return len(self._pending)

    def send_reliable(
        self,
        dest: int,
        payload: Any,
        size_bytes: int,
        on_ack: Optional[AckHandler] = None,
        on_giveup: Optional[GiveUpHandler] = None,
    ) -> Optional[int]:
        """Send with acks/retries; returns the msg id, or None if the
        destination's circuit is open (the send is not attempted)."""
        if not self.breaker.allow(dest, self.loop.now):
            self.stats.circuit_blocked += 1
            if on_giveup is not None:
                on_giveup(dest, payload, "circuit-open")
            return None
        msg_id = next(self._counter)
        state = _PendingSend(
            msg_id=msg_id,
            dest=dest,
            payload=payload,
            size_bytes=size_bytes,
            on_ack=on_ack,
            on_giveup=on_giveup,
        )
        self._pending[msg_id] = state
        self._attempt(state)
        return msg_id

    def _attempt(self, state: _PendingSend) -> None:
        if self._pending.get(state.msg_id) is not state:
            return  # acked or given up while a retry was queued
        envelope = Envelope(
            msg_id=state.msg_id,
            origin=self.node_id,
            attempt=state.attempt,
            payload=state.payload,
        )
        self.stats.sent += 1
        self.network.send(self.node_id, state.dest, envelope, state.size_bytes)
        # Measured *after* the send, the uplink backlog covers this frame's
        # own wire time plus everything queued ahead of it; add the path
        # estimate for the receiver leg and the returning ack.
        timeout = (
            self.policy.attempt_timeout_s
            + self.network.uplink_backlog_s(self.node_id)
            + self._transfer_estimate(state.dest, state.size_bytes)
        )
        attempt = state.attempt
        self.loop.schedule(timeout, lambda: self._check_ack(state, attempt))

    def _transfer_estimate(self, dest: int, size_bytes: int) -> float:
        """Expected wire time, so large transfers get proportionally longer
        ack timeouts (a 2 MB replica push is not 'lost' after 3 s)."""
        try:
            return self.network.transfer_time(self.node_id, dest, size_bytes)
        except KeyError:
            return 0.0

    def _check_ack(self, state: _PendingSend, attempt: int) -> None:
        if self._pending.get(state.msg_id) is not state or state.attempt != attempt:
            return  # acked, given up, or already retried via a network failure
        self.stats.timeouts += 1
        self._attempt_failed(state, "ack-timeout")

    def _attempt_failed(self, state: _PendingSend, reason: str) -> None:
        now = self.loop.now
        self.breaker.record_failure(state.dest, now)
        self.detector.record_failure(state.dest)
        retries_left = state.attempt + 1 < self.policy.max_attempts
        if not retries_left or not self.breaker.allow(state.dest, now):
            self._pending.pop(state.msg_id, None)
            self.stats.give_ups += 1
            get_registry().counter("reliability.giveups").inc()
            logger.debug(
                "giving up on msg %s to %s after %s attempts (%s)",
                state.msg_id, state.dest, state.attempt + 1, reason,
            )
            if state.on_giveup is not None:
                state.on_giveup(state.dest, state.payload, reason)
            return
        state.attempt += 1
        self.stats.retries += 1
        get_registry().counter("reliability.retries").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                "retry", kind="send", dest=state.dest,
                attempt=state.attempt + 1, reason=reason,
                msg_id=state.msg_id, t=now,
            )
        delay = self.policy.backoff_s(state.attempt, self.seed, state.msg_id)
        self.loop.schedule(delay, lambda: self._attempt(state))

    # --- receiving --------------------------------------------------------
    def handle_message(self, sender: int, message: Any) -> None:
        """Network handler: unwrap envelopes, ack, dedup, deliver."""
        if isinstance(message, Ack):
            state = self._pending.pop(message.msg_id, None)
            if state is not None:
                self.stats.acked += 1
                self.breaker.record_success(state.dest, self.loop.now)
                self.detector.record_success(state.dest)
                if state.on_ack is not None:
                    state.on_ack(state.dest, state.payload)
            return
        if isinstance(message, Envelope):
            # Ack every copy — the origin may have missed the first ack.
            self.network.send(self.node_id, sender, Ack(message.msg_id), ACK_BYTES)
            key = (message.origin, message.msg_id)
            if key in self._delivered:
                self.stats.duplicates_dropped += 1
                return
            self._delivered.add(key)
            self.detector.record_success(message.origin)
            self.inner_handler(message.origin, message.payload)
            return
        # Plain traffic: any delivery is evidence the sender is alive.
        self.detector.record_success(sender)
        self.inner_handler(sender, message)

    def handle_network_failure(self, dest: int, message: Any, reason: str) -> None:
        """SimNetwork failure handler: immediate nack for envelopes, an
        observation (plus optional passthrough) for everything else."""
        self.stats.network_failures += 1
        if isinstance(message, Envelope):
            state = self._pending.get(message.msg_id)
            if state is not None and state.attempt == message.attempt:
                self._attempt_failed(state, reason)
            return
        self.detector.record_failure(dest)
        if self.on_plain_failure is not None:
            self.on_plain_failure(dest, message, reason)
