"""Simulated network substrate.

SOUP nodes communicate over direct channels established after a DHT lookup
(Sec. 3.6).  This package provides the machinery the node middleware and
the deployment emulation run on:

* :mod:`repro.network.events` — a discrete-event loop (heap scheduler).
* :mod:`repro.network.simnet` — the network itself: per-node links with
  latency and bandwidth, message delivery to registered handlers, loss for
  offline nodes, and per-node traffic meters that produce the KB/s series
  of Figs. 14a/14b/15.
"""

from repro.network.events import EventLoop
from repro.network.simnet import DeliveryFailure, LinkSpec, SimNetwork, TrafficMeter

__all__ = [
    "EventLoop",
    "DeliveryFailure",
    "LinkSpec",
    "SimNetwork",
    "TrafficMeter",
]
