"""Network substrate: the transport seam and its backends.

SOUP nodes communicate over direct channels established after a DHT lookup
(Sec. 3.6).  This package provides the machinery the node middleware and
the deployment emulation run on:

* :mod:`repro.network.transport` — the :class:`Transport` seam (links,
  membership, traffic meters, chaos primitives) both backends implement.
* :mod:`repro.network.events` — a discrete-event loop (heap scheduler).
* :mod:`repro.network.simnet` — the deterministic simulated backend:
  per-node links with latency and bandwidth, message delivery to
  registered handlers, loss for offline nodes, and per-node traffic
  meters that produce the KB/s series of Figs. 14a/14b/15.

The live asyncio backend lives in :mod:`repro.deploy.live` (it needs the
deployment layer, so it is not imported here).
"""

from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.network.transport import (
    Clock,
    DeliveryFailure,
    LinkSpec,
    TrafficMeter,
    Transport,
)

__all__ = [
    "Clock",
    "EventLoop",
    "DeliveryFailure",
    "LinkSpec",
    "SimNetwork",
    "TrafficMeter",
    "Transport",
]
