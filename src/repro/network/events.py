"""A minimal discrete-event loop.

Events are ``(time, sequence, callback)`` triples on a heap; the sequence
number makes ordering deterministic for simultaneous events.  The loop is
deliberately tiny — everything interesting lives in the models scheduled on
top of it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.obs.profiling import PROFILER


class EventLoop:
    """Deterministic discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []

    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when``."""
        self.schedule(when - self._now, callback)

    def pending(self) -> int:
        return len(self._queue)

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Process events up to ``end_time``; returns the number processed.

        ``max_events`` guards against runaway feedback loops in tests.
        """
        # The network-flush phase: draining scheduled deliveries is the
        # event-loop world's hot path, so it gets a timer of its own
        # (deliveries nest under it as net.flush;net.deliver).
        if PROFILER.enabled:
            with PROFILER.span("net.flush"):
                return self._run_until(end_time, max_events)
        return self._run_until(end_time, max_events)

    def _run_until(self, end_time: float, max_events: Optional[int]) -> int:
        processed = 0
        while self._queue and self._queue[0][0] <= end_time:
            if max_events is not None and processed >= max_events:
                break
            when, _, callback = heapq.heappop(self._queue)
            self._now = max(self._now, when)
            callback()
            processed += 1
        self._now = max(self._now, end_time)
        return processed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        processed = 0
        while self._queue and processed < max_events:
            when, _, callback = heapq.heappop(self._queue)
            self._now = max(self._now, when)
            callback()
            processed += 1
        return processed
