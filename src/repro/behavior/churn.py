"""Join schedules and departure events.

"To bootstrap, nodes join our experiments asynchronously according to their
online probability" (Sec. 5.1): highly available nodes tend to appear early,
rarely-online nodes trickle in.  Fig. 9 additionally removes the top-d
fraction of nodes (by online time) at a chosen instant to test resilience.
"""

from __future__ import annotations

from typing import List

import numpy as np


def join_epochs(
    online_probabilities: np.ndarray,
    join_window_epochs: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample each node's join epoch within the bootstrap window.

    Join time is geometric-like in the node's online probability: each epoch
    of the window, a node that has not joined yet joins with its online
    probability (it joins the first time it would have been online).  Nodes
    that never fire join at the end of the window.
    """
    if join_window_epochs <= 0:
        raise ValueError("join window must be positive")
    p = np.clip(np.asarray(online_probabilities, dtype=float), 1e-4, 1.0)
    n = len(p)
    # Inverse-CDF of the geometric distribution, capped at the window end.
    u = rng.random(n)
    epochs = np.floor(np.log1p(-u) / np.log1p(-np.minimum(p, 0.999))).astype(int)
    return np.minimum(epochs, join_window_epochs - 1)


def top_online_nodes(online_probabilities: np.ndarray, fraction: float) -> List[int]:
    """The ids of the top ``fraction`` of nodes by online probability.

    These are the nodes removed in the Fig. 9 mass-departure experiment
    ("the top 5% of nodes in terms of online time leave simultaneously").
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    p = np.asarray(online_probabilities, dtype=float)
    count = max(1, int(round(len(p) * fraction)))
    order = np.argsort(-p, kind="stable")
    return [int(i) for i in order[:count]]
