"""Storage-capacity model (paper Sec. 5.1).

"The storage space available at each node follows a Gaussian distribution,
with a median of space for mirroring data of 50 users" — which Sec. 7
measures at under half a gigabyte of disk.
"""

from __future__ import annotations

import numpy as np


def sample_capacities(
    n: int,
    rng: np.random.Generator,
    median_profiles: float = 50.0,
    sigma_profiles: float = 15.0,
    min_profiles: float = 5.0,
) -> np.ndarray:
    """Sample per-node storage capacities in profile units.

    Gaussian around the paper's median of 50, truncated below at
    ``min_profiles`` so every node can mirror at least a handful of users.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if median_profiles <= 0 or sigma_profiles < 0:
        raise ValueError("capacity parameters must be positive")
    capacities = rng.normal(median_profiles, sigma_profiles, size=n)
    return np.maximum(capacities, min_profiles)
