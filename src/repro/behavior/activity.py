"""Exponentially decaying user activity (paper Sec. 5.1).

"After an initial phase of high interaction once joining an OSN, a user's
activity decreases exponentially to become less than one interaction per
day."  The paper stresses this is the *worst observed case* for SOUP, since
nodes must contact others to learn about mirror candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ActivityModel:
    """Interaction-rate model: ``rate(age) = floor + (peak-floor)·e^(−λ·age)``.

    ``peak_per_day`` is the join-time burst; ``floor_per_day`` the long-run
    rate (below one per day, per the paper); ``decay_per_day`` is λ.
    """

    peak_per_day: float = 20.0
    floor_per_day: float = 0.5
    decay_per_day: float = 0.35

    def __post_init__(self) -> None:
        if self.peak_per_day < self.floor_per_day:
            raise ValueError("peak rate must be at least the floor rate")
        if self.floor_per_day < 0 or self.decay_per_day < 0:
            raise ValueError("rates must be non-negative")

    def rate_per_day(self, age_days: float) -> float:
        """Expected interactions per day at the given account age."""
        if age_days < 0:
            raise ValueError(f"age cannot be negative, got {age_days}")
        return self.floor_per_day + (
            self.peak_per_day - self.floor_per_day
        ) * float(np.exp(-self.decay_per_day * age_days))

    def rates_per_day(self, ages_days: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate_per_day` over node ages."""
        ages = np.asarray(ages_days, dtype=float)
        if np.any(ages < 0):
            raise ValueError("ages cannot be negative")
        return self.floor_per_day + (
            self.peak_per_day - self.floor_per_day
        ) * np.exp(-self.decay_per_day * ages)

    def sample_interactions(
        self, ages_days: np.ndarray, epoch_days: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw the number of interactions each node makes in one epoch.

        Interactions arrive as a Poisson process at the age-dependent rate.
        """
        if epoch_days <= 0:
            raise ValueError(f"epoch_days must be positive, got {epoch_days}")
        return rng.poisson(self.rates_per_day(ages_days) * epoch_days)
