"""User behaviour models for the SOUP evaluation (paper Sec. 5.1).

* :mod:`repro.behavior.online` — power-law node online probabilities
  ("around 60 % of the nodes are available less than 20 % of the time, and
  there are only very few highly available nodes"), diurnal patterns over
  three time zones (US 0.4 / Europe-Africa 0.3 / Asia-Oceania 0.3), and the
  bursty two-state session process that populates the online-time matrix.
* :mod:`repro.behavior.activity` — exponentially decreasing user activity
  after join, decaying "to become less than one interaction per day".
* :mod:`repro.behavior.churn` — asynchronous joins driven by online
  probability, plus mass-departure events (Fig. 9).
* :mod:`repro.behavior.capacity` — Gaussian storage space with a median of
  50 mirrored profiles.
"""

from repro.behavior.activity import ActivityModel
from repro.behavior.capacity import sample_capacities
from repro.behavior.churn import join_epochs, top_online_nodes
from repro.behavior.online import (
    TIMEZONE_OFFSETS,
    TIMEZONE_PROBABILITIES,
    OnlineModel,
    sample_online_probabilities,
    sample_timezones,
)

__all__ = [
    "ActivityModel",
    "sample_capacities",
    "join_epochs",
    "top_online_nodes",
    "TIMEZONE_OFFSETS",
    "TIMEZONE_PROBABILITIES",
    "OnlineModel",
    "sample_online_probabilities",
    "sample_timezones",
]
