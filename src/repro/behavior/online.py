"""Node online-time model: power-law probabilities, diurnal patterns, sessions.

The paper's assumptions (Sec. 5.1):

* online time follows a power law — "around 60% of the nodes are available
  less than 20% of the time, and there are only very few highly available
  nodes";
* diurnal patterns over three time zones — US (probability 0.4), Europe and
  Africa (0.3), Asia and Oceania (0.3);
* sessions are "usually short and bursty", which the two-state Markov
  session process reproduces (the power-law marginal is the chain's
  stationary distribution; the mean session length sets burstiness).

:class:`OnlineModel` materializes an ``(n_nodes, n_epochs)`` boolean online
matrix from these ingredients, which is the ground truth the simulator uses
for "is node x online at time t".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Local-time offsets (hours from simulation UTC) of the paper's three zones.
TIMEZONE_OFFSETS = (-6, 1, 8)
#: Probability of a node belonging to each zone (US, EU/Africa, Asia/Oceania).
TIMEZONE_PROBABILITIES = (0.4, 0.3, 0.3)

#: 24-hour activity profile: quiet at night, peak in the local evening.
_RAW_DIURNAL = np.array(
    [0.3, 0.25, 0.2, 0.2, 0.2, 0.25, 0.4, 0.6,  # 00-07 local
     0.9, 1.0, 1.0, 1.1, 1.2, 1.1, 1.0, 1.0,    # 08-15
     1.2, 1.4, 1.7, 1.9, 1.9, 1.7, 1.2, 0.7]    # 16-23
)
DIURNAL_PROFILE = _RAW_DIURNAL / _RAW_DIURNAL.mean()


def sample_online_probabilities(
    n: int,
    rng: np.random.Generator,
    low_fraction: float = 0.6,
    split: float = 0.2,
    p_min: float = 0.02,
    tail_exponent: float = 1.0,
) -> np.ndarray:
    """Sample per-node base online probabilities.

    ``low_fraction`` of nodes land log-uniformly in ``[p_min, split)`` (the
    rarely-online majority); the rest follow a truncated Pareto on
    ``[split, 1]`` with ``tail_exponent`` — heavier exponents mean fewer
    highly available nodes.  Defaults reproduce the paper's "60 % below
    20 %" with ~1-2 % of nodes above 0.8.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    is_low = rng.random(n) < low_fraction
    probabilities = np.empty(n)

    # Log-uniform on [p_min, split): power-law-distributed low-activity mass.
    low_count = int(is_low.sum())
    u = rng.random(low_count)
    probabilities[is_low] = np.exp(
        np.log(p_min) + u * (np.log(split) - np.log(p_min))
    )

    # Truncated Pareto on [split, 1] for the active minority.
    high_count = n - low_count
    u = rng.random(high_count)
    a = tail_exponent
    # Inverse CDF of Pareto truncated to [split, 1].
    low_pow, high_pow = split**a, 1.0
    probabilities[~is_low] = (
        low_pow / (1.0 - u * (1.0 - low_pow / high_pow))
    ) ** (1.0 / a)
    return np.clip(probabilities, p_min, 1.0)


def sample_timezones(n: int, rng: np.random.Generator) -> np.ndarray:
    """Assign each node a time-zone offset per the paper's 0.4/0.3/0.3 mix."""
    choices = rng.choice(len(TIMEZONE_OFFSETS), size=n, p=TIMEZONE_PROBABILITIES)
    return np.array(TIMEZONE_OFFSETS)[choices]


@dataclass
class OnlineModel:
    """Generates the per-epoch online matrix for a node population.

    ``base_probabilities`` are the long-run online fractions; nodes with
    base probability >= ``always_online_threshold`` (altruistic servers) are
    pinned online for every epoch.
    """

    base_probabilities: np.ndarray
    timezone_offsets: np.ndarray
    epoch_hours: float = 1.0
    mean_session_epochs: float = 3.0
    always_online_threshold: float = 0.999

    def __post_init__(self) -> None:
        self.base_probabilities = np.asarray(self.base_probabilities, dtype=float)
        self.timezone_offsets = np.asarray(self.timezone_offsets, dtype=int)
        if self.base_probabilities.shape != self.timezone_offsets.shape:
            raise ValueError("probabilities and timezones must align")
        if np.any((self.base_probabilities < 0) | (self.base_probabilities > 1)):
            raise ValueError("base probabilities must lie in [0, 1]")
        if self.mean_session_epochs < 1:
            raise ValueError("mean session length must be >= 1 epoch")

    @property
    def n_nodes(self) -> int:
        return len(self.base_probabilities)

    def epoch_probabilities(self, epoch: int) -> np.ndarray:
        """Diurnally modulated target online probability for one epoch.

        Modulation strength scales with how rarely a node is online: a
        p=0.1 user follows the full day/night rhythm, while a p=0.95 node
        is an always-on machine that barely notices the hour.  (Without
        this, no node could ever be online through the night and even a
        perfect mirror set would go dark once a day.)
        """
        hours = epoch * self.epoch_hours
        local_hours = (np.floor(hours).astype(int) + self.timezone_offsets) % 24
        weight = 1.0 - self.base_probabilities
        factor = DIURNAL_PROFILE[local_hours] ** weight
        modulated = self.base_probabilities * factor
        return np.clip(modulated, 0.0, 0.98)

    def generate_matrix(
        self, n_epochs: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Simulate the two-state session chain over ``n_epochs``.

        Off→on rate ``a_t`` is chosen so the chain's stationary distribution
        tracks the (diurnal) target probability while the on→off rate
        ``1/mean_session`` keeps sessions short and bursty.
        """
        if n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        n = self.n_nodes
        matrix = np.zeros((n, n_epochs), dtype=bool)
        always_on = self.base_probabilities >= self.always_online_threshold

        leave_rate = 1.0 / self.mean_session_epochs
        state = rng.random(n) < self.epoch_probabilities(0)
        state |= always_on
        matrix[:, 0] = state
        for t in range(1, n_epochs):
            target = self.epoch_probabilities(t)
            join_rate = np.clip(
                leave_rate * target / np.maximum(1.0 - target, 1e-9), 0.0, 1.0
            )
            u = rng.random(n)
            stays_on = state & (u >= leave_rate)
            turns_on = ~state & (u < join_rate)
            state = stays_on | turns_on | always_on
            matrix[:, t] = state
        return matrix
