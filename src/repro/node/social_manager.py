"""Social Manager: friend relationships and the requests that form them.

"The Social Manager module is responsible for processing requests when an
object indicates a change to the social data" (Sec. 6).  Establishing a
friendship also exchanges ABE attribute keys, so friends can decrypt each
other's data afterwards (Sec. 3.4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.node.security_manager import SecurityManager


class SocialManager:
    """Friend list and friendship-request processing for one node."""

    def __init__(self, owner_id: int, security: SecurityManager) -> None:
        self.owner_id = owner_id
        self._security = security
        self._friends: Set[int] = set()
        self._pending_outgoing: Set[int] = set()
        self._pending_incoming: Set[int] = set()
        #: Observers notified on every friendship change (applications).
        self._listeners: List[Callable[[int], None]] = []

    # --- state ------------------------------------------------------------
    def friends(self) -> List[int]:
        return sorted(self._friends)

    def is_friend(self, node_id: int) -> bool:
        return node_id in self._friends

    def friend_count(self) -> int:
        return len(self._friends)

    def on_friendship(self, listener: Callable[[int], None]) -> None:
        self._listeners.append(listener)

    # --- protocol -----------------------------------------------------------
    def initiate_request(self, target_id: int) -> None:
        """Record an outgoing friend request."""
        if target_id == self.owner_id:
            raise ValueError("cannot befriend oneself")
        if target_id not in self._friends:
            self._pending_outgoing.add(target_id)

    def receive_request(self, from_id: int) -> None:
        """Record an incoming friend request (application decides later)."""
        if from_id != self.owner_id and from_id not in self._friends:
            self._pending_incoming.add(from_id)

    def pending_incoming(self) -> List[int]:
        return sorted(self._pending_incoming)

    def accept_request(self, from_id: int):
        """Accept an incoming request; returns the attribute key to send.

        The accepting side grants the "friend" attribute so the new friend
        can decrypt the default-policy data.
        """
        if from_id not in self._pending_incoming:
            raise LookupError(f"no pending request from {from_id:#x}")
        self._pending_incoming.discard(from_id)
        self._establish(from_id)
        return self._security.issue_attribute_key(["friend"])

    def confirm_accepted(self, by_id: int):
        """The requester learns its request was accepted; issues its own
        attribute key in return (friendship grants are mutual)."""
        self._pending_outgoing.discard(by_id)
        self._establish(by_id)
        return self._security.issue_attribute_key(["friend"])

    def _establish(self, node_id: int) -> None:
        if node_id in self._friends:
            return
        self._friends.add(node_id)
        for listener in self._listeners:
            listener(node_id)
