"""Security Manager: "deals with all encryption-related tasks" (Sec. 6).

Holds the user's identity keys and her ABE authority; signs and verifies
SOUP objects; encrypts profile replicas under the user's access policy and
issues attribute keys to contacts the user grants attributes to.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.objects import SoupObject
from repro.crypto import rsa
from repro.crypto.abe import AbeAuthority, AbeCiphertext, AbePrivateKey, decrypt as abe_decrypt
from repro.crypto.access import AccessStructure, attr
from repro.crypto.by_id import sign_by_id, verify_by_id
from repro.crypto.keys import KeyPair
from repro.obs.profiling import PROFILER


class SecurityManager:
    """All cryptographic state and operations of one SOUP node.

    ``crypto_mode`` selects the signature scheme: ``"full"`` runs real
    textbook-RSA sign/verify; ``"by_id"`` simulates signatures by
    (signer ID, digest), skipping the modular exponentiation — for
    scenarios that do not attack the signature scheme itself (see
    :mod:`repro.crypto.by_id`).  Either way an object forged with
    someone else's source ID fails verification.
    """

    #: Default access policy: data readable by anyone granted "friend".
    DEFAULT_POLICY = attr("friend")

    def __init__(
        self,
        keys: KeyPair,
        master_secret: Optional[bytes] = None,
        crypto_mode: str = "full",
    ) -> None:
        if crypto_mode not in ("full", "by_id"):
            raise ValueError(
                f"crypto_mode must be 'full' or 'by_id', got {crypto_mode!r}"
            )
        self.keys = keys
        self.crypto_mode = crypto_mode
        self.authority = AbeAuthority(
            master_secret=master_secret,
            authority_id=f"{keys.soup_id:016x}",
        )
        #: Attribute keys received from other users, by their SOUP ID.
        self._received_keys: Dict[int, AbePrivateKey] = {}
        #: Public keys of known users, learned from directory entries.
        self._known_public_keys: Dict[int, rsa.RsaPublicKey] = {}

    # --- signatures ---------------------------------------------------
    def sign_object(self, obj: SoupObject) -> SoupObject:
        """Attach the owner's signature; "requests to modify any data must
        be encapsulated in an appropriately signed SOUP object"."""
        if PROFILER.enabled:
            with PROFILER.span("crypto.sign"):
                return self._sign_object(obj)
        return self._sign_object(obj)

    def _sign_object(self, obj: SoupObject) -> SoupObject:
        if self.crypto_mode == "by_id":
            obj.signature = sign_by_id(obj.signing_bytes(), self.keys.soup_id)
        else:
            obj.signature = rsa.sign(obj.signing_bytes(), self.keys.private)
        return obj

    def verify_object(self, obj: SoupObject) -> bool:
        """Verify a received object against the sender's known public key.

        Unknown senders cannot be verified; the object is rejected, which
        is the conservative behaviour the paper requires ("will otherwise
        be discarded").  In ``by_id`` mode the directory-resolution
        requirement is unchanged — the source's public key must still be
        known — and the signature must embed the source's own ID, so
        forged-source objects are rejected in both modes.
        """
        if PROFILER.enabled:
            with PROFILER.span("crypto.verify"):
                return self._verify_object(obj)
        return self._verify_object(obj)

    def _verify_object(self, obj: SoupObject) -> bool:
        if obj.signature is None:
            return False
        public_key = self._known_public_keys.get(obj.source)
        if public_key is None:
            return False
        if self.crypto_mode == "by_id":
            return verify_by_id(obj.signing_bytes(), obj.signature, obj.source)
        if not isinstance(obj.signature, int):
            # A by_id tuple is never acceptable to a full-crypto verifier.
            return False
        return rsa.verify(obj.signing_bytes(), obj.signature, public_key)

    def learn_public_key(self, soup_id: int, public_key: rsa.RsaPublicKey) -> None:
        self._known_public_keys[soup_id] = public_key

    def knows_public_key(self, soup_id: int) -> bool:
        return soup_id in self._known_public_keys

    # --- ABE ----------------------------------------------------------------
    def encrypt_replica(
        self, plaintext: bytes, policy: Optional[AccessStructure] = None
    ) -> AbeCiphertext:
        """Encrypt profile data for replication; mirrors cannot read it."""
        return self.authority.encrypt(plaintext, policy or self.DEFAULT_POLICY)

    def issue_attribute_key(self, attributes) -> AbePrivateKey:
        """Issue an attribute key (e.g. to a new friend)."""
        return self.authority.issue_key(attributes)

    def receive_attribute_key(self, from_id: int, key: AbePrivateKey) -> None:
        self._received_keys[from_id] = key

    def decrypt_from(self, owner_id: int, ciphertext: AbeCiphertext) -> bytes:
        """Decrypt another user's data with the key she issued us."""
        key = self._received_keys.get(owner_id)
        if key is None:
            from repro.crypto.abe import AbeError

            raise AbeError(f"no attribute key from user {owner_id:#x}")
        return abe_decrypt(ciphertext, key)

    def can_decrypt_from(self, owner_id: int) -> bool:
        return owner_id in self._received_keys
