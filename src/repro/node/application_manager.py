"""Application Manager: the middleware's interface to SOUP applications.

"It allows arbitrary social applications to run on top of the SOUP
middleware and enables communication between applications transparent to
the middleware itself" (Sec. 6).  Applications register callbacks per
object type; outbound content is encapsulated into SOUP objects, inbound
objects are decapsulated and dispatched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.objects import ObjectType, SoupObject

AppCallback = Callable[[SoupObject], None]


class ApplicationManager:
    """Callback registry and encapsulation layer for one node."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._callbacks: Dict[ObjectType, List[AppCallback]] = {}
        #: Objects delivered to applications, newest last (demo clients use
        #: this as their inbox).
        self.inbox: List[SoupObject] = []

    def register(self, object_type: ObjectType, callback: AppCallback) -> None:
        """Subscribe an application to incoming objects of a type."""
        self._callbacks.setdefault(object_type, []).append(callback)

    def encapsulate(
        self, dest: int, object_type: ObjectType, payload: Any, timestamp: float
    ) -> SoupObject:
        """Wrap application content into a SOUP object."""
        return SoupObject(
            source=self.owner_id,
            dest=dest,
            object_type=object_type,
            payload=payload,
            timestamp=timestamp,
        )

    def deliver(self, obj: SoupObject) -> None:
        """Decapsulate an inbound object and notify subscribed apps."""
        self.inbox.append(obj)
        for callback in self._callbacks.get(obj.object_type, []):
            callback(obj)

    def messages_received(self) -> List[SoupObject]:
        return [o for o in self.inbox if o.object_type is ObjectType.MESSAGE]
