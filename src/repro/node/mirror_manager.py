"""Mirror Manager: selection, replica pushes, and mirroring for others.

"The Mirror Manager module is responsible for the selection of mirrors.  A
node needs to push any change of its data to its mirrors, and it also needs
to manage the data that it mirrors for others" (Sec. 6).  This wraps the
:mod:`repro.core` machinery — knowledge base, experience sets, rankers,
Algorithm 1, protective dropping — for one protocol-level node.
"""

from __future__ import annotations

import logging
import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.obs import get_registry, get_tracer

logger = logging.getLogger("repro.node.mirror_manager")

from repro.core.config import SoupConfig
from repro.core.dropping import ReplicaStore, StoreDecision
from repro.core.experience import ExperienceReport, ExperienceSet
from repro.core.knowledge import KnowledgeBase
from repro.core.ranking import BootstrapRanker, Recommendation, RegularRanker
from repro.core.selection import SelectionResult, select_mirrors
from repro.node.devices import UpdateLog
from repro.node.sync import PendingUpdate, UpdateBuffer


class MirrorManager:
    """Mirror-selection state and replica storage of one SOUP node."""

    def __init__(
        self,
        owner_id: int,
        config: SoupConfig,
        capacity_profiles: float,
        rng: random.Random,
        mirroring_enabled: bool = True,
    ) -> None:
        self.owner_id = owner_id
        self.config = config
        self.rng = rng
        #: Mobile nodes disable mirroring by default (Sec. 7) but still
        #: select mirrors for their own data.
        self.mirroring_enabled = mirroring_enabled

        self.knowledge = KnowledgeBase(owner=owner_id, default_ttl=config.kb_ttl)
        self.bootstrap = BootstrapRanker(config)
        self.ranker = RegularRanker(self.knowledge, config)
        self.store = ReplicaStore(owner_id, capacity_profiles, config)
        self.update_buffer = UpdateBuffer(
            max_per_target=config.update_buffer_cap or None
        )
        #: Retained per-owner update logs for multi-device sync (Sec. 3.5).
        self.update_logs: Dict[int, UpdateLog] = {}

        self.experience_sets: Dict[int, ExperienceSet] = {}
        self.pending_reports: List[ExperienceReport] = []
        self.selected_mirrors: List[int] = []
        self.announced_mirrors: List[int] = []
        self.rejected_by: Set[int] = set()
        self.has_experience = False
        #: Mirrors the failure detector has declared dead: excluded from
        #: selection until an observed delivery revives them.
        self.dead_mirrors: Set[int] = set()
        #: Proactive-repair bookkeeping (PROTOCOL.md "Reliability & repair").
        self.repairs_triggered = 0
        self.repair_replacements = 0
        #: ε estimate of the last committed set — > config.epsilon means we
        #: are running on a *partial* mirror set (candidates exhausted).
        self.last_estimated_error: Optional[float] = None
        #: Erasure-coded placement of a large profile (Sec. 8 extension);
        #: None while the profile is replicated in full.
        self.coded_plan = None
        #: Optional :class:`repro.arch.MirrorSelectionStrategy` installed by
        #: the deployment; ``None`` keeps the paper-faithful Algorithm 1.
        self.selection_strategy = None

    # --- knowledge -----------------------------------------------------
    def learn_node(self, node_id: int, is_friend: bool = False) -> None:
        if node_id != self.owner_id:
            self.knowledge.add_node(node_id, is_friend=is_friend)

    def set_friend(self, node_id: int) -> None:
        self.knowledge.set_friend(node_id)

    def receive_recommendations(self, recommendations: Iterable[Recommendation]) -> None:
        if not self.has_experience:
            self.bootstrap.add_recommendations(recommendations)

    def recommendations_for(self, requester: int) -> List[Recommendation]:
        """Suggest "the set of mirrors that works well for itself" with the
        quality the owner has measured (Sec. 4.3)."""
        return [
            Recommendation(
                recommender=self.owner_id,
                mirror=mirror,
                quality=self.knowledge.experience_of(mirror) or None,
            )
            for mirror in self.announced_mirrors
            if mirror != requester
        ]

    # --- experience ----------------------------------------------------------
    def experience_set_for(self, friend: int) -> ExperienceSet:
        es = self.experience_sets.get(friend)
        if es is None:
            es = ExperienceSet(observed_friend=friend)
            self.experience_sets[friend] = es
        return es

    def observe_mirror(self, friend: int, mirror: int, success: bool) -> None:
        self.experience_set_for(friend).observe(mirror, success)

    def drain_reports_for(self, friend: int) -> List[ExperienceReport]:
        es = self.experience_sets.get(friend)
        if es is None or len(es) == 0:
            return []
        return es.drain(self.owner_id, self.config.o_max)

    def receive_reports(self, reports: Iterable[ExperienceReport]) -> None:
        self.pending_reports.extend(reports)

    def ingest_pending_reports(self) -> int:
        if not self.pending_reports:
            return 0
        count = len(self.pending_reports)
        self.ranker.ingest_reports(self.pending_reports)
        self.pending_reports.clear()
        self.has_experience = True
        return count

    # --- selection -------------------------------------------------------------
    def build_ranking(self, friends: Iterable[int]) -> List[Tuple[int, float]]:
        """Candidate ranking: experience, then recommendations, then the
        bootstrap prior for every other known contact."""
        ranking = [
            (candidate, rank)
            for candidate, rank in self.ranker.ranking()
            if rank > 0.0
        ]
        known = {candidate for candidate, _ in ranking}
        for candidate, rank in self.bootstrap.ranking():
            if candidate not in known:
                ranking.append((candidate, rank))
                known.add(candidate)
        prior = self.config.bootstrap_prior
        ranking += [
            (entry.node_id, prior)
            for entry in self.knowledge
            if entry.node_id not in known
        ]
        return ranking

    def run_selection(self, exclude: Iterable[int] = ()) -> SelectionResult:
        """Run Algorithm 1 over the current ranking."""
        excluded = (
            {self.owner_id} | set(exclude) | self.rejected_by | self.dead_mirrors
        )
        if self.selection_strategy is None:
            result = select_mirrors(
                ranking=self.build_ranking(self.knowledge.friends()),
                friends=self.knowledge.friends(),
                config=self.config,
                rng=self.rng,
                exploration_pool=self.knowledge.unranked_nodes(),
                exclude=excluded,
            )
        else:
            result = self.selection_strategy.select(
                self.owner_id,
                self.build_ranking(self.knowledge.friends()),
                self.knowledge.friends(),
                self.config,
                self.rng,
                exploration_pool=self.knowledge.unranked_nodes(),
                exclude=excluded,
            )
        self.rejected_by.clear()
        self.selected_mirrors = list(result.mirrors)
        self.last_estimated_error = result.estimated_error
        registry = get_registry()
        registry.counter("node.selection.runs").inc()
        if result.estimated_error is not None:
            registry.histogram(
                "node.selection.error", buckets=(0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
            ).observe(result.estimated_error)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                "mirror_selected",
                owner=self.owner_id,
                mirrors=list(result.mirrors),
                estimated_error=result.estimated_error,
            )
        return result

    # --- reliability / proactive repair ---------------------------------------
    def mark_mirror_dead(self, mirror_id: int) -> bool:
        """Record a failure-detector verdict; True if the dead node is in
        the announced set (i.e. a repair is warranted)."""
        self.dead_mirrors.add(mirror_id)
        return mirror_id in self.announced_mirrors

    def mark_mirror_alive(self, mirror_id: int) -> None:
        self.dead_mirrors.discard(mirror_id)

    def has_partial_set(self) -> bool:
        """Whether the last selection fell short of the ε target (candidate
        pool exhausted — the set is committed anyway, degraded)."""
        return (
            self.last_estimated_error is not None
            and self.last_estimated_error > self.config.epsilon
        )

    def commit_mirrors(self, accepted: List[int]) -> None:
        """Record the mirror set that actually accepted our replicas."""
        self.announced_mirrors = list(accepted)
        self.knowledge.mark_mirrors(iter(accepted))
        self.knowledge.decay_ttls()
        if self.selection_strategy is not None:
            self.selection_strategy.on_commit(self.owner_id, list(accepted), 0)

    # --- storage for others ---------------------------------------------------
    def handle_store_request(
        self, owner: int, size_profiles: float, is_friend: bool
    ) -> StoreDecision:
        if not self.mirroring_enabled:
            return StoreDecision(accepted=False, reason="mirroring disabled")
        decision = self.store.request_store(
            owner, size_profiles=size_profiles, is_friend=is_friend
        )
        if decision.dropped_owner is not None:
            get_registry().counter("node.replicas.evicted").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    "replica_dropped",
                    owner=decision.dropped_owner,
                    mirror=self.owner_id,
                    reason="capacity",
                )
        return decision

    def handle_withdraw(self, owner: int) -> bool:
        self.update_logs.pop(owner, None)
        return self.store.remove(owner)

    # --- multi-device update log (Sec. 3.5) -----------------------------------
    def record_owner_update(self, owner: int, update: PendingUpdate) -> bool:
        """Retain an owner's update so any of her devices can replay it."""
        log = self.update_logs.get(owner)
        if log is None:
            log = UpdateLog()
            self.update_logs[owner] = log
        return log.append(update)

    def update_log_for(self, owner: int) -> Optional[UpdateLog]:
        return self.update_logs.get(owner)

    # --- correctness ----------------------------------------------------------
    def verify_invariants(self, epoch: int = -1) -> None:
        """Check this node's local protocol invariants.

        Raises :class:`repro.sim.invariants.InvariantViolation` if the
        replica store exceeds its capacity, holds a blacklisted owner's
        replica, or the announced mirror set is not a subset of the last
        selection.  Used by the runtime checker and the test harness.
        """
        from repro.sim.invariants import check_mirror_manager

        check_mirror_manager(self, epoch=epoch)
