"""User profiles: the data SOUP replicates.

A profile is a set of data items (posts, messages, photos, videos) with
realistic sizes.  The Sec. 7 measurements inform the size model: "More than
35 % of all items are less than 10 KB in size, and 93 % — including most
images — are less than 100 KB", the average profile is ~10 MB, and large
items (videos, big albums) are rare.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

_item_counter = itertools.count()


@dataclass
class DataItem:
    """One item of user data."""

    item_id: int
    kind: str  # "text" | "photo" | "video" | "message"
    size_bytes: int
    created_at: float = 0.0

    @classmethod
    def text(cls, size_bytes: int = 2_000, created_at: float = 0.0) -> "DataItem":
        return cls(next(_item_counter), "text", size_bytes, created_at)

    @classmethod
    def photo(cls, size_bytes: int = 80_000, created_at: float = 0.0) -> "DataItem":
        return cls(next(_item_counter), "photo", size_bytes, created_at)

    @classmethod
    def video(cls, size_bytes: int = 8_000_000, created_at: float = 0.0) -> "DataItem":
        return cls(next(_item_counter), "video", size_bytes, created_at)

    @classmethod
    def message(cls, size_bytes: int = 500, created_at: float = 0.0) -> "DataItem":
        return cls(next(_item_counter), "message", size_bytes, created_at)


def sample_item_size(kind: str, rng: random.Random) -> int:
    """Draw an item size following the Sec. 7 measured distribution."""
    if kind == "message":
        return rng.randint(100, 2_000)
    if kind == "text":
        return rng.randint(500, 10_000)
    if kind == "photo":
        # Most photos under 100 KB, few larger.
        if rng.random() < 0.9:
            return rng.randint(20_000, 100_000)
        return rng.randint(100_000, 1_000_000)
    if kind == "video":
        return rng.randint(2_000_000, 30_000_000)
    raise ValueError(f"unknown item kind {kind!r}")


@dataclass
class Profile:
    """A user's profile: versioned collection of data items."""

    owner_id: int
    items: Dict[int, DataItem] = field(default_factory=dict)
    version: int = 0

    def add_item(self, item: DataItem) -> None:
        self.items[item.item_id] = item
        self.version += 1

    def add_items(self, items: Iterable[DataItem]) -> None:
        for item in items:
            self.add_item(item)

    def remove_item(self, item_id: int) -> bool:
        if item_id in self.items:
            del self.items[item_id]
            self.version += 1
            return True
        return False

    def size_bytes(self) -> int:
        return sum(item.size_bytes for item in self.items.values())

    def items_of_kind(self, kind: str) -> List[DataItem]:
        return [item for item in self.items.values() if item.kind == kind]

    def __len__(self) -> int:
        return len(self.items)
