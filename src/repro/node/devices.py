"""Multi-device synchronization (paper Sec. 3.5).

"Hereby, all mirrors always present the most recent user data if they are
online, which also enables the data owner to synchronize different
personal devices."  A user runs SOUP on several devices (desktop, laptop,
phone) sharing one identity; whichever device is active posts updates,
the mirrors retain them in a bounded per-owner log, and any other device
replays the log when it comes online — idempotently, in timestamp order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.node.profile import DataItem, Profile
from repro.node.sync import PendingUpdate

UpdateKey = Tuple[int, int]  # (origin id, sequence)


def _key(update: PendingUpdate) -> UpdateKey:
    return (update.origin_id, update.sequence)


class UpdateLog:
    """A mirror's bounded, ordered log of one owner's updates.

    Unlike the offline-message buffer (which is drained on collection),
    the log is *retained* so that any number of devices can replay it;
    old entries are pruned by count.
    """

    def __init__(self, max_entries: int = 500) -> None:
        if max_entries < 1:
            raise ValueError("log must retain at least one entry")
        self.max_entries = max_entries
        self._entries: List[PendingUpdate] = []
        self._keys: Set[UpdateKey] = set()

    def append(self, update: PendingUpdate) -> bool:
        """Add an update; duplicates (same origin+sequence) are ignored."""
        if _key(update) in self._keys:
            return False
        self._entries.append(update)
        self._keys.add(_key(update))
        self._entries.sort(key=lambda u: (u.timestamp, u.origin_id, u.sequence))
        while len(self._entries) > self.max_entries:
            evicted = self._entries.pop(0)
            self._keys.discard(_key(evicted))
        return True

    def entries(self) -> List[PendingUpdate]:
        return list(self._entries)

    def size_bytes(self) -> int:
        return sum(update.size_bytes for update in self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class DeviceReplica:
    """One device's local copy of the user's data."""

    device_name: str
    owner_id: int
    profile: Profile = None
    _applied: Set[UpdateKey] = field(default_factory=set)
    applied_updates: List[PendingUpdate] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = Profile(owner_id=self.owner_id)

    def record_local(self, update: PendingUpdate) -> None:
        """Mark a locally produced update as already applied."""
        self._applied.add(_key(update))
        self.applied_updates.append(update)

    def apply(self, updates: Iterable[PendingUpdate]) -> List[PendingUpdate]:
        """Apply foreign updates in order; returns the newly applied ones."""
        fresh = [u for u in updates if _key(u) not in self._applied]
        fresh.sort(key=lambda u: (u.timestamp, u.origin_id, u.sequence))
        for update in fresh:
            self._applied.add(_key(update))
            self.applied_updates.append(update)
            payload = update.payload if isinstance(update.payload, dict) else {}
            if payload.get("action") == "post_item":
                self.profile.add_item(
                    DataItem(
                        item_id=payload["item_id"],
                        kind=payload.get("kind", "text"),
                        size_bytes=payload.get("size", 0),
                        created_at=update.timestamp,
                    )
                )
        return fresh

    def has_applied(self, update: PendingUpdate) -> bool:
        return _key(update) in self._applied

    @property
    def item_count(self) -> int:
        return len(self.profile)


class DeviceGroup:
    """All devices of one user, kept consistent through the mirrors."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._devices: Dict[str, DeviceReplica] = {}

    def attach(self, device_name: str) -> DeviceReplica:
        if device_name in self._devices:
            raise ValueError(f"device {device_name!r} already attached")
        device = DeviceReplica(device_name=device_name, owner_id=self.owner_id)
        self._devices[device_name] = device
        return device

    def device(self, device_name: str) -> DeviceReplica:
        try:
            return self._devices[device_name]
        except KeyError:
            raise LookupError(f"no device {device_name!r}") from None

    def devices(self) -> List[str]:
        return sorted(self._devices)

    def in_sync(self) -> bool:
        """All devices have applied the same update set."""
        applied_sets = [d._applied for d in self._devices.values()]
        return all(s == applied_sets[0] for s in applied_sets[1:])

    def __len__(self) -> int:
        return len(self._devices)
