"""Data synchronization through mirrors (paper Sec. 3.5, Fig. 2).

While a user is offline, updates addressed to her are stored by her mirrors
acting as surrogates.  If a mirror is itself offline, the update is passed
on to *that mirror's* mirrors, so at least one online holder always exists.
On returning online the user collects pending updates, orders them by the
timestamps in the SOUP objects, and applies them to her data — which also
keeps her multiple personal devices in sync.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import get_registry, get_tracer

logger = logging.getLogger("repro.node.sync")


@dataclass(frozen=True)
class PendingUpdate:
    """One buffered update for an offline user."""

    target_id: int
    origin_id: int
    timestamp: float
    sequence: int
    payload: object
    size_bytes: int = 500


class UpdateBuffer:
    """A mirror's surrogate storage of updates for the users it mirrors.

    Each target's queue is bounded by ``max_per_target``: otherwise one
    flooding origin could grow a mirror's surrogate storage without limit
    (the same resource-exhaustion angle protective dropping guards the
    forwarding path against).  When full, the oldest update is dropped —
    the returning user can still fetch missed history from the origin's
    profile — and ``dropped_updates`` counts the losses.
    """

    def __init__(self, max_per_target: Optional[int] = None) -> None:
        if max_per_target is not None and max_per_target < 1:
            raise ValueError("max_per_target must be positive")
        self._pending: Dict[int, List[PendingUpdate]] = {}
        self.max_per_target = max_per_target
        self.dropped_updates = 0

    def add(self, update: PendingUpdate) -> None:
        queue = self._pending.setdefault(update.target_id, [])
        # Idempotent: the same update may arrive via several mirrors.
        if any(
            u.origin_id == update.origin_id and u.sequence == update.sequence
            for u in queue
        ):
            return
        queue.append(update)
        if self.max_per_target is not None and len(queue) > self.max_per_target:
            oldest = min(
                range(len(queue)),
                key=lambda i: (queue[i].timestamp, queue[i].origin_id, queue[i].sequence),
            )
            evicted = queue.pop(oldest)
            self.dropped_updates += 1
            get_registry().counter("sync.updates_dropped").inc()
            logger.debug(
                "update buffer for target %s full: dropped oldest from %s",
                evicted.target_id, evicted.origin_id,
            )
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    "update_dropped",
                    target=evicted.target_id,
                    origin=evicted.origin_id,
                    reason="buffer-full",
                )

    def pending_for(self, target_id: int) -> List[PendingUpdate]:
        """Updates for a returning user, ordered by (timestamp, sequence)."""
        queue = self._pending.get(target_id, [])
        return sorted(queue, key=lambda u: (u.timestamp, u.origin_id, u.sequence))

    def collect(self, target_id: int) -> List[PendingUpdate]:
        """Hand pending updates to the returning user and clear them."""
        updates = self.pending_for(target_id)
        self._pending.pop(target_id, None)
        return updates

    def pending_count(self, target_id: Optional[int] = None) -> int:
        if target_id is not None:
            return len(self._pending.get(target_id, []))
        return sum(len(queue) for queue in self._pending.values())


def merge_update_streams(*streams: List[PendingUpdate]) -> List[PendingUpdate]:
    """Merge updates collected from several mirrors, deduplicated and in
    timestamp order — the returning user's reconciliation step."""
    seen = set()
    merged: List[PendingUpdate] = []
    for stream in streams:
        for update in stream:
            key = (update.origin_id, update.sequence)
            if key in seen:
                continue
            seen.add(key)
            merged.append(update)
    merged.sort(key=lambda u: (u.timestamp, u.origin_id, u.sequence))
    return merged
