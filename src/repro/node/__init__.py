"""The SOUP node: middleware + application interface (paper Sec. 6, Fig. 12).

A :class:`~repro.node.middleware.SoupNode` wires together the module
structure of the paper's implementation:

* **Application Manager** — lets arbitrary social applications run on top of
  the middleware and encapsulates their content into SOUP objects.
* **Social Manager** — friend lists, friend requests, attribute grants.
* **Security Manager** — all encryption: ABE for data, RSA signatures for
  SOUP objects.
* **Mirror Manager** — mirror selection (the :mod:`repro.core` machinery),
  replica pushes, replica storage for others, update surrogacy.
* **Interface Manager** — DHT directory operations and point-to-point
  delivery over the simulated network; gateway relaying for mobile nodes.

Nodes run over :mod:`repro.network` (traffic-metered simulated links) and
:mod:`repro.dht` (the Pastry directory), which is exactly the setting of the
paper's deployment measurements (Sec. 7).
"""

from repro.node.devices import DeviceGroup, DeviceReplica, UpdateLog
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem, Profile
from repro.node.sync import PendingUpdate, UpdateBuffer, merge_update_streams

__all__ = [
    "DeviceGroup",
    "DeviceReplica",
    "UpdateLog",
    "SoupNode",
    "DataItem",
    "Profile",
    "PendingUpdate",
    "UpdateBuffer",
    "merge_update_streams",
]
