"""The SOUP node middleware: all managers wired together (Sec. 6, Fig. 12).

A :class:`SoupNode` is one participant: it joins the overlay (or relays via
a gateway if mobile), publishes its directory entry, maintains its profile,
selects mirrors and pushes encrypted replicas to them, serves as a mirror
for others, buffers updates for offline users, and exchanges experience
sets with friends.

Protocol decisions (store/reject, profile serving, update collection) are
evaluated synchronously against the peer's state for simulation simplicity,
while every byte still crosses the metered simulated network — so the
traffic figures of Sec. 7 are reproduced faithfully.
"""

from __future__ import annotations

import logging
import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import get_registry, get_tracer
from repro.obs.profiling import PROFILER

logger = logging.getLogger("repro.node.middleware")

from repro.core.config import SoupConfig
from repro.core.objects import ObjectType, SoupObject
from repro.core.ranking import Recommendation
from repro.crypto.keys import KeyPair
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.dht.storage import DirectoryEntry
from repro.network.reliability import FailureDetector, ReliableEndpoint
from repro.network.transport import LinkSpec, Transport
from repro.node.application_manager import ApplicationManager
from repro.node.interface_manager import InterfaceManager
from repro.node.mirror_manager import MirrorManager
from repro.node.profile import DataItem, Profile
from repro.node.security_manager import SecurityManager
from repro.node.social_manager import SocialManager
from repro.node.devices import DeviceGroup
from repro.node.sync import PendingUpdate, merge_update_streams

#: Encryption expands a replica slightly (ABE header + MAC + shares).
_ENCRYPTION_OVERHEAD_BYTES = 2_048
#: Size of a plain profile-browse response (recent items, not the full
#: profile) — matching Sec. 7's "simple profile requests do not consume a
#: lot of bandwidth".
_PROFILE_VIEW_BYTES = 40_000


class SoupNode:
    """One SOUP participant (middleware + demo application surface)."""

    def __init__(
        self,
        name: str,
        network: Transport,
        overlay: PastryOverlay,
        registry: BootstrapRegistry,
        peer_resolver: Callable[[int], Optional["SoupNode"]],
        config: Optional[SoupConfig] = None,
        keys: Optional[KeyPair] = None,
        seed: Optional[int] = None,
        is_mobile: bool = False,
        link: Optional[LinkSpec] = None,
        capacity_profiles: float = 50.0,
        key_bits: int = 512,
        coding_k: int = 0,
        coding_threshold_bytes: int = 8_000_000,
        mobile_relay_limit: int = 4,
        crypto_mode: str = "full",
    ) -> None:
        self.name = name
        self.config = config or SoupConfig()
        self.rng = random.Random(seed)
        self.keys = keys or KeyPair.generate(bits=key_bits, seed=seed)
        self.node_id = self.keys.soup_id
        self.is_mobile = is_mobile
        self._peer = peer_resolver

        self.network = network
        self.overlay = overlay
        self.registry = registry

        self.crypto_mode = crypto_mode
        self.security = SecurityManager(self.keys, crypto_mode=crypto_mode)
        self.social = SocialManager(self.node_id, self.security)
        self.applications = ApplicationManager(self.node_id)
        self.mirror_manager = MirrorManager(
            owner_id=self.node_id,
            config=self.config,
            capacity_profiles=capacity_profiles,
            rng=self.rng,
            # Mobile devices do not mirror by default (Sec. 7), though users
            # can opt in (e.g. a WiFi-connected tablet).
            mirroring_enabled=not is_mobile,
        )
        self.interface = InterfaceManager(
            owner_id=self.node_id,
            network=network,
            overlay=overlay,
            is_mobile=is_mobile,
        )

        self.profile = Profile(owner_id=self.node_id)
        self.devices = DeviceGroup(self.node_id)
        self.joined = False
        self.online = False
        self._entry_version = 0
        #: Sec. 8 extension: profiles above the threshold are distributed
        #: as (n, k) erasure-coded fragments instead of full replicas;
        #: ``coding_k = 0`` disables coding (the base protocol).
        self.coding_k = coding_k
        self.coding_threshold_bytes = coding_threshold_bytes
        #: How many mobile nodes this (regular) node is willing to relay
        #: for ("every regular node can set a limit to mobile connections",
        #: Sec. 3.3).
        self.mobile_relay_limit = mobile_relay_limit
        self.relayed_mobiles: set = set()
        #: Inbound objects discarded for missing/invalid signatures.
        self.dropped_objects = 0
        #: Optional :class:`repro.arch.ReadPathStrategy` installed by the
        #: deployment (shared across nodes); ``None`` keeps every profile
        #: read on the owner/mirror path.  The cache's epoch clock ticks
        #: every ``read_cache_epoch_s`` simulated seconds.
        self.read_cache = None
        self.read_cache_epoch_s = 60.0

        #: Reliability layer: acknowledged sends with retry/backoff, a
        #: per-destination circuit breaker, and a failure detector whose
        #: dead-mirror verdicts trigger proactive replica repair.
        self.reliability = ReliableEndpoint(
            node_id=self.node_id,
            network=network,
            inner_handler=self._handle_network,
            detector=FailureDetector(
                on_dead=self._on_peer_dead, on_alive=self._on_peer_alive
            ),
            seed=seed if seed is not None else self.node_id,
        )
        self.interface.endpoint = self.reliability
        self._repairing = False

        if link is None:
            from repro.network.transport import DESKTOP_LINK, MOBILE_LINK

            link = MOBILE_LINK if is_mobile else DESKTOP_LINK
        network.register(
            self.node_id,
            self.reliability.handle_message,
            link=link,
            on_failure=self.reliability.handle_network_failure,
        )
        network.set_online(self.node_id, False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def join(self, bootstrap_id: Optional[int] = None) -> None:
        """Join SOUP via a bootstrap node (Sec. 3.2 / 3.3)."""
        if self.joined:
            raise RuntimeError(f"{self.name} already joined")
        if bootstrap_id is None and len(self.registry):
            bootstrap_id = self.registry.pick(self.rng)

        self.network.set_online(self.node_id, True)
        self.online = True

        if self.is_mobile:
            if bootstrap_id is None:
                raise RuntimeError("a mobile node needs a gateway to join")
            self.interface.set_gateway(bootstrap_id)
        else:
            self.overlay.join(self.node_id, bootstrap_id)
        self.joined = True
        self.publish_entry()

    def make_bootstrap_node(self) -> None:
        """Advertise this (regular) node as a public bootstrap node."""
        if self.is_mobile:
            raise ValueError("mobile nodes cannot bootstrap others")
        self.registry.register(self.node_id)

    def go_offline(self) -> None:
        if not self.online:
            return
        self.online = False
        self.network.set_online(self.node_id, False)

    def go_online(self) -> None:
        """Return online: re-publish interfaces and collect buffered updates."""
        if self.online:
            return
        self.online = True
        self.network.set_online(self.node_id, True)
        if self.joined:
            self.publish_entry()
            self.collect_updates()

    def shutdown(self, graceful: bool = True) -> None:
        """Stop this node for good (lifecycle hook for deployment runtimes).

        ``graceful=True`` leaves the overlay cleanly first (directory
        entries are re-homed, Sec. 3.2); ``graceful=False`` models a kill:
        the node just goes dark and the ring discovers the loss through
        failure detection.  Either way the node stays registered with the
        transport so in-flight timers referencing it fail softly
        ("sender-offline") instead of raising."""
        if graceful and not self.is_mobile and self.node_id in self.overlay:
            self.overlay.leave(self.node_id)
        self.go_offline()
        self.joined = False

    def _reachable(self, peer_id: int) -> bool:
        """Whether active network chaos (a partition or a SIGSTOP-style
        pause) blocks traffic to ``peer_id``.  Serving decisions conjoin
        this with the peer's online state, so the protocol sees chaos
        identically on both network backends; with no chaos applied it is
        always true and behavior is bit-identical to the pre-seam code."""
        return not self.network.is_paused(peer_id) and not self.network.partitioned(
            self.node_id, peer_id
        )

    # ------------------------------------------------------------------
    # directory
    # ------------------------------------------------------------------
    def publish_entry(self) -> None:
        self._ensure_gateway()
        self._entry_version += 1
        entry = DirectoryEntry(
            soup_id=self.node_id,
            name=self.name,
            interfaces=(f"sim://{self.node_id:016x}",),
            mirror_ids=tuple(self.mirror_manager.announced_mirrors),
            version=self._entry_version,
            public_key=self.keys.public,
        )
        self.interface.publish_entry(entry)

    def lookup_user(self, soup_id: int) -> Optional[DirectoryEntry]:
        self._ensure_gateway()
        entry, _ = self.interface.lookup_entry(soup_id)
        if entry is not None and entry.public_key is not None:
            self.security.learn_public_key(entry.soup_id, entry.public_key)
        return entry

    # ------------------------------------------------------------------
    # social operations (demo-application surface)
    # ------------------------------------------------------------------
    def befriend(self, other_id: int) -> bool:
        """Full friend-request handshake with attribute-key exchange."""
        other = self._require_peer(other_id)
        if other is None or not other.online or not self._reachable(other_id):
            return False
        self.social.initiate_request(other_id)
        request = self.applications.encapsulate(
            other_id, ObjectType.FRIEND_REQUEST, {"from": self.name}, self._now()
        )
        self.security.sign_object(request)
        self.interface.send_object(request)

        other.social.receive_request(self.node_id)
        their_key = other.social.accept_request(self.node_id)
        confirm = other.applications.encapsulate(
            self.node_id, ObjectType.FRIEND_CONFIRM, {"from": other.name}, self._now()
        )
        other.security.sign_object(confirm)
        other.interface.send_object(confirm)

        my_key = self.social.confirm_accepted(other_id)
        # Mutual attribute grants: each side can decrypt the other's data.
        self.security.receive_attribute_key(other_id, their_key)
        other.security.receive_attribute_key(self.node_id, my_key)
        # Friendship feeds the mirror-selection machinery on both sides.
        self.mirror_manager.set_friend(other_id)
        other.mirror_manager.set_friend(self.node_id)
        return True

    def contact(self, other_id: int) -> None:
        """Meet a node: exchange KB knowledge and (if bootstrapping) harvest
        mirror recommendations (Sec. 4.3).  Mobile nodes also probe every
        encountered regular node as a potential gateway (Sec. 3.3)."""
        other = self._require_peer(other_id)
        if other is None:
            return
        self.mirror_manager.learn_node(other_id, self.social.is_friend(other_id))
        other.mirror_manager.learn_node(self.node_id, other.social.is_friend(self.node_id))
        self.mirror_manager.receive_recommendations(
            other.mirror_manager.recommendations_for(self.node_id)
        )
        if self.is_mobile:
            self._maybe_switch_gateway(other)

    # ------------------------------------------------------------------
    # mobile gateway management (Sec. 3.3)
    # ------------------------------------------------------------------
    def accepts_mobile_relay(self, mobile_id: int) -> bool:
        """Whether this regular node will relay DHT requests for a mobile."""
        if self.is_mobile or not self.online or self.node_id not in self.overlay:
            return False
        return (
            mobile_id in self.relayed_mobiles
            or len(self.relayed_mobiles) < self.mobile_relay_limit
        )

    def _maybe_switch_gateway(self, candidate: "SoupNode") -> None:
        """Switch away from a bootstrap gateway when any capable regular
        node is encountered — "to reduce the load on bootstrapping nodes"."""
        current = self.interface.gateway_id
        if current is not None and current not in self.registry.all():
            return  # already on a non-bootstrap gateway
        if candidate.node_id in self.registry.all():
            return
        if not candidate.accepts_mobile_relay(self.node_id):
            return
        if current is not None:
            old = self._peer(current)
            if old is not None:
                old.relayed_mobiles.discard(self.node_id)
        candidate.relayed_mobiles.add(self.node_id)
        self.interface.set_gateway(candidate.node_id)

    def _ensure_gateway(self) -> None:
        """Fall back to a bootstrap gateway if the current one vanished.

        Raises :class:`~repro.dht.pastry.DhtError` when no live gateway
        exists at all — a mobile node without any relay is cut off from
        the directory.
        """
        if not self.is_mobile:
            return
        gateway = (
            self._peer(self.interface.gateway_id)
            if self.interface.gateway_id is not None
            else None
        )
        if gateway is not None and gateway.online and gateway.node_id in self.overlay:
            return
        for candidate_id in self.registry.all():
            candidate = self._peer(candidate_id)
            if (
                candidate is not None
                and candidate.online
                and candidate_id in self.overlay
            ):
                self.interface.set_gateway(candidate_id)
                return
        from repro.dht.pastry import DhtError

        raise DhtError(
            f"mobile node {self.name} has no reachable gateway"
        )

    def send_message(self, dest_id: int, text: str) -> bool:
        """Deliver a message; offline recipients get it via their mirrors."""
        entry = self.lookup_user(dest_id)
        if entry is None:
            return False
        message = self.applications.encapsulate(
            dest_id, ObjectType.MESSAGE, {"text": text}, self._now()
        )
        self.security.sign_object(message)
        dest = self._peer(dest_id)
        if dest is not None and dest.online and self._reachable(dest_id):
            self.interface.send_object(message)
            return True
        # Store-and-forward through the recipient's mirrors (Sec. 3.5).
        return self._deliver_update_via_mirrors(entry, message)

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def post_item(
        self,
        item: DataItem,
        device: Optional[str] = None,
        on_push_ack: Optional[Callable[[int, object], None]] = None,
        on_push_giveup: Optional[Callable[[int, object, str], None]] = None,
    ) -> None:
        """Add a data item and push the update to all mirrors.

        ``device`` names the posting device (see :meth:`attach_device`);
        mirrors retain the update in a per-owner log so the user's other
        devices can replay it (Sec. 3.5).  ``on_push_ack``/``on_push_giveup``
        observe the per-mirror reliable push outcome — the resilience
        harness uses them to track which updates were acknowledged (and
        must therefore survive, the "zero lost acked updates" gate).
        """
        self.profile.add_item(item)
        update = self.applications.encapsulate(
            self.node_id,
            ObjectType.UPDATE,
            {
                "action": "post_item",
                "item_id": item.item_id,
                "kind": item.kind,
                "size": item.size_bytes,
            },
            self._now(),
        )
        self.security.sign_object(update)
        pending = PendingUpdate(
            target_id=self.node_id,
            origin_id=self.node_id,
            timestamp=update.timestamp,
            sequence=update.sequence,
            payload=update.payload,
            size_bytes=item.size_bytes + _ENCRYPTION_OVERHEAD_BYTES,
        )
        if device is not None:
            replica = self.devices.device(device)
            replica.profile.add_item(item)
            replica.record_local(pending)
        for mirror_id in self.mirror_manager.announced_mirrors:
            mirror = self._peer(mirror_id)
            if mirror is None or not self._reachable(mirror_id):
                continue
            self.interface.send_bytes_reliable(
                mirror_id,
                update,
                item.size_bytes + _ENCRYPTION_OVERHEAD_BYTES,
                on_ack=on_push_ack,
                on_giveup=on_push_giveup,
            )
            mirror.mirror_manager.record_owner_update(self.node_id, pending)

    # ------------------------------------------------------------------
    # multi-device synchronization (Sec. 3.5)
    # ------------------------------------------------------------------
    def attach_device(self, device_name: str):
        """Register another personal device sharing this identity."""
        return self.devices.attach(device_name)

    def sync_device(self, device_name: str) -> List[PendingUpdate]:
        """Replay the mirror-retained update log onto one device.

        Returns the updates newly applied to that device.  Any online
        mirror holding the log can serve it; the transfer is metered.
        """
        replica = self.devices.device(device_name)
        for mirror_id in self.mirror_manager.announced_mirrors:
            mirror = self._peer(mirror_id)
            if mirror is None or not mirror.online or not self._reachable(mirror_id):
                continue
            log = mirror.mirror_manager.update_log_for(self.node_id)
            if log is None or len(log) == 0:
                continue
            fresh = replica.apply(log.entries())
            for update in fresh:
                self._transfer_from(mirror_id, update.size_bytes)
            return fresh
        return []

    def replica_size_bytes(self) -> int:
        return self.profile.size_bytes() + _ENCRYPTION_OVERHEAD_BYTES

    def request_profile(self, owner_id: int, fetch_bytes: Optional[int] = None) -> bool:
        """Fetch a user's (recent) data, preferring the owner, else mirrors.

        Observations about the owner's mirrors land in the experience set
        when the owner is a friend (Sec. 4.4).  With a read cache installed
        (``architecture = "cache"``), a fresh locally cached copy serves the
        read without touching owner or mirrors — and without producing any
        experience-set observations, the trade-off the head-to-head
        comparison measures.
        """
        cache = self.read_cache
        if cache is None:
            return self._request_profile_remote(owner_id, fetch_bytes)
        epoch = int(self._now() / self.read_cache_epoch_s)
        if cache.try_serve(self.node_id, owner_id, epoch):
            return True
        served = self._request_profile_remote(owner_id, fetch_bytes)
        cache.on_fetch(self.node_id, owner_id, epoch, served)
        return served

    def _request_profile_remote(
        self, owner_id: int, fetch_bytes: Optional[int] = None
    ) -> bool:
        entry = self.lookup_user(owner_id)
        if entry is None:
            return False
        size = fetch_bytes if fetch_bytes is not None else _PROFILE_VIEW_BYTES
        owner = self._peer(owner_id)
        record = self.social.is_friend(owner_id)

        if owner is not None and owner.online and self._reachable(owner_id):
            self._transfer_from(owner_id, size)
            if record:
                self._observe_mirrors(owner_id, entry.mirror_ids)
            return True

        serving: List[int] = []
        for mirror_id in entry.mirror_ids:
            mirror = self._peer(mirror_id)
            serves = (
                mirror is not None
                and mirror.online
                and self._reachable(mirror_id)
                and mirror.mirror_manager.store.stores_for(owner_id)
            )
            if record:
                self.mirror_manager.observe_mirror(owner_id, mirror_id, serves)
            if serves:
                serving.append(mirror_id)

        plan = owner.mirror_manager.coded_plan if owner is not None else None
        if plan is not None:
            # Coded profile (Sec. 8): any k online fragment holders serve.
            if len(serving) < plan.k:
                return False
            fetch_each = max(1, size // plan.k)
            for mirror_id in serving[: plan.k]:
                self._transfer_from(mirror_id, fetch_each)
            return True

        if serving:
            self._transfer_from(serving[0], size)
            return True
        return False

    def _observe_mirrors(self, owner_id: int, mirror_ids: Iterable[int]) -> None:
        """Record mirror availability alongside a direct fetch."""
        for mirror_id in mirror_ids:
            mirror = self._peer(mirror_id)
            serves = (
                mirror is not None
                and mirror.online
                and self._reachable(mirror_id)
                and mirror.mirror_manager.store.stores_for(owner_id)
            )
            self.mirror_manager.observe_mirror(owner_id, mirror_id, serves)

    def _transfer_from(self, source_id: int, size_bytes: int) -> None:
        """Meter a data download from ``source_id`` to us."""
        response = SoupObject(
            source=source_id,
            dest=self.node_id,
            object_type=ObjectType.PROFILE_RESPONSE,
            payload=None,
            timestamp=self._now(),
        )
        self.network.send(source_id, self.node_id, response, size_bytes)

    # ------------------------------------------------------------------
    # mirror protocol
    # ------------------------------------------------------------------
    def exchange_experience_sets(self) -> int:
        """Send accumulated ES_u(w) to every friend w (Sec. 4.4)."""
        sent = 0
        for friend_id in self.social.friends():
            friend = self._peer(friend_id)
            if friend is None or not self._reachable(friend_id):
                # Unreachable friend: keep accumulating, exchange later.
                continue
            reports = self.mirror_manager.drain_reports_for(friend_id)
            if not reports:
                continue
            exchange = self.applications.encapsulate(
                friend_id,
                ObjectType.ES_EXCHANGE,
                [
                    {
                        "mirror": r.mirror,
                        "observations": r.observations,
                        "availability": r.availability,
                    }
                    for r in reports
                ],
                self._now(),
            )
            self.security.sign_object(exchange)
            self.interface.send_object(exchange)
            friend.mirror_manager.receive_reports(reports)
            # Dropping-score exchange rides along (Sec. 4.6).
            self.mirror_manager.store.learn_friend_storage(
                friend.mirror_manager.store.stored_owners()
            )
            sent += 1
        return sent

    def run_selection_round(self) -> List[int]:
        """One full selection round: ingest reports, run Algorithm 1, place
        replicas, publish the new mirror set."""
        with PROFILER.span("node.selection_round"):
            return self._run_selection_round()

    def _run_selection_round(self) -> List[int]:
        if not self.joined or not self.online:
            return self.mirror_manager.announced_mirrors
        self.mirror_manager.ingest_pending_reports()

        exclude = {
            node_id
            for node_id in (self._offline_unreachable_ids())
        }
        result = self.mirror_manager.run_selection(exclude=exclude)

        old = set(self.mirror_manager.announced_mirrors)
        new = set(result.mirrors)
        for dropped_id in old - new:
            dropped = self._peer(dropped_id)
            if dropped is not None:
                dropped.mirror_manager.handle_withdraw(self.node_id)

        replica_bytes = self.replica_size_bytes()
        use_coding = (
            self.coding_k > 0 and replica_bytes > self.coding_threshold_bytes
        )
        # Under coding, every mirror stores only a 1/k-sized fragment.
        store_units = 1.0 / self.coding_k if use_coding else 1.0

        accepted: List[int] = []
        newly_accepted: List[int] = []
        for mirror_id in result.mirrors:
            mirror = self._peer(mirror_id)
            if mirror is None or not mirror.online or not self._reachable(mirror_id):
                if mirror_id in old:
                    accepted.append(mirror_id)  # still holds our replica
                continue
            if mirror.mirror_manager.store.stores_for(self.node_id):
                accepted.append(mirror_id)
                continue
            decision = mirror.mirror_manager.handle_store_request(
                self.node_id,
                size_profiles=store_units,
                is_friend=mirror.social.is_friend(self.node_id),
            )
            if decision.accepted:
                accepted.append(mirror_id)
                newly_accepted.append(mirror_id)
            else:
                self.mirror_manager.rejected_by.add(mirror_id)

        self._push_replicas(accepted, newly_accepted, replica_bytes, use_coding)
        self.mirror_manager.commit_mirrors(accepted)
        self.publish_entry()
        # Mirrors verify the announced set against what they store.
        for mirror_id in accepted:
            mirror = self._peer(mirror_id)
            if mirror is not None:
                mirror.mirror_manager.store.observe_published_mirrors(
                    self.node_id, accepted
                )
        return accepted

    def _push_replicas(
        self,
        accepted: List[int],
        newly_accepted: List[int],
        replica_bytes: int,
        use_coding: bool,
    ) -> None:
        """Transfer replica data to the accepted mirrors.

        Full replication pushes the whole (encrypted) profile to each new
        mirror; the coding extension (Sec. 8) pushes one 1/k fragment per
        mirror instead — re-laid-out whenever the accepted set changes,
        since fragment indices are positional.
        """
        if use_coding and len(accepted) >= self.coding_k:
            from repro.coding.fragments import plan_for_profile

            plan = plan_for_profile(
                self.node_id, replica_bytes, accepted, self.coding_k
            )
            changed_layout = (
                self.mirror_manager.coded_plan is None
                or self.mirror_manager.coded_plan.holders() != accepted
            )
            for placement in plan.placements:
                if not changed_layout and placement.mirror not in newly_accepted:
                    continue
                push = SoupObject(
                    source=self.node_id,
                    dest=placement.mirror,
                    object_type=ObjectType.REPLICA_PUSH,
                    payload={"fragment": placement.fragment_index, "k": plan.k},
                    timestamp=self._now(),
                )
                self.interface.send_bytes_reliable(
                    placement.mirror, push, placement.size_bytes
                )
                self._note_replica_pushed(placement.mirror, placement.size_bytes)
            self.mirror_manager.coded_plan = plan
            return

        self.mirror_manager.coded_plan = None
        for mirror_id in newly_accepted:
            push = SoupObject(
                source=self.node_id,
                dest=mirror_id,
                object_type=ObjectType.REPLICA_PUSH,
                timestamp=self._now(),
            )
            self.interface.send_bytes_reliable(mirror_id, push, replica_bytes)
            self._note_replica_pushed(mirror_id, replica_bytes)

    def _note_replica_pushed(self, mirror_id: int, size_bytes: int) -> None:
        get_registry().counter("node.replicas.pushed").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                "replica_pushed",
                owner=self.node_id,
                mirror=mirror_id,
                bytes=size_bytes,
                t=self._now(),
            )

    # ------------------------------------------------------------------
    # proactive replica repair (reliability layer)
    # ------------------------------------------------------------------
    def _on_peer_dead(self, peer_id: int) -> None:
        """Failure-detector verdict: a peer stopped acking.  If it is one
        of our announced mirrors, repair the mirror set immediately instead
        of waiting for the next periodic selection round."""
        was_mirror = self.mirror_manager.mark_mirror_dead(peer_id)
        if was_mirror:
            get_registry().counter("node.mirrors.declared_dead").inc()
            logger.debug(
                "%s: mirror %#x declared dead, repairing", self.name, peer_id
            )
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    "failure_declared",
                    peer=peer_id,
                    by=self.node_id,
                    reason="mirror-unacked",
                    t=self._now(),
                )
        if was_mirror and self.joined and self.online and not self._repairing:
            self.repair_mirrors()

    def _on_peer_alive(self, peer_id: int) -> None:
        self.mirror_manager.mark_mirror_alive(peer_id)

    def repair_mirrors(self) -> List[int]:
        """Rerun selection and re-replicate after a mirror was declared
        dead.  Dead mirrors are excluded from the new set; when the
        candidate pool is exhausted the node degrades to a partial set
        (``mirror_manager.has_partial_set()``) rather than stalling."""
        if self._repairing or not (self.joined and self.online):
            return self.mirror_manager.announced_mirrors
        self._repairing = True
        try:
            old = set(self.mirror_manager.announced_mirrors)
            dead = sorted(self.mirror_manager.dead_mirrors & old)
            self.mirror_manager.repairs_triggered += 1
            get_registry().counter("node.repairs").inc()
            accepted = self.run_selection_round()
            replacements = len(set(accepted) - old)
            self.mirror_manager.repair_replacements += replacements
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    "repair_round",
                    owner=self.node_id,
                    dead=dead,
                    replacements=replacements,
                    t=self._now(),
                )
            return accepted
        finally:
            self._repairing = False

    def _offline_unreachable_ids(self) -> List[int]:
        """Nodes currently unreachable for a storage request — excluded from
        fresh selection.  Mirrors already holding our replica stay
        selectable while offline (the replica is already there)."""
        holding = set(self.mirror_manager.announced_mirrors)
        unreachable = []
        for entry in self.mirror_manager.knowledge:
            peer = self._peer(entry.node_id)
            if peer is None or (
                (not peer.online or not self._reachable(entry.node_id))
                and entry.node_id not in holding
            ):
                unreachable.append(entry.node_id)
        return unreachable

    # ------------------------------------------------------------------
    # update synchronization (Sec. 3.5)
    # ------------------------------------------------------------------
    def _deliver_update_via_mirrors(
        self, entry: DirectoryEntry, update_object: SoupObject
    ) -> bool:
        """Store an update at the target's mirrors; if a mirror is offline,
        pass it on to that mirror's mirrors (Fig. 2)."""
        pending = PendingUpdate(
            target_id=update_object.dest,
            origin_id=self.node_id,
            timestamp=update_object.timestamp,
            sequence=update_object.sequence,
            payload=update_object.payload,
            size_bytes=update_object.size_bytes(),
        )
        delivered = False
        for mirror_id in entry.mirror_ids:
            mirror = self._peer(mirror_id)
            if mirror is not None and mirror.online and self._reachable(mirror_id):
                self.interface.send_bytes_reliable(
                    mirror_id, update_object, pending.size_bytes
                )
                mirror.mirror_manager.update_buffer.add(pending)
                delivered = True
            elif mirror is not None:
                # One level of forwarding to the offline mirror's mirrors.
                for sub_id in mirror.mirror_manager.announced_mirrors:
                    sub = self._peer(sub_id)
                    if sub is not None and sub.online and self._reachable(sub_id):
                        self.interface.send_bytes_reliable(
                            sub_id, update_object, pending.size_bytes
                        )
                        sub.mirror_manager.update_buffer.add(pending)
                        delivered = True
                        break
        return delivered

    def collect_updates(self) -> List[PendingUpdate]:
        """On returning online, gather buffered updates from our mirrors."""
        streams = []
        for mirror_id in self.mirror_manager.announced_mirrors:
            mirror = self._peer(mirror_id)
            if mirror is None or not mirror.online or not self._reachable(mirror_id):
                continue
            stream = mirror.mirror_manager.update_buffer.collect(self.node_id)
            if stream:
                for update in stream:
                    self._transfer_from(mirror_id, update.size_bytes)
                streams.append(stream)
        merged = merge_update_streams(*streams)
        for update in merged:
            self.applications.deliver(
                SoupObject(
                    source=update.origin_id,
                    dest=self.node_id,
                    object_type=ObjectType.MESSAGE,
                    payload=update.payload,
                    timestamp=update.timestamp,
                )
            )
        return merged

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _handle_network(self, sender: int, message: object) -> None:
        if not isinstance(message, SoupObject):
            return
        if message.object_type in (
            ObjectType.MESSAGE,
            ObjectType.FRIEND_REQUEST,
            ObjectType.FRIEND_CONFIRM,
        ):
            # "Requests ... must be encapsulated in an appropriately signed
            # SOUP object, and will otherwise be discarded" (Sec. 3.4).
            # Unknown senders are resolved through the directory first —
            # SOUP IDs are self-certifying.
            if not self.security.knows_public_key(message.source):
                from repro.dht.pastry import DhtError

                try:
                    self._ensure_gateway()
                    entry, _ = self.interface.lookup_entry(message.source)
                except DhtError:
                    entry = None
                if entry is not None and entry.public_key is not None:
                    self.security.learn_public_key(entry.soup_id, entry.public_key)
            if not self.security.verify_object(message):
                self.dropped_objects += 1
                return
            self.applications.deliver(message)

    def _require_peer(self, node_id: int) -> Optional["SoupNode"]:
        peer = self._peer(node_id)
        return peer

    def _now(self) -> float:
        return self.network.loop.now

    def __repr__(self) -> str:
        kind = "mobile" if self.is_mobile else "desktop"
        return f"<SoupNode {self.name} ({kind}) id={self.node_id:#x}>"
