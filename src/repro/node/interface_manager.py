"""Interface Manager: directory operations and node-to-node delivery.

"If any of these modules need to communicate with other nodes, they do so by
passing an object to the Interface Manager, which can then initiate
communication via a suitable network interface" (Sec. 6).

Two communication paths (Sec. 3.6):

* **Directory (DHT)** — publish/look up entries.  Regular nodes execute the
  operations themselves from their position in the overlay; mobile nodes
  relay through a gateway (Sec. 3.3), so the gateway's link carries the
  relayed bytes (visible in Fig. 14a).
* **Direct channels** — after a lookup, objects are sent point-to-point
  over the simulated network, which meters the traffic per node.

DHT routing charges bytes per overlay hop, so control-overhead
measurements reflect multi-hop Pastry cost, not just endpoint cost.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.objects import ObjectType, SoupObject
from repro.dht.pastry import DhtError, PastryOverlay, RouteResult
from repro.dht.storage import DirectoryEntry
from repro.network.reliability import ReliableEndpoint
from repro.network.transport import Transport

#: Approximate wire size of one DHT control message (key + headers).
_DHT_MESSAGE_BYTES = 160
#: Extra bytes for a relayed mobile request (tunnel header).
_RELAY_OVERHEAD_BYTES = 48
#: Republish backoff: base delay and cap for consecutive failed publishes.
_REPUBLISH_BASE_S = 5.0
_REPUBLISH_CAP_S = 300.0


class InterfaceManager:
    """Network-facing operations of one SOUP node."""

    def __init__(
        self,
        owner_id: int,
        network: Transport,
        overlay: PastryOverlay,
        is_mobile: bool = False,
    ) -> None:
        self.owner_id = owner_id
        self.network = network
        self.overlay = overlay
        self.is_mobile = is_mobile
        #: The gateway a mobile node relays its DHT operations through.
        self.gateway_id: Optional[int] = None
        #: Reliability layer (acks, retries, circuit breaking); installed
        #: by the owning node after registration.  When absent, reliable
        #: sends degrade to plain fire-and-forget sends.
        self.endpoint: Optional[ReliableEndpoint] = None
        #: Republish backoff state: consecutive failures and the earliest
        #: time another publish attempt will actually hit the overlay.
        self._publish_failures = 0
        self._publish_backoff_until = 0.0
        self.publishes_deferred = 0

    # --- gateway management (mobile nodes, Sec. 3.3) --------------------
    def set_gateway(self, gateway_id: int) -> None:
        if not self.is_mobile:
            raise ValueError("only mobile nodes use gateways")
        self.gateway_id = gateway_id

    def _dht_entry_point(self) -> int:
        """The overlay node that executes our DHT operations."""
        if self.is_mobile:
            if self.gateway_id is None:
                raise DhtError(f"mobile node {self.owner_id:#x} has no gateway")
            return self.gateway_id
        return self.owner_id

    def _charge_route(self, route: RouteResult, payload_bytes: int) -> None:
        """Charge DHT traffic along the route's hops to the control meters."""
        size = _DHT_MESSAGE_BYTES + payload_bytes
        now = self.network.loop.now
        for hop_from, hop_to in zip(route.path, route.path[1:]):
            self.network.control_meter(hop_from).record_sent(now, size)
            self.network.control_meter(hop_to).record_received(now, size)

    def _charge_relay(self, payload_bytes: int) -> None:
        """Charge the mobile-to-gateway relay leg (both directions)."""
        assert self.gateway_id is not None
        size = _DHT_MESSAGE_BYTES + _RELAY_OVERHEAD_BYTES + payload_bytes
        now = self.network.loop.now
        self.network.control_meter(self.owner_id).record_sent(now, size)
        gateway_meter = self.network.control_meter(self.gateway_id)
        gateway_meter.record_received(now, size)
        gateway_meter.record_sent(now, size)  # response leg
        self.network.control_meter(self.owner_id).record_received(now, size)

    # --- directory operations ---------------------------------------------
    def publish_entry(self, entry: DirectoryEntry) -> Optional[RouteResult]:
        """Publish our directory entry under our SOUP ID.

        Failed publishes (responsible node unreachable) back off
        exponentially: while the backoff window is open further attempts
        are deferred without touching the overlay, so a node does not
        hammer a dead neighbourhood with republish traffic.  Returns None
        for a deferred attempt.
        """
        now = self.network.loop.now
        if self._publish_failures and now < self._publish_backoff_until:
            self.publishes_deferred += 1
            return None
        entry_point = self._dht_entry_point()
        route = self.overlay.publish(entry_point, entry.soup_id, entry)
        self._charge_route(route, entry.size_bytes())
        if self.is_mobile:
            self._charge_relay(entry.size_bytes())
        if route.delivered:
            self._publish_failures = 0
        else:
            self._publish_failures += 1
            delay = min(
                _REPUBLISH_CAP_S,
                _REPUBLISH_BASE_S * 2.0 ** (self._publish_failures - 1),
            )
            self._publish_backoff_until = now + delay
        return route

    def lookup_entry(self, soup_id: int) -> Tuple[Optional[DirectoryEntry], RouteResult]:
        """Look up another user's directory entry."""
        entry_point = self._dht_entry_point()
        entry, route = self.overlay.lookup(entry_point, soup_id)
        response_bytes = entry.size_bytes() if entry is not None else 0
        self._charge_route(route, response_bytes)
        if self.is_mobile:
            self._charge_relay(response_bytes)
        return entry, route

    # --- direct channels -------------------------------------------------------
    def send_object(self, obj: SoupObject) -> None:
        """Send a SOUP object over a direct channel."""
        self.network.send(self.owner_id, obj.dest, obj, obj.size_bytes())

    def send_bytes(self, dest: int, obj: SoupObject, size_bytes: int) -> None:
        """Send an object whose payload size is accounted explicitly (large
        transfers such as replica pushes)."""
        self.network.send(self.owner_id, dest, obj, size_bytes)

    def send_bytes_reliable(
        self,
        dest: int,
        obj: SoupObject,
        size_bytes: int,
        on_ack: Optional[Callable[[int, object], None]] = None,
        on_giveup: Optional[Callable[[int, object, str], None]] = None,
    ) -> None:
        """Send with acknowledgement, retries, and circuit breaking.

        Update pushes and replica transfers go through here: a lost or
        unacked send is retried per the endpoint's policy, and repeated
        failures feed the failure detector (which drives proactive mirror
        repair).  Falls back to a plain send when no endpoint is wired.
        """
        if self.endpoint is None:
            self.network.send(self.owner_id, dest, obj, size_bytes)
            return
        self.endpoint.send_reliable(
            dest, obj, size_bytes, on_ack=on_ack, on_giveup=on_giveup
        )
