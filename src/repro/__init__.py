"""repro — a reproduction of SOUP (Middleware 2014).

SOUP (the Self-Organized Universe of People) is a decentralized online
social network in which every user's data is replicated at a small,
dynamically selected set of other participants — the *mirrors* — so that
the data stays highly available without central servers, permanent storage
providers, or per-user fees.

Top-level entry points:

* :class:`repro.core.SoupConfig` — protocol parameters (α, β, ε, θ, c …).
* :func:`repro.sim.run_scenario` / :class:`repro.sim.ScenarioConfig` — the
  large-scale replication simulator behind the paper's Sec. 5 figures.
* :class:`repro.node.SoupNode` — the full protocol middleware (Sec. 6).
* :class:`repro.deploy.Deployment` — the 31-node deployment emulation
  (Sec. 7).
* :mod:`repro.graphs` — the three evaluation datasets (Table 3).
* :mod:`repro.baselines` — PeerSoN / Safebook / Cachet models (Tables 1, 4).

See DESIGN.md for the complete system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

import logging

# Library convention: a silent handler so instrumented modules can log to
# "repro.*" without forcing output on consumers; the CLI's --log-level flag
# attaches a real handler.
logging.getLogger("repro").addHandler(logging.NullHandler())

from repro.core.config import SoupConfig
from repro.sim.engine import run_scenario
from repro.sim.scenario import OnlineDistribution, ScenarioConfig

__version__ = "1.0.0"

__all__ = [
    "SoupConfig",
    "run_scenario",
    "OnlineDistribution",
    "ScenarioConfig",
    "__version__",
]
