"""Extensions from the paper's discussion section (Sec. 8).

The paper closes with three concrete improvement directions; each is
implemented here on top of the unchanged core:

* :mod:`repro.extensions.ties` — **expressive social relations**: tie
  strengths replace the binary friend bit; experience sets from close
  friends carry more weight, which further dampens slander from
  weakly-tied infiltrators, and the social filter β can scale with the
  relation's strength.
* :mod:`repro.extensions.bandwidth` — **extended recommendations**:
  friends also report the bandwidth observed at mirrors, and selection
  breaks availability ties toward faster mirrors for better QoS.
* :mod:`repro.coding` — **large profiles** via (n, k) erasure coding
  (its own package; see there).
"""

from repro.extensions.bandwidth import (
    BandwidthTracker,
    qos_adjusted_ranking,
    simulate_qos_benefit,
)
from repro.extensions.ties import (
    TieStrengthModel,
    tie_adjusted_beta,
    weigh_reports_by_tie,
)

__all__ = [
    "BandwidthTracker",
    "qos_adjusted_ranking",
    "simulate_qos_benefit",
    "TieStrengthModel",
    "tie_adjusted_beta",
    "weigh_reports_by_tie",
]
