"""Bandwidth-aware extended recommendations (paper Sec. 8).

"SOUP can be extended in a way that a user's friend also reports the
bandwidth available at the mirrors, which is then considered during mirror
selection.  Ultimately, this could lead to a better quality of service for
users requesting data from mirrors."

Implemented here:

* :class:`BandwidthTracker` — per-mirror EWMA of the bandwidth friends
  report (riding on the ``bandwidth_kb_s`` field of experience reports).
* :func:`qos_adjusted_ranking` — reshapes a candidate ranking so that
  *availability stays primary* and bandwidth breaks near-ties: the rank is
  multiplied by a bounded bandwidth factor.
* :func:`simulate_qos_benefit` — the extension experiment: a population of
  mirrors with heterogeneous uplinks; selection with and without the QoS
  factor at the same ε; reports achieved availability and mean bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SoupConfig
from repro.core.experience import ExperienceReport
from repro.core.selection import select_mirrors


class BandwidthTracker:
    """EWMA of reported per-mirror bandwidth (KB/s)."""

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self._smoothing = smoothing
        self._estimates: Dict[int, float] = {}

    def ingest_reports(self, reports: Iterable[ExperienceReport]) -> None:
        for report in reports:
            if report.bandwidth_kb_s is None:
                continue
            old = self._estimates.get(report.mirror)
            if old is None:
                self._estimates[report.mirror] = report.bandwidth_kb_s
            else:
                self._estimates[report.mirror] = (
                    (1 - self._smoothing) * old
                    + self._smoothing * report.bandwidth_kb_s
                )

    def estimate(self, mirror: int) -> Optional[float]:
        return self._estimates.get(mirror)

    def known_mirrors(self) -> List[int]:
        return list(self._estimates)


def qos_adjusted_ranking(
    ranking: Sequence[Tuple[int, float]],
    tracker: BandwidthTracker,
    qos_weight: float = 0.25,
    reference_kb_s: float = 500.0,
) -> List[Tuple[int, float]]:
    """Fold bandwidth into candidate ranks, availability staying primary.

    Each rank is multiplied by ``(1 - w) + w * min(1, bw/reference)``; a
    mirror with no bandwidth estimate keeps a neutral factor, so the base
    protocol's behaviour is the ``qos_weight = 0`` special case.
    """
    if not 0.0 <= qos_weight < 1.0:
        raise ValueError(f"qos_weight must be in [0, 1), got {qos_weight}")
    adjusted = []
    for mirror, rank in ranking:
        bandwidth = tracker.estimate(mirror)
        if bandwidth is None:
            factor = 1.0
        else:
            factor = (1.0 - qos_weight) + qos_weight * min(
                1.0, bandwidth / reference_kb_s
            )
        adjusted.append((mirror, rank * factor))
    adjusted.sort(key=lambda pair: -pair[1])
    return adjusted


@dataclass
class QosExperimentResult:
    """Outcome of one selection policy in the QoS experiment."""

    mean_mirror_bandwidth_kb_s: float
    estimated_availability: float
    mirror_count: float


def simulate_qos_benefit(
    n_mirrors: int = 200,
    n_selectors: int = 100,
    qos_weight: float = 0.25,
    seed: int = 0,
) -> Dict[str, QosExperimentResult]:
    """Compare selection with and without the bandwidth extension.

    Mirrors get independent availability (power-law-ish) and bandwidth
    (log-normal uplinks, uncorrelated with availability).  Selectors know
    noisy availability estimates and friend-reported bandwidths; both
    policies select with the same ε.
    """
    rng = np.random.default_rng(seed)
    py_rng = random.Random(seed)
    config = SoupConfig()

    availability = np.clip(rng.beta(1.5, 2.5, size=n_mirrors) + 0.1, 0.05, 0.98)
    bandwidth = np.clip(rng.lognormal(5.5, 0.8, size=n_mirrors), 20, 3000)  # KB/s

    outcomes: Dict[str, QosExperimentResult] = {}
    for policy, weight in (("baseline", 0.0), ("qos", qos_weight)):
        chosen_bandwidth: List[float] = []
        chosen_error: List[float] = []
        chosen_count: List[int] = []
        for selector in range(n_selectors):
            noise = rng.normal(0, 0.05, size=n_mirrors)
            estimates = np.clip(availability + noise, 0.01, 0.99)
            ranking = [(m, float(estimates[m])) for m in range(n_mirrors)]

            tracker = BandwidthTracker()
            tracker.ingest_reports(
                ExperienceReport(
                    reporter=0,
                    mirror=m,
                    observations=3,
                    availability=float(estimates[m]),
                    bandwidth_kb_s=float(bandwidth[m]),
                )
                for m in range(n_mirrors)
            )
            if weight > 0:
                ranking = qos_adjusted_ranking(ranking, tracker, qos_weight=weight)

            result = select_mirrors(
                ranking, friends=[], config=config, rng=py_rng
            )
            mirrors = result.mirrors
            if not mirrors:
                continue
            chosen_bandwidth.append(float(np.mean([bandwidth[m] for m in mirrors])))
            perr = float(np.prod([1.0 - availability[m] for m in mirrors]))
            chosen_error.append(perr)
            chosen_count.append(len(mirrors))

        outcomes[policy] = QosExperimentResult(
            mean_mirror_bandwidth_kb_s=float(np.mean(chosen_bandwidth)),
            estimated_availability=float(1.0 - np.mean(chosen_error)),
            mirror_count=float(np.mean(chosen_count)),
        )
    return outcomes
