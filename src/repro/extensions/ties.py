"""Tie-strength-aware SOUP (paper Sec. 8, "Use of social relations").

"Friend relations in OSNs are multi-faceted and the existence of the
relation itself only contributes very little to its tie strength" [33].
The extension: during mirror selection "SOUP could prefer closely related
users represented by a strong tie. The selecting node could value their
experience sets more than those of mere acquaintances, which could further
reduce the impact of manipulated experience sets. Or, the value of the
social filter β could be adjusted to the strength of the relation."

Implemented here:

* :class:`TieStrengthModel` — per-edge strengths in (0, 1], sampled
  heavy-tailed (most ties weak, few strong — the Gilbert-Karahalios
  observation), with infiltration edges (attacker↔victim) drawn weak,
  because sybil/slander identities rarely earn strong ties [24, 31].
* :func:`weigh_reports_by_tie` — scales experience reports by the tie to
  the reporter (plugged into :class:`repro.core.ranking.RegularRanker`
  through the report ``weight`` field).
* :func:`tie_adjusted_beta` — a per-friend social-filter boost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.experience import ExperienceReport


def _edge_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass
class TieStrengthModel:
    """Tie strengths over a friendship edge set."""

    #: Beta-distribution shape for honest ties: right-skewed, most weak.
    honest_alpha: float = 1.2
    honest_beta: float = 2.8
    #: Infiltration ties (attacker edges) are uniformly weak.
    infiltration_max: float = 0.3
    minimum: float = 0.02

    def __post_init__(self) -> None:
        self._strengths: Dict[Tuple[int, int], float] = {}

    def assign(
        self,
        edges: Iterable[Tuple[int, int]],
        rng: np.random.Generator,
        attacker_ids: Optional[Set[int]] = None,
    ) -> None:
        """Sample a strength for every edge; attacker edges drawn weak."""
        attacker_ids = attacker_ids or set()
        edges = list(edges)
        honest_draws = rng.beta(self.honest_alpha, self.honest_beta, size=len(edges))
        weak_draws = rng.uniform(self.minimum, self.infiltration_max, size=len(edges))
        for (a, b), honest, weak in zip(edges, honest_draws, weak_draws):
            infiltration = a in attacker_ids or b in attacker_ids
            strength = weak if infiltration else max(self.minimum, honest)
            self._strengths[_edge_key(a, b)] = float(strength)

    def strength(self, a: int, b: int) -> float:
        """The tie strength between two users (0 if not friends)."""
        return self._strengths.get(_edge_key(a, b), 0.0)

    def set_strength(self, a: int, b: int, strength: float) -> None:
        if not 0.0 <= strength <= 1.0:
            raise ValueError(f"tie strength must be in [0, 1], got {strength}")
        self._strengths[_edge_key(a, b)] = strength

    def __len__(self) -> int:
        return len(self._strengths)

    def mean_strength(self) -> float:
        if not self._strengths:
            return 0.0
        return float(np.mean(list(self._strengths.values())))


def weigh_reports_by_tie(
    reports: Iterable[ExperienceReport],
    receiver: int,
    ties: TieStrengthModel,
    floor: float = 0.1,
) -> List[ExperienceReport]:
    """Scale each report's weight by the receiver's tie to the reporter.

    ``floor`` keeps even acquaintances minimally audible, so a node with
    only weak ties still converges (no discrimination — Sec. 4.1).
    """
    weighted = []
    for report in reports:
        strength = ties.strength(receiver, report.reporter)
        weight = report.weight * max(floor, strength)
        weighted.append(
            ExperienceReport(
                reporter=report.reporter,
                mirror=report.mirror,
                observations=report.observations,
                availability=report.availability,
                weight=weight,
                bandwidth_kb_s=report.bandwidth_kb_s,
            )
        )
    return weighted


def tie_adjusted_beta(base_beta: float, strength: float) -> float:
    """Per-friend social-filter boost: β grows with the tie strength.

    A strength-0.5 tie receives the paper's base β; stronger ties get a
    proportionally larger boost, weaker ties approach no boost (β → 1).
    """
    if base_beta < 1.0:
        raise ValueError(f"beta must be >= 1, got {base_beta}")
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    return 1.0 + (base_beta - 1.0) * 2.0 * strength
