"""The metrics registry: process-wide named counters, gauges, histograms.

Subsystems register metrics by name on first use (``registry.counter(...)``
creates on miss), so instrumented code never needs a registry threaded
through constructors — it asks :func:`get_registry` for the current one.
The simulator pushes a fresh registry for the duration of a run (keeping
runs isolated and per-run snapshots meaningful) while long-lived worlds —
the deployment emulation, library consumers — use the default process
registry.

Naming convention (see docs/OBSERVABILITY.md): dot-separated
``<subsystem>.<object>.<aspect>`` in lowercase, e.g. ``dht.route.hops``,
``net.failures.unreachable``, ``engine.selection.churn``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default histogram bucket upper bounds (``le``); covers hop counts,
#: epoch latencies and score distributions without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 100.0, 300.0, 1000.0,
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are cumulative-upper-bound (``le``) style; values above the
    last bound land in the implicit overflow bucket.  Quantiles are
    estimated from bucket boundaries — compact, deterministic, no sample
    storage.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-boundary estimate of the ``q``-quantile (0..1)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative += self.bucket_counts[index]
            if cumulative >= target:
                return bound
        return self.maximum if self.maximum is not None else self.buckets[-1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
        }

    def state_dict(self) -> Dict[str, object]:
        """Full internal state — unlike :meth:`summary`, this keeps the raw
        bucket counts, so histograms can be merged across processes without
        losing quantile resolution."""
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one."""
        if list(state["buckets"]) != list(self.buckets):
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ "
                f"({state['buckets']} vs {list(self.buckets)})"
            )
        for index, count in enumerate(state["bucket_counts"]):
            self.bucket_counts[index] += int(count)
        self.count += int(state["count"])
        self.total += float(state["total"])
        if state["min"] is not None:
            self.minimum = (
                float(state["min"])
                if self.minimum is None
                else min(self.minimum, float(state["min"]))
            )
        if state["max"] is not None:
            self.maximum = (
                float(state["max"])
                if self.maximum is None
                else max(self.maximum, float(state["max"]))
            )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use; snapshot-able."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --- registration (create on miss) --------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def _check_free(self, name: str, own_table: Dict[str, Metric]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own_table and name in table:
                raise ValueError(f"metric {name!r} already registered with another type")

    # --- introspection -------------------------------------------------
    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def snapshot_scalars(self) -> Dict[str, float]:
        """Counters and gauges by name, plus histogram counts/means —
        the compact per-epoch snapshot shape."""
        snap: Dict[str, float] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, histogram in self._histograms.items():
            snap[f"{name}.count"] = float(histogram.count)
            snap[f"{name}.mean"] = histogram.mean
        return dict(sorted(snap.items()))

    def snapshot(self) -> Dict[str, object]:
        """Full snapshot: scalar values and complete histogram summaries."""
        snap: Dict[str, object] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, histogram in self._histograms.items():
            snap[name] = histogram.summary()
        return dict(sorted(snap.items()))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # --- cross-process transport ---------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-safe full registry state for shipping across a process
        boundary (sweep workers return this; the orchestrator merges it).
        Deterministically ordered so serialized states compare bytewise."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].state_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a :meth:`state_dict` from another process (or run) into this
        registry: counters add, histograms merge bucket-wise, gauges take
        the incoming value (last write wins, as within one process)."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name, buckets=hist_state["buckets"]).merge_state(
                hist_state
            )

    @classmethod
    def merged(cls, states: Iterable[Dict[str, object]]) -> "MetricsRegistry":
        """A fresh registry holding the fold of many :meth:`state_dict`\\ s.

        This is the streaming-aggregation primitive of the live
        observability plane: each node keeps its own registry, the harness
        re-merges the per-node states every epoch.  Counter and histogram
        merges are exact (sums and bucket-wise adds), so the merge order
        does not affect the result.
        """
        registry = cls()
        for state in states:
            registry.merge_state(state)
        return registry


#: Registry stack: the default process registry at the bottom; simulation
#: runs push their own so concurrent/successive runs do not mix counts.
_STACK: List[MetricsRegistry] = [MetricsRegistry()]


def get_registry() -> MetricsRegistry:
    return _STACK[-1]


def push_registry(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    registry = registry if registry is not None else MetricsRegistry()
    _STACK.append(registry)
    return registry


def pop_registry() -> MetricsRegistry:
    if len(_STACK) == 1:
        raise RuntimeError("cannot pop the default process registry")
    return _STACK.pop()


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    registry = push_registry(registry)
    try:
        yield registry
    finally:
        if _STACK and _STACK[-1] is registry:
            pop_registry()
