"""Profiling hooks: wall-clock spans over real hot paths.

Unlike tracing and metrics — which live inside the simulated world and
must stay deterministic — profiling measures how long *our code* takes on
the host machine: selection rounds, DHT routing, crypto, full epoch
steps.  It is therefore strictly an outside-the-simulation concern, off by
default, and designed so the disabled path costs one attribute read and a
branch per call site (the <5 % overhead guard in
``benchmarks/test_profiling_overhead.py`` keeps it honest).

Usage::

    from repro.obs.profiling import PROFILER

    with PROFILER.span("engine.selection_round"):
        ...                      # cheap no-op when PROFILER.enabled is False

    if PROFILER.enabled:         # hottest paths: skip even the no-op span
        with PROFILER.span("dht.route"):
            return self._route(...)
    return self._route(...)
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class _NullSpan:
    """Shared do-nothing span for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.record(self._name, time.perf_counter() - self._start)


class Profiler:
    """Accumulates wall-clock time per named phase."""

    def __init__(self) -> None:
        self.enabled = False
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    def span(self, name: str):
        """A context manager timing the block (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def record(self, name: str, elapsed_s: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + elapsed_s
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def report_lines(self, top_level: Optional[str] = None) -> List[str]:
        """Per-phase breakdown table, widest share first.

        ``top_level`` names the phase whose total defines 100 % (e.g. the
        full epoch step); without it, shares are relative to the largest
        phase total.
        """
        if not self._totals:
            return ["profile: no spans recorded"]
        denominator = (
            self._totals.get(top_level, 0.0)
            if top_level is not None
            else max(self._totals.values())
        )
        denominator = denominator or max(self._totals.values())
        lines = [
            f"{'phase':<28} {'calls':>8} {'total s':>10} {'mean ms':>10} {'share':>7}"
        ]
        for name in sorted(self._totals, key=self._totals.get, reverse=True):
            total = self._totals[name]
            count = self._counts[name]
            mean_ms = 1000.0 * total / count if count else 0.0
            share = 100.0 * total / denominator if denominator else 0.0
            lines.append(
                f"{name:<28} {count:>8} {total:>10.3f} {mean_ms:>10.3f} {share:>6.1f}%"
            )
        return lines


#: The process-wide profiler; CLI ``--profile`` enables it.
PROFILER = Profiler()
