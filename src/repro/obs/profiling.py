"""Profiling hooks: nestable wall/CPU phase timers over real hot paths.

Unlike tracing and metrics — which live inside the simulated world and
must stay deterministic — profiling measures how long *our code* takes on
the host machine: selection rounds, protective dropping, DHT routing,
crypto, network delivery, full epoch steps.  It is therefore strictly an
outside-the-simulation concern, off by default, and designed so the
disabled path costs one attribute read and a branch per call site (the
<5 % overhead guard in ``benchmarks/test_profiling_overhead.py`` keeps it
honest).

Spans nest: entering ``engine.dropping`` inside ``engine.selection_round``
inside ``engine.epoch`` accumulates under the folded path
``engine.epoch;engine.selection_round;engine.dropping`` — exactly the
``stack count`` format flamegraph tooling consumes (see
:mod:`repro.obs.perf` for the exporters).  Each finished span adds its
wall *and* CPU (``time.process_time``) elapsed to its path, and — when an
epoch is set via :meth:`Profiler.set_epoch` — to that epoch's bucket, so
per-epoch phase breakdowns (``perf_profile`` trace events, ``soup perf
--by-epoch``) come for free.

Usage::

    from repro.obs.profiling import PROFILER

    with PROFILER.span("engine.selection_round"):
        ...                      # cheap no-op when PROFILER.enabled is False

    if PROFILER.enabled:         # hottest paths: skip even the no-op span
        with PROFILER.span("dht.route"):
            return self._route(...)
    return self._route(...)

Accumulator state is a commutative monoid under :meth:`Profiler.merge_state`
(exact for call counts, float-sum for elapsed time) — the same invariant
the metrics registry guarantees — so per-worker phase timings from a
process-pool sweep fold into one breakdown in any order.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

#: Histogram buckets (seconds) used when ``feed_metrics`` routes finished
#: spans into the current :class:`~repro.obs.registry.MetricsRegistry`.
PHASE_HISTOGRAM_BUCKETS = (
    1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Cap on retained per-span events (Chrome trace export); beyond this the
#: accumulators keep counting but individual events are dropped.
MAX_SPAN_EVENTS = 250_000


class _NullSpan:
    """Shared do-nothing span for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_profiler", "_name", "_start", "_cpu_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0
        self._cpu_start = 0.0

    def __enter__(self) -> "_Span":
        self._profiler._push(self._name)
        self._cpu_start = time.process_time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._start
        cpu = time.process_time() - self._cpu_start
        self._profiler._pop(wall, cpu, self._start)


class Profiler:
    """Nestable wall/CPU accumulators per named phase.

    All state is keyed by *folded path* (``a;b;c`` — the span stack at the
    time the span ran); :meth:`totals` / :meth:`counts` aggregate by leaf
    name for the flat per-phase view the CLI report renders.
    """

    def __init__(self) -> None:
        self.enabled = False
        #: When True, the engine emits one ``perf_profile`` trace event per
        #: epoch (only if a tracer is also enabled).  Off by default so
        #: enabling phase timers never perturbs a trace byte-for-byte.
        self.trace = False
        #: When True, every finished span also observes its wall seconds
        #: into the current registry's ``perf.phase.<leaf>`` histogram.
        self.feed_metrics = False
        #: When True, individual span events are retained (bounded by
        #: :data:`MAX_SPAN_EVENTS`) for Chrome trace export.
        self.record_events = False
        self._wall: Dict[str, float] = {}
        self._cpu: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._stack: List[str] = []
        self._epoch: Optional[int] = None
        self._by_epoch: Dict[int, Dict[str, float]] = {}
        #: (path, start_offset_s, wall_s, cpu_s) tuples when recording.
        self._events: List[Tuple[str, float, float, float]] = []
        self._origin = time.perf_counter()

    # --- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._wall.clear()
        self._cpu.clear()
        self._counts.clear()
        self._stack.clear()
        self._epoch = None
        self._by_epoch.clear()
        self._events.clear()
        self._origin = time.perf_counter()

    # --- span machinery --------------------------------------------------
    def span(self, name: str):
        """A context manager timing the block (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _push(self, name: str) -> None:
        stack = self._stack
        path = stack[-1] + ";" + name if stack else name
        stack.append(path)

    def _pop(self, wall: float, cpu: float, start: float) -> None:
        path = self._stack.pop()
        self._wall[path] = self._wall.get(path, 0.0) + wall
        self._cpu[path] = self._cpu.get(path, 0.0) + cpu
        self._counts[path] = self._counts.get(path, 0) + 1
        epoch = self._epoch
        if epoch is not None:
            bucket = self._by_epoch.get(epoch)
            if bucket is None:
                bucket = self._by_epoch[epoch] = {}
            bucket[path] = bucket.get(path, 0.0) + wall
        if self.record_events and len(self._events) < MAX_SPAN_EVENTS:
            self._events.append((path, start - self._origin, wall, cpu))
        if self.feed_metrics:
            from repro.obs.registry import get_registry

            leaf = path.rsplit(";", 1)[-1]
            get_registry().histogram(
                "perf.phase." + leaf, buckets=PHASE_HISTOGRAM_BUCKETS
            ).observe(wall)

    def record(self, name: str, elapsed_s: float) -> None:
        """Accumulate a pre-measured duration under ``name`` (wall only,
        at the current nesting context)."""
        path = self._stack[-1] + ";" + name if self._stack else name
        self._wall[path] = self._wall.get(path, 0.0) + elapsed_s
        self._cpu[path] = self._cpu.get(path, 0.0)
        self._counts[path] = self._counts.get(path, 0) + 1

    # --- epoch bucketing -------------------------------------------------
    def set_epoch(self, epoch: Optional[int]) -> None:
        """Bucket subsequently finished spans under ``epoch`` (None stops
        bucketing).  The engine calls this once per epoch when enabled."""
        self._epoch = epoch

    def epoch_phases(self, epoch: int) -> Dict[str, float]:
        """Leaf-aggregated wall seconds for one epoch's bucket."""
        merged: Dict[str, float] = {}
        for path, wall in self._by_epoch.get(epoch, {}).items():
            leaf = path.rsplit(";", 1)[-1]
            merged[leaf] = merged.get(leaf, 0.0) + wall
        return merged

    def epochs(self) -> List[int]:
        return sorted(self._by_epoch)

    # --- views -----------------------------------------------------------
    def folded(self) -> Dict[str, float]:
        """Wall seconds keyed by folded path (``a;b;c``)."""
        return dict(self._wall)

    def folded_cpu(self) -> Dict[str, float]:
        return dict(self._cpu)

    def folded_counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def events(self) -> List[Tuple[str, float, float, float]]:
        """Recorded (path, start_offset_s, wall_s, cpu_s) span events."""
        return list(self._events)

    def _aggregate(self, source: Dict[str, float]) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for path, value in source.items():
            leaf = path.rsplit(";", 1)[-1]
            merged[leaf] = merged.get(leaf, 0.0) + value
        return merged

    def totals(self) -> Dict[str, float]:
        """Wall seconds aggregated by leaf phase name."""
        return self._aggregate(self._wall)

    def cpu_totals(self) -> Dict[str, float]:
        """CPU seconds aggregated by leaf phase name."""
        return self._aggregate(self._cpu)

    def counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for path, value in self._counts.items():
            leaf = path.rsplit(";", 1)[-1]
            merged[leaf] = merged.get(leaf, 0) + value
        return merged

    def self_times(self) -> Dict[str, float]:
        """Exclusive wall seconds per folded path: each path's total minus
        the time spent in its direct children.  Sums to the total measured
        time, which is what makes per-phase *shares* well defined."""
        child_sums: Dict[str, float] = {}
        for path, wall in self._wall.items():
            if ";" in path:
                parent = path.rsplit(";", 1)[0]
                child_sums[parent] = child_sums.get(parent, 0.0) + wall
        return {
            path: max(0.0, wall - child_sums.get(path, 0.0))
            for path, wall in self._wall.items()
        }

    # --- mergeable state (sweep workers) ---------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Full accumulator state, JSON-safe, for cross-process merge."""
        return {
            "wall": dict(self._wall),
            "cpu": dict(self._cpu),
            "counts": dict(self._counts),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another profiler's ``state_dict()`` into this one.

        Counts merge exactly; wall/CPU are float sums, so — like histogram
        totals in the metrics registry — permuting the merge order agrees
        to ulp-level rounding (property-tested in tests/obs/test_perf.py).
        """
        if not state:
            return
        for path, value in state.get("wall", {}).items():
            self._wall[path] = self._wall.get(path, 0.0) + float(value)
        for path, value in state.get("cpu", {}).items():
            self._cpu[path] = self._cpu.get(path, 0.0) + float(value)
        for path, value in state.get("counts", {}).items():
            self._counts[path] = self._counts.get(path, 0) + int(value)

    @classmethod
    def merged(cls, states) -> "Profiler":
        profiler = cls()
        for state in states:
            profiler.merge_state(state)
        return profiler

    # --- reporting -------------------------------------------------------
    def report_lines(self, top_level: Optional[str] = None) -> List[str]:
        """Per-phase breakdown table, widest share first.

        ``top_level`` names the phase whose total defines 100 % (e.g. the
        full epoch step); without it, shares are relative to the largest
        phase total.
        """
        totals = self.totals()
        if not totals:
            return ["profile: no spans recorded"]
        cpu_totals = self.cpu_totals()
        counts = self.counts()
        denominator = (
            totals.get(top_level, 0.0)
            if top_level is not None
            else max(totals.values())
        )
        denominator = denominator or max(totals.values())
        lines = [
            f"{'phase':<28} {'calls':>8} {'total s':>10} {'cpu s':>10} "
            f"{'mean ms':>10} {'share':>7}"
        ]
        for name in sorted(totals, key=totals.get, reverse=True):
            total = totals[name]
            count = counts[name]
            mean_ms = 1000.0 * total / count if count else 0.0
            share = 100.0 * total / denominator if denominator else 0.0
            lines.append(
                f"{name:<28} {count:>8} {total:>10.3f} "
                f"{cpu_totals.get(name, 0.0):>10.3f} "
                f"{mean_ms:>10.3f} {share:>6.1f}%"
            )
        return lines


#: The process-wide profiler; CLI ``--profile`` enables it.
PROFILER = Profiler()
