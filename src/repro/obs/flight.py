"""Per-node flight recorders and the live-cluster observability plane.

The simulator traces into one file from one thread of control; a live
cluster cannot.  Every node must keep telemetry that survives its own
death, and events on different nodes carry no shared clock.  This module
closes that gap with three pieces:

* :class:`LamportClock` — the classic logical clock.  Each node ticks on
  every local event and folds in the clock carried by each received
  message, so sorting the union of all nodes' events by
  ``(lamport, node, seq)`` yields a valid linear extension of the
  happened-before order (a send is always merged before its receive).
* :class:`FlightRecorder` — a per-node bounded ring of recent events
  plus an append-only JSONL file written with **one unbuffered write
  per line**.  A SIGKILL can truncate only the record being written;
  every previously written line survives, and the trace reader already
  tolerates a partial final line.
* :class:`LiveObservability` — the harness-side plane: one recorder per
  node plus one for the harness itself, a :class:`RouterTracer` that
  routes the process-global ``get_tracer()`` stream to whichever node is
  currently *scoped* (transport dispatch scopes the receiving node, the
  harness scopes the node it is driving), per-node metric registries
  with exact merge semantics, and an atomically replaced
  ``heartbeat.json`` for the ``soup live top`` watch view.

Trace-context propagation: :meth:`LiveObservability.on_send` emits a
``live_msg_send`` event and returns a compact ``(msg_id, lamport,
t_send)`` tuple that :class:`repro.deploy.live.transport.LiveTransport`
pickles into the wire envelope; :meth:`LiveObservability.on_receive`
folds the carried lamport into the receiver's clock and emits the
matching ``live_msg_recv`` — the pair is what lets
:func:`repro.obs.analysis.merge_trace_files` reconstruct cross-node
causal chains from a crashed cluster's flight recorders.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TRACE_SCHEMA_VERSION, Tracer

#: Node id used by the harness's own flight recorder.  Negative so it can
#: never collide with a cluster node.
HARNESS_NODE_ID = -1

#: Ring capacity: how many recent events each node keeps in memory (the
#: file on disk is unbounded; the ring feeds post-mortem "last moments").
DEFAULT_FLIGHT_CAPACITY = 512

#: Sub-second log-spaced latency buckets for live message round-trips.
#: Kept local so ``repro.obs`` does not import from ``repro.deploy``.
LIVE_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)

#: The currently scoped node id.  A ``ContextVar`` (not a plain attribute)
#: so concurrent asyncio tasks each see the scope their task was created
#: under — transport dispatch for node A cannot leak attribution into a
#: task delivering to node B.
_SCOPE: ContextVar[Optional[int]] = ContextVar("soup_obs_scope", default=None)


class LamportClock:
    """A logical clock: ``tick`` on local events, ``observe`` on receive."""

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def tick(self) -> int:
        self.value += 1
        return self.value

    def observe(self, remote: int) -> int:
        """Fold a remote clock in (receive rule, without the local tick —
        the subsequent :meth:`tick` by the event emitter supplies the +1)."""
        if remote > self.value:
            self.value = remote
        return self.value


class FlightRecorder:
    """One node's crash-surviving event log: bounded ring + JSONL appends.

    Every record is a valid v1 trace line stamped with the recorder's
    ``node`` id (unless the event names a different subject node) and a
    fresh ``lamport`` timestamp.  File writes are single ``write()`` calls
    on an unbuffered binary handle, so a kill mid-run loses at most the
    one in-flight record and never corrupts earlier lines.

    The first record of every file is a ``node_lifecycle`` header
    announcing which node the file belongs to —
    :func:`repro.obs.analysis.merge_trace_files` uses it to reject two
    files claiming the same node id.
    """

    __slots__ = ("node_id", "path", "clock", "_ring", "_seq", "_file", "closed")

    def __init__(
        self,
        node_id: int,
        path: str,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        clock: Optional[LamportClock] = None,
    ) -> None:
        self.node_id = node_id
        self.path = path
        self.clock = clock if clock is not None else LamportClock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._file = open(path, "ab", buffering=0)
        self.closed = False
        self.emit("node_lifecycle", node=node_id, state="recorder_opened",
                  t=time.time())

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the full stamped record (the caller
        may read back the ``lamport`` it was assigned, e.g. to carry it
        in a message envelope)."""
        record: Dict[str, Any] = {
            "v": TRACE_SCHEMA_VERSION,
            "seq": self._seq,
            "event": event,
            "node": self.node_id,
            "lamport": self.clock.tick(),
        }
        record.update(fields)
        self._seq += 1
        self._ring.append(record)
        if not self.closed:
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            self._file.write(line.encode("utf-8") + b"\n")
        return record

    def recent(self) -> List[Dict[str, Any]]:
        """The ring's contents, oldest first."""
        return list(self._ring)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._file.close()


class RouterTracer(Tracer):
    """A :class:`~repro.obs.trace.Tracer` that routes every emitted event
    to the currently scoped node's flight recorder (the harness recorder
    when nothing is scoped).  Installed process-wide via ``set_tracer``,
    it makes all existing instrumentation sites — repair rounds, failure
    declarations, circuit opens — flow into per-node files with zero
    changes to the emitting subsystems."""

    __slots__ = ("_plane",)

    def __init__(self, plane: "LiveObservability") -> None:
        super().__init__()
        self._plane = plane
        self.enabled = True

    def emit(self, event: str, **fields: Any) -> None:
        self._plane.current_recorder().emit(event, **fields)

    def close(self) -> None:
        # Recorder lifecycles belong to the plane, not the tracer.
        self.enabled = False


class LiveObservability:
    """The harness-side observability plane for one resilience run."""

    def __init__(
        self,
        out_dir: str,
        node_ids: Sequence[int],
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        latency_buckets: Sequence[float] = LIVE_LATENCY_BUCKETS,
    ) -> None:
        self.out_dir = out_dir
        self.flight_dir = os.path.join(out_dir, "flight")
        os.makedirs(self.flight_dir, exist_ok=True)
        self._latency_buckets = tuple(latency_buckets)
        self._recorders: Dict[int, FlightRecorder] = {}
        for node_id in node_ids:
            path = os.path.join(self.flight_dir, f"node-{node_id:05d}.jsonl")
            self._recorders[node_id] = FlightRecorder(node_id, path, capacity)
        self.harness = FlightRecorder(
            HARNESS_NODE_ID,
            os.path.join(self.flight_dir, "harness.jsonl"),
            capacity,
        )
        self._registries: Dict[int, MetricsRegistry] = {}
        self._msg_counts: Dict[int, int] = {}
        self.tracer = RouterTracer(self)

    # --- scoping -------------------------------------------------------
    @contextmanager
    def scope(self, node_id: Optional[int]) -> Iterator[None]:
        """Attribute events emitted inside the block to ``node_id``."""
        token = _SCOPE.set(node_id)
        try:
            yield
        finally:
            _SCOPE.reset(token)

    def current_recorder(self) -> FlightRecorder:
        recorder = self._recorders.get(_SCOPE.get())
        return recorder if recorder is not None else self.harness

    def recorder_for(self, node_id: int) -> FlightRecorder:
        recorder = self._recorders.get(node_id)
        return recorder if recorder is not None else self.harness

    def registry_for(self, node_id: int) -> MetricsRegistry:
        registry = self._registries.get(node_id)
        if registry is None:
            registry = self._registries[node_id] = MetricsRegistry()
        return registry

    # --- trace-context propagation (the LiveTransport hooks) ----------
    def on_send(
        self, sender: int, receiver: int, kind: str, size: int
    ) -> Tuple[str, int, float]:
        """Record a message leaving ``sender``; returns the trace context
        ``(msg_id, lamport, t_send)`` to carry in the wire envelope."""
        count = self._msg_counts.get(sender, 0)
        self._msg_counts[sender] = count + 1
        msg_id = f"m{sender}-{count}"
        now = time.time()
        record = self.recorder_for(sender).emit(
            "live_msg_send", peer=receiver, msg_id=msg_id, kind=kind,
            bytes=size, t=now,
        )
        registry = self.registry_for(sender)
        registry.counter("live.msgs.sent").inc()
        registry.counter("live.bytes.sent").inc(size)
        return (msg_id, record["lamport"], now)

    def on_receive(
        self, receiver: int, sender: int, ctx: Tuple[str, int, float], kind: str
    ) -> None:
        """Record a message arriving at ``receiver``, folding the carried
        Lamport clock into the receiver's — the step that makes the merged
        trace order every send before its receive."""
        msg_id, lamport, t_send = ctx
        recorder = self.recorder_for(receiver)
        recorder.clock.observe(int(lamport))
        now = time.time()
        latency = max(0.0, now - float(t_send))
        recorder.emit(
            "live_msg_recv", peer=sender, msg_id=str(msg_id), kind=kind,
            latency_s=latency, t=now,
        )
        registry = self.registry_for(receiver)
        registry.counter("live.msgs.recv").inc()
        registry.histogram(
            "live.msg.latency_s", buckets=self._latency_buckets
        ).observe(latency)

    # --- streaming aggregation -----------------------------------------
    def epoch_sync(self, epoch: int) -> None:
        """Harness-mediated clock sync at an epoch boundary: every clock
        observes the cluster maximum (the harness acting as communicator),
        bounding clock skew to one epoch's event spread so the merged
        order tracks epoch order."""
        clocks = [self.harness.clock] + [
            recorder.clock for recorder in self._recorders.values()
        ]
        frontier = max(clock.value for clock in clocks)
        for clock in clocks:
            clock.observe(frontier)

    def merged_registry(self) -> MetricsRegistry:
        """All nodes' metrics re-merged (exact: counters add, histograms
        merge bucket-wise, so merge order cannot change the result)."""
        return MetricsRegistry.merged(
            self._registries[node].state_dict()
            for node in sorted(self._registries)
        )

    def heartbeat(
        self,
        epoch: int,
        epochs_total: int,
        extra: Optional[Dict[str, Any]] = None,
        done: bool = False,
    ) -> Dict[str, Any]:
        """Atomically replace ``<out_dir>/heartbeat.json`` with the current
        cluster view (`soup live top` polls this file)."""
        from pathlib import Path

        from repro.runtime.store import atomic_write_json

        merged = self.merged_registry()
        doc: Dict[str, Any] = {
            "schema": "soup-live-heartbeat/v1",
            "t": time.time(),
            "epoch": epoch,
            "epochs": epochs_total,
            "done": done,
            "nodes": {
                str(node_id): {
                    "lamport": recorder.clock.value,
                    "events": recorder._seq,
                }
                for node_id, recorder in sorted(self._recorders.items())
            },
            "metrics": merged.snapshot(),
        }
        if extra:
            doc.update(extra)
        atomic_write_json(Path(self.out_dir) / "heartbeat.json", doc)
        return doc

    # --- lifecycle ------------------------------------------------------
    def trace_paths(self) -> List[str]:
        """Every flight-recorder file, harness last."""
        paths = [
            self._recorders[node].path for node in sorted(self._recorders)
        ]
        paths.append(self.harness.path)
        return paths

    def close(self) -> None:
        self.tracer.close()
        for recorder in self._recorders.values():
            recorder.close()
        self.harness.close()
