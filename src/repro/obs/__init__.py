"""Structured observability for the SOUP reproduction.

Three pillars, all deterministic inside the simulated world and
near-zero-cost when disabled:

* :mod:`repro.obs.trace` — typed, schema-versioned event tracing to JSONL
  (``Tracer``).  Events are stamped with sim epochs / sim seconds supplied
  by the emitting subsystem, never with wallclock, so two runs with the
  same seed produce byte-identical traces.
* :mod:`repro.obs.registry` — named counters, gauges and histograms
  (``MetricsRegistry``) that subsystems register into; the simulator
  snapshots the registry per epoch into its result.
* :mod:`repro.obs.profiling` — nestable ``span()`` wall/CPU phase timers
  over real hot paths behind ``--profile``.  Wall-clock never leaks into
  the simulated world: profiling only measures how long *our code* takes
  to run it.
* :mod:`repro.obs.perf` — the performance observability plane on top of
  the phase timers: folded-stack and Chrome trace export (``soup perf``)
  and the per-phase breakdowns embedded in ``soup-bench/v2`` artifacts.

Naming conventions and the event schema are documented in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.analysis import (
    AnomalyConfig,
    Finding,
    TraceAnalysis,
    TraceMergeError,
    TraceReadReport,
    analyze_events,
    analyze_trace,
    detect_churn_storms,
    detect_mirror_flapping,
    detect_repair_loops,
    iter_trace,
    merge_trace_files,
    open_trace,
    owner_timeline,
)
from repro.obs.flight import (
    HARNESS_NODE_ID,
    FlightRecorder,
    LamportClock,
    LiveObservability,
    RouterTracer,
)
from repro.obs.perf import (
    PhaseReport,
    capture_phases,
    chrome_trace,
    folded_lines,
    phase_breakdown,
    phase_shares,
)
from repro.obs.profiling import PROFILER, Profiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    pop_registry,
    push_registry,
    use_registry,
)
from repro.obs.trace import (
    EVENT_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    open_trace_sink,
    set_tracer,
    tracing,
    validate_event,
    validate_trace_file,
)

__all__ = [
    "AnomalyConfig",
    "Finding",
    "FlightRecorder",
    "HARNESS_NODE_ID",
    "LamportClock",
    "LiveObservability",
    "PROFILER",
    "PhaseReport",
    "Profiler",
    "capture_phases",
    "chrome_trace",
    "folded_lines",
    "phase_breakdown",
    "phase_shares",
    "RouterTracer",
    "TraceAnalysis",
    "TraceMergeError",
    "TraceReadReport",
    "analyze_events",
    "analyze_trace",
    "merge_trace_files",
    "detect_churn_storms",
    "detect_mirror_flapping",
    "detect_repair_loops",
    "iter_trace",
    "open_trace",
    "owner_timeline",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "push_registry",
    "pop_registry",
    "use_registry",
    "EVENT_SCHEMAS",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "get_tracer",
    "open_trace_sink",
    "set_tracer",
    "tracing",
    "validate_event",
    "validate_trace_file",
]
