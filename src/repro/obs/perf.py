"""The performance observability plane: phase capture and profile export.

Built on the nestable phase timers in :mod:`repro.obs.profiling`, this
module turns accumulated spans into the three consumable shapes the
tooling around ``soup perf`` expects:

* **folded stacks** (:func:`folded_lines`) — ``a;b;c <count>`` lines,
  the input format of standard flamegraph tooling (``flamegraph.pl``,
  speedscope, inferno).  Counts are integer microseconds of wall time.
* **Chrome trace events** (:func:`chrome_trace`) — a ``traceEvents``
  document of complete (``"ph": "X"``) events from individually recorded
  spans, loadable in ``chrome://tracing`` / Perfetto.
* **phase breakdowns** (:func:`phase_breakdown`) — exclusive (self-time)
  wall seconds per short phase name (``dropping``, ``selection``,
  ``scoring``, ``sync``, …), the per-benchmark payload embedded in
  ``soup-bench/v2`` artifacts and the input to regression attribution.

:func:`capture_phases` scopes a clean profiler run around a block — the
benchmark suite uses it so every ``BENCH_*.json`` carries a per-phase
breakdown without disturbing whatever profiling state the caller had.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.profiling import PROFILER, Profiler


def folded_lines(profiler: Optional[Profiler] = None) -> List[str]:
    """Folded-stack lines (``path count``), count = µs of wall time.

    Exclusive time per stack: flamegraph tooling sums children itself, so
    each line carries only the self-time of its exact stack.
    """
    profiler = profiler or PROFILER
    lines = []
    for path, self_wall in sorted(profiler.self_times().items()):
        micros = int(round(self_wall * 1e6))
        if micros > 0:
            lines.append(f"{path} {micros}")
    return lines


def chrome_trace(profiler: Optional[Profiler] = None) -> Dict[str, Any]:
    """A Chrome trace-event document from recorded spans.

    Requires the profiler to have run with ``record_events = True``
    (``soup perf --chrome`` sets it); without events the document is valid
    but empty.  Timestamps/durations are microseconds per the trace-event
    format; every span lands on one thread track since the engine is
    single-threaded.
    """
    profiler = profiler or PROFILER
    events = []
    for path, start_s, wall_s, cpu_s in profiler.events():
        events.append({
            "name": path.rsplit(";", 1)[-1],
            "cat": "phase",
            "ph": "X",
            "ts": round(start_s * 1e6, 3),
            "dur": round(wall_s * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": {"stack": path, "cpu_ms": round(cpu_s * 1e3, 6)},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _short(leaf: str) -> str:
    """``engine.selection_round`` -> ``selection_round`` — breakdown keys
    drop the subsystem prefix so attribution reads as the paper's phase
    names (selection, scoring, dropping, sync, …)."""
    return leaf.rsplit(".", 1)[-1]


def phase_breakdown(profiler: Optional[Profiler] = None) -> Dict[str, float]:
    """Exclusive wall seconds per short phase name.

    Self-times (not inclusive totals) keyed by the leaf phase with its
    subsystem prefix stripped: the values are disjoint, sum to the total
    measured time, and therefore yield well-defined per-phase *shares* —
    what :func:`repro.bench.artifacts.compare` attributes regressions
    against.
    """
    profiler = profiler or PROFILER
    merged: Dict[str, float] = {}
    for path, self_wall in profiler.self_times().items():
        name = _short(path.rsplit(";", 1)[-1])
        merged[name] = merged.get(name, 0.0) + self_wall
    return merged


def phase_shares(phases: Dict[str, float]) -> Dict[str, float]:
    """Normalize a breakdown to shares in [0, 1] (empty if no time)."""
    total = sum(phases.values())
    if total <= 0.0:
        return {}
    return {name: wall / total for name, wall in phases.items()}


class PhaseReport:
    """What :func:`capture_phases` hands back after the block ran."""

    def __init__(self) -> None:
        #: Exclusive wall seconds per short phase name.
        self.phases: Dict[str, float] = {}
        #: Wall seconds per folded path.
        self.folded: Dict[str, float] = {}
        #: Full mergeable accumulator state (``Profiler.state_dict()``).
        self.state: Dict[str, Any] = {}


@contextmanager
def capture_phases(profiler: Optional[Profiler] = None) -> Iterator[PhaseReport]:
    """Run the block under a clean, enabled profiler; restore on exit.

    The global profiler's prior accumulators, enabled flag and option
    flags are saved and restored, so a benchmark capturing its own phase
    breakdown neither inherits nor clobbers an outer ``--profile``
    session.  (Epoch buckets and recorded events from the outer session
    are folded away — only the mergeable accumulators survive the swap.)
    """
    profiler = profiler or PROFILER
    saved_state = profiler.state_dict()
    saved_flags = (
        profiler.enabled, profiler.trace,
        profiler.feed_metrics, profiler.record_events,
    )
    profiler.reset()
    profiler.enabled = True
    profiler.trace = False
    profiler.feed_metrics = False
    profiler.record_events = False
    report = PhaseReport()
    try:
        yield report
    finally:
        report.state = profiler.state_dict()
        report.folded = profiler.folded()
        report.phases = phase_breakdown(profiler)
        profiler.reset()
        profiler.merge_state(saved_state)
        (profiler.enabled, profiler.trace,
         profiler.feed_metrics, profiler.record_events) = saved_flags
