"""Structured event tracing: typed events, schema-versioned JSONL output.

A :class:`Tracer` receives typed events from the instrumented subsystems
(engine, mirror managers, DHT, reliability layer, network) and writes one
JSON object per line.  Every line carries the schema version ``v``, a
monotonically increasing ``seq`` and the event type; time fields (``epoch``
for the epoch simulator, ``t`` for the event-loop world's sim seconds) are
supplied by the *emitting* subsystem — the tracer itself never reads
wallclock, which is what makes traces byte-identical across same-seed runs.

The disabled tracer (the default) rejects events with a single attribute
check, so instrumentation sites cost one branch when tracing is off.
"""

from __future__ import annotations

import gzip
import io
import json
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterable, Iterator, List, Optional, Set, Union

#: Bumped whenever an event's required fields change shape.
TRACE_SCHEMA_VERSION = 1

#: Event schema: event type -> (required fields, optional fields), each a
#: mapping of field name to the accepted JSON-decoded type(s).  Fields not
#: listed are rejected in strict validation only if the event type itself
#: is unknown; known events may carry extra context fields.
_NUM = (int, float)
EVENT_SCHEMAS: Dict[str, Dict[str, Dict[str, tuple]]] = {
    "mirror_selected": {
        "required": {"owner": (int,), "mirrors": (list,)},
        "optional": {"estimated_error": _NUM + (type(None),), "epoch": (int,), "t": _NUM},
    },
    "replica_pushed": {
        "required": {"owner": (int,), "mirror": (int,)},
        "optional": {"epoch": (int,), "t": _NUM, "bytes": (int,), "attempt": (int,)},
    },
    "replica_dropped": {
        "required": {"owner": (int,), "mirror": (int,), "reason": (str,)},
        "optional": {"epoch": (int,), "t": _NUM},
    },
    "dht_lookup": {
        "required": {"key": (int,), "responsible": (int,), "hops": (list,), "delivered": (bool,)},
        "optional": {"alternates": (int,), "t": _NUM, "found": (bool,)},
    },
    "retry": {
        "required": {"kind": (str,)},
        "optional": {
            "dest": (int,), "attempt": (int,), "reason": (str,), "owner": (int,),
            "mirror": (int,), "epoch": (int,), "t": _NUM, "msg_id": (int,),
        },
    },
    "circuit_open": {
        "required": {"dest": (int,)},
        "optional": {"origin": (int,), "t": _NUM},
    },
    "failure_declared": {
        "required": {"peer": (int,)},
        "optional": {"by": (int,), "reason": (str,), "epoch": (int,), "t": _NUM},
    },
    "repair_round": {
        "required": {"owner": (int,)},
        "optional": {"dead": (list,), "replacements": (int,), "epoch": (int,), "t": _NUM},
    },
    "invariant_checked": {
        "required": {"epoch": (int,), "ok": (bool,)},
        "optional": {"checks": (int,), "violation": (str,)},
    },
    "update_dropped": {
        "required": {"target": (int,), "origin": (int,), "reason": (str,)},
        "optional": {"t": _NUM},
    },
    # One per measured epoch: how many joined benign owners were (un)available
    # and exactly which owners were unavailable — the ground truth the trace
    # analyzer reconstructs per-owner unavailability windows from.
    "availability_sample": {
        "required": {
            "epoch": (int,), "population": (int,), "available": (int,),
            "unavailable": (list,),
        },
        "optional": {},
    },
    # Sweep telemetry (repro.runtime): live per-task progress written to the
    # run directory.  These carry wallclock durations — they describe the
    # orchestrator, not the simulated world, so the determinism contract
    # does not extend to them.
    "sweep_task_started": {
        "required": {"task": (str,), "key": (str,)},
        "optional": {"pending": (int,), "total": (int,)},
    },
    "sweep_task_finished": {
        "required": {"task": (str,), "key": (str,), "status": (str,)},
        "optional": {"seconds": _NUM, "error": (str,), "done": (int,), "total": (int,)},
    },
    # Emitted once when a sweep stops early on SIGTERM/KeyboardInterrupt:
    # the final telemetry record of an interrupted invocation (the events
    # file stays a valid v1 trace, and --resume picks up from the
    # artifacts already checkpointed).
    "sweep_interrupted": {
        "required": {"done": (int,), "total": (int,)},
        "optional": {"running": (int,), "reason": (str,)},
    },
    # Live-cluster observability (repro.obs.flight + repro.deploy.live):
    # one send/recv pair per LiveTransport message.  ``msg_id`` is the
    # trace-context id carried in the wire envelope; ``lamport`` is the
    # emitting node's Lamport clock, which is what lets the analyzer merge
    # per-node flight-recorder files into one causally ordered trace.
    "live_msg_send": {
        "required": {"peer": (int,), "msg_id": (str,)},
        "optional": {
            "node": (int,), "lamport": (int,), "kind": (str,),
            "bytes": (int,), "t": _NUM,
        },
    },
    "live_msg_recv": {
        "required": {"peer": (int,), "msg_id": (str,)},
        "optional": {
            "node": (int,), "lamport": (int,), "latency_s": _NUM,
            "kind": (str,), "t": _NUM,
        },
    },
    # One per executed FaultPlan step: what the chaos controller actually
    # did, to whom, and when — both the epoch it was scheduled for and the
    # wall-clock moment it ran, so resilience failures are attributable
    # without log archaeology.
    "chaos_action": {
        "required": {"kind": (str,), "epoch": (int,)},
        "optional": {
            "nodes": (list,), "t": _NUM, "scheduled_epoch": (int,),
            "seconds": _NUM, "rate": _NUM, "groups": (int,), "sizes": (list,),
        },
    },
    # Node state transitions on the live cluster (started/killed/paused/
    # resumed/stopped) as seen by the harness or the chaos controller.
    "node_lifecycle": {
        "required": {"node": (int,), "state": (str,)},
        "optional": {
            "epoch": (int,), "t": _NUM, "reason": (str,), "lamport": (int,),
        },
    },
    # Phase-timing profile (repro.obs.perf): one per measured epoch when
    # the profiler's ``trace`` flag is on.  ``phases`` maps phase name to
    # wall seconds spent in it during that epoch.  Like sweep telemetry,
    # these carry wallclock durations — they describe our code's speed,
    # not the simulated world, so the byte-identical determinism contract
    # does not extend to them (and they are never emitted unless
    # explicitly requested, keeping default traces unperturbed).
    "perf_profile": {
        "required": {"phases": (dict,)},
        "optional": {
            "epoch": (int,), "t": _NUM, "node": (int,), "lamport": (int,),
        },
    },
}

#: Fields present on every trace line, added by the tracer itself.
_ENVELOPE_FIELDS = {"v", "seq", "event"}


def validate_event(obj: Any) -> Optional[str]:
    """Validate one decoded trace line; returns an error string or None."""
    if not isinstance(obj, dict):
        return f"trace line is not an object: {obj!r}"
    for field in ("v", "seq", "event"):
        if field not in obj:
            return f"missing envelope field {field!r}"
    if obj["v"] != TRACE_SCHEMA_VERSION:
        return f"unsupported schema version {obj['v']!r}"
    event = obj["event"]
    schema = EVENT_SCHEMAS.get(event)
    if schema is None:
        return f"unknown event type {event!r}"
    for field, types in schema["required"].items():
        if field not in obj:
            return f"{event}: missing required field {field!r}"
        if not isinstance(obj[field], types) or (
            bool not in types and isinstance(obj[field], bool)
        ):
            return f"{event}: field {field!r} has wrong type {type(obj[field]).__name__}"
    for field, types in schema["optional"].items():
        if field in obj and not isinstance(obj[field], types):
            return f"{event}: field {field!r} has wrong type {type(obj[field]).__name__}"
    return None


class _GzipTextSink(io.TextIOWrapper):
    """A text sink writing deterministic gzip: no filename, zero mtime, so
    the compressed bytes (not just the decompressed ones) are identical
    across same-seed runs.  Closes the underlying raw file too, which
    :class:`gzip.GzipFile` does not when handed a ``fileobj``."""

    def __init__(self, path: str) -> None:
        self._raw = open(path, "wb")
        member = gzip.GzipFile(filename="", mode="wb", fileobj=self._raw, mtime=0)
        super().__init__(member, encoding="utf-8", newline="\n")

    def close(self) -> None:
        try:
            super().close()
        finally:
            if not self._raw.closed:
                self._raw.close()


def open_trace_sink(path: str) -> IO[str]:
    """Open ``path`` for trace writing; ``.gz`` paths get gzip compression."""
    if path.endswith(".gz"):
        return _GzipTextSink(path)
    return open(path, "w", encoding="utf-8")


def validate_trace_file(path: str) -> List[str]:
    """Validate a JSONL(.gz) trace file; returns per-line error messages.

    Streams through :func:`repro.obs.analysis.iter_trace` — constant
    memory regardless of trace size, gzip-aware, and a truncated final
    line (killed writer) is reported as an error rather than crashing.
    """
    from repro.obs.analysis import TraceReadReport, iter_trace

    report = TraceReadReport()
    for _ in iter_trace(path, validate=True, report=report,
                        tolerate_truncation=False):
        pass
    return report.errors


class Tracer:
    """Writes typed events as schema-versioned JSONL.

    ``sink`` is any text file-like object (or None for a disabled tracer);
    ``event_filter`` restricts output to the given event types; ``strict``
    validates every event against :data:`EVENT_SCHEMAS` at emit time and
    raises on mismatch (used by tests; off in production paths).
    """

    __slots__ = ("enabled", "_sink", "_filter", "_strict", "_seq", "_owns_sink")

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        event_filter: Optional[Iterable[str]] = None,
        strict: bool = False,
    ) -> None:
        self._sink = sink
        self._filter: Optional[Set[str]] = (
            set(event_filter) if event_filter is not None else None
        )
        if self._filter is not None:
            unknown = self._filter - set(EVENT_SCHEMAS)
            if unknown:
                raise ValueError(f"unknown trace event type(s): {sorted(unknown)}")
        self._strict = strict
        self._seq = 0
        self._owns_sink = False
        self.enabled = sink is not None

    @classmethod
    def to_path(
        cls,
        path: str,
        event_filter: Optional[Iterable[str]] = None,
        strict: bool = False,
    ) -> "Tracer":
        """Trace to ``path``; a ``.gz`` suffix (``trace.jsonl.gz``) writes
        deterministic gzip so large sweep traces don't blow the disk."""
        tracer = cls(open_trace_sink(path), event_filter, strict)
        tracer._owns_sink = True
        return tracer

    def emit(self, event: str, **fields: Any) -> None:
        """Record one event (no-op unless enabled and passing the filter)."""
        if not self.enabled:
            return
        if self._filter is not None and event not in self._filter:
            return
        record = {"v": TRACE_SCHEMA_VERSION, "seq": self._seq, "event": event}
        record.update(fields)
        if self._strict:
            problem = validate_event(record)
            if problem is not None:
                raise ValueError(f"invalid trace event: {problem}")
        self._seq += 1
        self._sink.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
        self.enabled = False


#: The process-wide current tracer; disabled by default.
_CURRENT: Tracer = Tracer()


def get_tracer() -> Tracer:
    return _CURRENT


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` (None = disabled) as current; returns the old one."""
    global _CURRENT
    old = _CURRENT
    _CURRENT = tracer if tracer is not None else Tracer()
    return old


@contextmanager
def tracing(
    target: Union[str, IO[str]],
    event_filter: Optional[Iterable[str]] = None,
    strict: bool = False,
) -> Iterator[Tracer]:
    """Trace everything inside the block to ``target`` (path or file)."""
    if isinstance(target, str):
        tracer = Tracer.to_path(target, event_filter, strict)
    else:
        tracer = Tracer(target, event_filter, strict)
    old = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(old)
        tracer.close()
