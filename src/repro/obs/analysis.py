"""Trace analytics: stream a JSONL trace back into protocol insight.

PR 3 made every subsystem *emit* schema-versioned trace events; this module
*consumes* them.  One bounded-memory streaming pass over a trace file
(plain or gzip, tolerant of the truncated final line a killed run leaves)
reconstructs:

* **Replica lifecycle state machines** per (owner, mirror) pair —
  pushed → dropped/failure_declared → repaired — with the transition
  history that explains how each replica ended where it did.
* **Unavailability windows** per owner from ``availability_sample``
  events, each with a **causal chain**: the drop / failure / repair
  events that preceded the window, or a typed fallback cause
  (``no_mirrors_yet``, ``mirrors_offline``) when the protocol emitted
  nothing — an owner can be dark simply because every mirror is offline.
* **Derived analytics**: per-owner availability attribution, DHT lookup
  hop/failure distributions, retry and circuit-breaker hot-spot
  rankings.
* **Rule-based anomaly findings**: repair loops (same owner repairing
  ≥ k times within w epochs), churn storms (drop bursts), and
  mirror-set flapping (the same (owner, mirror) edge toggling in and
  out of the selected set).

The detectors are pure functions over plain collections so the simulator
engine can run the same rules over its in-memory event stream and export
matching anomaly counts into ``SimulationResult`` (see
``repro.sim.engine``).  ``soup trace analyze | timeline | anomalies``
drive everything from the CLI.
"""

from __future__ import annotations

import gzip
import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.trace import validate_event

#: Event types that can explain an owner's unavailability window, keyed by
#: the field naming the affected owner.
_CAUSAL_OWNER_FIELDS = {
    "replica_dropped": "owner",
    "failure_declared": "by",
    "repair_round": "owner",
    "update_dropped": "target",
}

#: How many recent causal events are retained per owner for attribution.
_CAUSE_BUFFER = 16

#: Transition history kept per (owner, mirror) pair; counts are exact even
#: when the stored history is capped (bounded memory on adversarial traces).
_MAX_TRANSITIONS = 256


# ----------------------------------------------------------------------
# streaming reader
# ----------------------------------------------------------------------
@dataclass
class TraceReadReport:
    """What one streaming pass saw: volumes, per-line errors, truncation."""

    lines: int = 0
    events: int = 0
    errors: List[str] = field(default_factory=list)
    #: True when the file ends in a partial line (killed writer) or a
    #: truncated gzip stream.
    truncated: bool = False


def open_trace(path: str) -> IO[str]:
    """Open a trace file for streaming reads; ``.gz`` paths decompress."""
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_trace(
    source: Union[str, IO[str], Iterable[str]],
    validate: bool = False,
    report: Optional[TraceReadReport] = None,
    tolerate_truncation: bool = True,
) -> Iterator[Dict[str, Any]]:
    """Yield decoded trace events from ``source``, one line at a time.

    ``source`` is a path (gzip-aware by extension), an open text handle,
    or any iterable of lines.  Memory is bounded: nothing beyond the
    current line is held.  A final line that fails to decode *and* lacks
    its trailing newline is the signature of a killed writer — with
    ``tolerate_truncation`` it only sets ``report.truncated``; without,
    it is reported as an error.  Mid-file garbage is always an error.
    With ``validate``, every event is checked against ``EVENT_SCHEMAS``
    and invalid ones are reported and skipped.
    """
    if report is None:
        report = TraceReadReport()
    handle: Union[IO[str], Iterable[str]]
    owns = False
    if isinstance(source, str):
        handle = open_trace(source)
        owns = True
    else:
        handle = source
    try:
        number = 0
        try:
            for line in handle:
                number += 1
                report.lines = number
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    obj = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    if not line.endswith("\n"):
                        # Partial final line: the writer died mid-record.
                        report.truncated = True
                        if not tolerate_truncation:
                            report.errors.append(
                                f"line {number}: truncated final line "
                                f"(killed run?): {exc}"
                            )
                    else:
                        report.errors.append(
                            f"line {number}: invalid JSON ({exc})"
                        )
                    continue
                if validate:
                    problem = validate_event(obj)
                    if problem is not None:
                        report.errors.append(f"line {number}: {problem}")
                        continue
                report.events += 1
                yield obj
        except (EOFError, gzip.BadGzipFile, OSError) as exc:
            # A killed gzip writer leaves a stream that raises mid-read.
            report.truncated = True
            if not tolerate_truncation:
                report.errors.append(
                    f"line {number + 1}: truncated compressed stream ({exc})"
                )
    finally:
        if owns:
            handle.close()


# ----------------------------------------------------------------------
# merging per-node flight-recorder files
# ----------------------------------------------------------------------
class TraceMergeError(ValueError):
    """Raised when a set of per-node trace files cannot be merged —
    e.g. two files both claim to be the same node's flight recorder."""


def _merge_key(obj: Dict[str, Any]) -> Tuple[int, int, int]:
    lamport = obj.get("lamport")
    node = obj.get("node")
    seq = obj.get("seq")
    return (
        lamport if isinstance(lamport, int) else 0,
        node if isinstance(node, int) else -1,
        seq if isinstance(seq, int) else 0,
    )


def _claimed_node(first: Dict[str, Any], path: str) -> object:
    """Which node a flight file claims to belong to.

    Flight recorders open every file with a ``node_lifecycle``
    ``state="recorder_opened"`` header naming their node.  Files without
    the header (hand-built or sim traces) make no claim and are keyed by
    path, so they never collide.
    """
    if (
        first.get("event") == "node_lifecycle"
        and first.get("state") == "recorder_opened"
        and isinstance(first.get("node"), int)
    ):
        return first["node"]
    return f"path:{path}"


def merge_trace_files(
    paths: Sequence[str],
    validate: bool = False,
    report: Optional[TraceReadReport] = None,
) -> Iterator[Dict[str, Any]]:
    """Stream the union of per-node trace files in causal order.

    Each file must be internally ordered by its node's Lamport clock
    (flight recorders are, by construction: every emit ticks the clock).
    The global order is a k-way heap merge by ``(lamport, node, seq)``
    — a valid linear extension of happened-before, since a message's
    receive event always carries a larger Lamport timestamp than its
    send.  Memory is bounded by the number of files, not trace length.

    Two files claiming the same node id (duplicate flight recorders —
    a run directory mixing two runs, or a copy-paste accident) raise
    :class:`TraceMergeError` up front rather than silently interleaving
    one node's history with an impostor's.
    """
    if report is None:
        report = TraceReadReport()
    streams: List[Iterator[Dict[str, Any]]] = []
    claims: Dict[object, str] = {}
    for path in paths:
        stream = iter_trace(path, validate=validate, report=report)
        first = next(stream, None)
        if first is None:
            continue
        claim = _claimed_node(first, path)
        if claim in claims:
            raise TraceMergeError(
                f"trace files {claims[claim]!r} and {path!r} both claim "
                f"node id {claim}: refusing to merge two flight recorders "
                f"for the same node"
            )
        claims[claim] = path

        def chain(head: Dict[str, Any], tail: Iterator[Dict[str, Any]]
                  ) -> Iterator[Dict[str, Any]]:
            yield head
            yield from tail

        streams.append(chain(first, stream))
    return heapq.merge(*streams, key=_merge_key)


# ----------------------------------------------------------------------
# replica lifecycle state machines
# ----------------------------------------------------------------------
@dataclass
class LifecycleTransition:
    """One edge of a replica's state machine."""

    state: str  # pushed | dropped | failure_declared | repaired
    epoch: Optional[int]
    detail: Optional[str] = None  # e.g. the drop reason


@dataclass
class ReplicaLifecycle:
    """The reconstructed life of one (owner, mirror) replica pairing."""

    owner: int
    mirror: int
    transitions: List[LifecycleTransition] = field(default_factory=list)
    #: Exact totals (the stored transition history is capped).
    pushes: int = 0
    drops: int = 0
    failures: int = 0
    repairs: int = 0
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    truncated_history: bool = False

    @property
    def state(self) -> str:
        """The pair's final observed state (``none`` before any event)."""
        return self.transitions[-1].state if self.transitions else "none"

    def record(self, state: str, epoch: Optional[int], detail: Optional[str] = None) -> None:
        if state == "pushed":
            self.pushes += 1
        elif state == "dropped":
            self.drops += 1
            if detail:
                self.drop_reasons[detail] = self.drop_reasons.get(detail, 0) + 1
        elif state == "failure_declared":
            self.failures += 1
        elif state == "repaired":
            self.repairs += 1
        if len(self.transitions) < _MAX_TRANSITIONS:
            self.transitions.append(LifecycleTransition(state, epoch, detail))
        else:
            self.truncated_history = True


# ----------------------------------------------------------------------
# unavailability windows + causal attribution
# ----------------------------------------------------------------------
@dataclass
class CausalEvent:
    """One event implicated in an unavailability window's causal chain."""

    event: str
    epoch: Optional[int]
    detail: Optional[str] = None


@dataclass
class UnavailabilityWindow:
    """A maximal run of epochs in which one owner's data was unreachable."""

    owner: int
    start_epoch: int
    end_epoch: int  # inclusive
    #: ``replica_loss`` (protocol events precede the window),
    #: ``mirrors_offline`` (owner had mirrors, nothing was dropped), or
    #: ``no_mirrors_yet`` (the owner never completed a selection).
    cause: str = "mirrors_offline"
    causes: List[CausalEvent] = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.end_epoch - self.start_epoch + 1


@dataclass
class OwnerAttribution:
    """Per-owner row of the availability attribution table."""

    owner: int
    unavailable_epochs: int
    windows: int
    longest_window: int
    causes: Dict[str, int]  # cause -> epochs attributed to it
    drop_reasons: Dict[str, int]  # drop reason -> count across chains


# ----------------------------------------------------------------------
# anomaly detection (pure rule functions, shared with the engine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AnomalyConfig:
    """Thresholds for the rule-based detectors."""

    #: Repair loop: same owner repairing >= k times within w epochs.
    repair_loop_count: int = 3
    repair_loop_window: int = 12
    #: Churn storm: >= k replica drops within w consecutive epochs.
    churn_storm_drops: int = 20
    churn_storm_window: int = 2
    #: Flapping: one (owner, mirror) edge toggling selection >= k times.
    flap_toggles: int = 4


@dataclass
class Finding:
    """One typed anomaly-detector hit."""

    rule: str  # repair_loop | churn_storm | mirror_flapping
    subject: str  # human-stable identifier, e.g. "owner=12"
    epoch: Optional[int]
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "subject": self.subject,
            "epoch": self.epoch,
            "message": self.message,
            "data": self.data,
        }


def detect_repair_loops(
    repair_epochs_by_owner: Mapping[int, Sequence[int]],
    config: AnomalyConfig = AnomalyConfig(),
) -> List[Finding]:
    """Owners whose repair rounds cluster: >= k repairs inside w epochs.

    Repeated repair of the same owner means replacements keep dying (or
    keep being rejected) — the mirror-selection equivalent of a crash
    loop.  Emits at most one finding per owner, carrying the densest
    burst observed.
    """
    findings: List[Finding] = []
    for owner in sorted(repair_epochs_by_owner):
        epochs = sorted(repair_epochs_by_owner[owner])
        best_count, best_start = 0, 0
        left = 0
        for right in range(len(epochs)):
            while epochs[right] - epochs[left] >= config.repair_loop_window:
                left += 1
            count = right - left + 1
            if count > best_count:
                best_count, best_start = count, epochs[left]
        if best_count >= config.repair_loop_count:
            findings.append(Finding(
                rule="repair_loop",
                subject=f"owner={owner}",
                epoch=best_start,
                message=(
                    f"owner {owner} repaired {best_count}x within "
                    f"{config.repair_loop_window} epochs (from epoch "
                    f"{best_start}); replacements are not sticking"
                ),
                data={"owner": owner, "repairs": best_count,
                      "window": config.repair_loop_window,
                      "total_repairs": len(epochs)},
            ))
    return findings


def detect_churn_storms(
    drops_by_epoch: Mapping[int, int],
    config: AnomalyConfig = AnomalyConfig(),
) -> List[Finding]:
    """Epoch ranges where replica drops burst past the storm threshold.

    Overlapping storm windows are merged into one finding per burst.
    """
    findings: List[Finding] = []
    epochs = sorted(e for e, n in drops_by_epoch.items() if n > 0)
    if not epochs:
        return findings
    burst_start: Optional[int] = None
    burst_end = 0
    burst_peak = 0
    for start in epochs:
        total = sum(
            drops_by_epoch.get(e, 0)
            for e in range(start, start + config.churn_storm_window)
        )
        if total < config.churn_storm_drops:
            continue
        end = start + config.churn_storm_window - 1
        if burst_start is not None and start <= burst_end + 1:
            burst_end = max(burst_end, end)
            burst_peak = max(burst_peak, total)
            continue
        if burst_start is not None:
            findings.append(_storm_finding(burst_start, burst_end, burst_peak, config))
        burst_start, burst_end, burst_peak = start, end, total
    if burst_start is not None:
        findings.append(_storm_finding(burst_start, burst_end, burst_peak, config))
    return findings


def _storm_finding(start: int, end: int, peak: int, config: AnomalyConfig) -> Finding:
    return Finding(
        rule="churn_storm",
        subject=f"epochs={start}-{end}",
        epoch=start,
        message=(
            f"churn storm: {peak} replica drops within "
            f"{config.churn_storm_window} epochs (epochs {start}-{end})"
        ),
        data={"start_epoch": start, "end_epoch": end, "peak_drops": peak},
    )


def detect_mirror_flapping(
    toggles_by_pair: Mapping[Tuple[int, int], int],
    config: AnomalyConfig = AnomalyConfig(),
) -> List[Finding]:
    """(owner, mirror) edges that keep entering and leaving the selected
    set — wasted transfers and a symptom of an unstable ranking."""
    findings: List[Finding] = []
    for (owner, mirror) in sorted(toggles_by_pair):
        toggles = toggles_by_pair[(owner, mirror)]
        if toggles >= config.flap_toggles:
            findings.append(Finding(
                rule="mirror_flapping",
                subject=f"owner={owner} mirror={mirror}",
                epoch=None,
                message=(
                    f"mirror set flapping: mirror {mirror} toggled in/out of "
                    f"owner {owner}'s selection {toggles}x"
                ),
                data={"owner": owner, "mirror": mirror, "toggles": toggles},
            ))
    return findings


# ----------------------------------------------------------------------
# derived distributions
# ----------------------------------------------------------------------
@dataclass
class DhtLookupStats:
    """Hop and failure distributions over ``dht_lookup`` events."""

    lookups: int = 0
    delivered: int = 0
    failed: int = 0
    hops_histogram: Dict[int, int] = field(default_factory=dict)
    hops_total: int = 0

    def observe(self, hops: int, ok: bool) -> None:
        self.lookups += 1
        self.hops_total += hops
        self.hops_histogram[hops] = self.hops_histogram.get(hops, 0) + 1
        if ok:
            self.delivered += 1
        else:
            self.failed += 1

    @property
    def mean_hops(self) -> float:
        return self.hops_total / self.lookups if self.lookups else 0.0

    @property
    def failure_rate(self) -> float:
        return self.failed / self.lookups if self.lookups else 0.0


# ----------------------------------------------------------------------
# the single-pass analyzer
# ----------------------------------------------------------------------
@dataclass
class TraceAnalysis:
    """Everything one streaming pass over a trace reconstructs."""

    path: Optional[str] = None
    report: TraceReadReport = field(default_factory=TraceReadReport)
    events_by_type: Dict[str, int] = field(default_factory=dict)
    lifecycles: Dict[Tuple[int, int], ReplicaLifecycle] = field(default_factory=dict)
    windows_by_owner: Dict[int, List[UnavailabilityWindow]] = field(default_factory=dict)
    unavailable_epochs_by_owner: Dict[int, int] = field(default_factory=dict)
    #: availability_sample coverage (for cross-checks against the engine).
    samples: int = 0
    population_epochs: int = 0
    available_epochs: int = 0
    dht: DhtLookupStats = field(default_factory=DhtLookupStats)
    retries_by_kind: Dict[str, int] = field(default_factory=dict)
    retries_by_target: Dict[int, int] = field(default_factory=dict)
    circuit_opens_by_dest: Dict[int, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    #: Raw ``chaos_action`` events in stream order (live/chaos traces only).
    chaos_actions: List[Dict[str, Any]] = field(default_factory=list)
    first_epoch: Optional[int] = None
    last_epoch: Optional[int] = None

    @property
    def total_unavailable_epochs(self) -> int:
        """Owner-epochs of unavailability — matches the engine's
        ``sum(population - available)`` over the same epochs."""
        return sum(self.unavailable_epochs_by_owner.values())

    def attribution_rows(self) -> List[OwnerAttribution]:
        """The per-owner attribution table, worst owner first."""
        rows: List[OwnerAttribution] = []
        for owner, total in self.unavailable_epochs_by_owner.items():
            windows = self.windows_by_owner.get(owner, [])
            causes: Dict[str, int] = {}
            drop_reasons: Dict[str, int] = {}
            for window in windows:
                causes[window.cause] = causes.get(window.cause, 0) + window.length
                for cause in window.causes:
                    if cause.event == "replica_dropped" and cause.detail:
                        drop_reasons[cause.detail] = (
                            drop_reasons.get(cause.detail, 0) + 1
                        )
            rows.append(OwnerAttribution(
                owner=owner,
                unavailable_epochs=total,
                windows=len(windows),
                longest_window=max((w.length for w in windows), default=0),
                causes=causes,
                drop_reasons=drop_reasons,
            ))
        rows.sort(key=lambda row: (-row.unavailable_epochs, row.owner))
        return rows

    def retry_hotspots(self, top: int = 10) -> List[Tuple[int, int]]:
        """Targets attracting the most retries, ``(target, count)``."""
        ranked = sorted(
            self.retries_by_target.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:top]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "events": self.report.events,
            "errors": list(self.report.errors),
            "truncated": self.report.truncated,
            "events_by_type": dict(sorted(self.events_by_type.items())),
            "epoch_range": [self.first_epoch, self.last_epoch],
            "samples": self.samples,
            "population_epochs": self.population_epochs,
            "available_epochs": self.available_epochs,
            "total_unavailable_epochs": self.total_unavailable_epochs,
            "attribution": [
                {
                    "owner": row.owner,
                    "unavailable_epochs": row.unavailable_epochs,
                    "windows": row.windows,
                    "longest_window": row.longest_window,
                    "causes": row.causes,
                    "drop_reasons": row.drop_reasons,
                }
                for row in self.attribution_rows()
            ],
            "lifecycles": {
                f"{owner}->{mirror}": {
                    "state": cycle.state,
                    "pushes": cycle.pushes,
                    "drops": cycle.drops,
                    "failures": cycle.failures,
                    "repairs": cycle.repairs,
                    "drop_reasons": cycle.drop_reasons,
                }
                for (owner, mirror), cycle in sorted(self.lifecycles.items())
            },
            "dht": {
                "lookups": self.dht.lookups,
                "delivered": self.dht.delivered,
                "failed": self.dht.failed,
                "failure_rate": self.dht.failure_rate,
                "mean_hops": self.dht.mean_hops,
                "hops_histogram": {
                    str(h): n for h, n in sorted(self.dht.hops_histogram.items())
                },
            },
            "retries_by_kind": dict(sorted(self.retries_by_kind.items())),
            "retry_hotspots": [
                {"target": target, "retries": count}
                for target, count in self.retry_hotspots()
            ],
            "circuit_opens_by_dest": {
                str(dest): n
                for dest, n in sorted(self.circuit_opens_by_dest.items())
            },
            "findings": [finding.to_json_dict() for finding in self.findings],
            "chaos_actions": len(self.chaos_actions),
        }


def analyze_trace(
    source: Union[str, IO[str], Iterable[str]],
    config: AnomalyConfig = AnomalyConfig(),
    lookback: int = 24,
) -> TraceAnalysis:
    """One bounded-memory streaming pass: lifecycles, windows, anomalies.

    ``lookback`` caps how many epochs before a window's start a causal
    event may lie and still be blamed for it.
    """
    analysis = TraceAnalysis(path=source if isinstance(source, str) else None)
    return _analyze_into(
        analysis, iter_trace(source, report=analysis.report), config, lookback
    )


def analyze_events(
    events: Iterable[Dict[str, Any]],
    config: AnomalyConfig = AnomalyConfig(),
    lookback: int = 24,
    report: Optional[TraceReadReport] = None,
) -> TraceAnalysis:
    """Run the same single-pass analyzer over already-decoded events.

    This is how the sim-side analytics run unchanged over a *live*
    cluster's telemetry: feed it :func:`merge_trace_files` over the
    per-node flight-recorder files (passing the merge's
    :class:`TraceReadReport` through so line/error counts survive).
    """
    analysis = TraceAnalysis()
    if report is not None:
        analysis.report = report
    return _analyze_into(analysis, events, config, lookback)


def _analyze_into(
    analysis: TraceAnalysis,
    events: Iterable[Dict[str, Any]],
    config: AnomalyConfig,
    lookback: int,
) -> TraceAnalysis:
    # Streaming state, all bounded by population size (not trace length).
    recent_causes: Dict[int, Deque[CausalEvent]] = {}
    owners_selected: set = set()
    selected_sets: Dict[int, frozenset] = {}
    open_windows: Dict[int, UnavailabilityWindow] = {}
    repair_epochs: Dict[int, List[int]] = {}
    drops_by_epoch: Dict[int, int] = {}
    toggles: Dict[Tuple[int, int], int] = {}

    def lifecycle(owner: int, mirror: int) -> ReplicaLifecycle:
        pair = (owner, mirror)
        cycle = analysis.lifecycles.get(pair)
        if cycle is None:
            cycle = analysis.lifecycles[pair] = ReplicaLifecycle(owner, mirror)
        return cycle

    def note_cause(owner: int, event: str, epoch: Optional[int],
                   detail: Optional[str] = None) -> None:
        buffer = recent_causes.get(owner)
        if buffer is None:
            buffer = recent_causes[owner] = deque(maxlen=_CAUSE_BUFFER)
        buffer.append(CausalEvent(event, epoch, detail))

    for obj in events:
        event = obj.get("event")
        if not isinstance(event, str):
            continue
        analysis.events_by_type[event] = analysis.events_by_type.get(event, 0) + 1
        epoch = obj.get("epoch")
        if isinstance(epoch, int):
            if analysis.first_epoch is None or epoch < analysis.first_epoch:
                analysis.first_epoch = epoch
            if analysis.last_epoch is None or epoch > analysis.last_epoch:
                analysis.last_epoch = epoch

        if event == "replica_pushed":
            lifecycle(obj["owner"], obj["mirror"]).record("pushed", epoch)
        elif event == "replica_dropped":
            reason = obj.get("reason")
            lifecycle(obj["owner"], obj["mirror"]).record("dropped", epoch, reason)
            note_cause(obj["owner"], event, epoch, reason)
            if isinstance(epoch, int):
                drops_by_epoch[epoch] = drops_by_epoch.get(epoch, 0) + 1
        elif event == "failure_declared":
            by = obj.get("by")
            if isinstance(by, int):
                lifecycle(by, obj["peer"]).record("failure_declared", epoch)
                note_cause(by, event, epoch, obj.get("reason"))
        elif event == "repair_round":
            owner = obj["owner"]
            for dead in obj.get("dead") or ():
                if isinstance(dead, int):
                    lifecycle(owner, dead).record("repaired", epoch)
            note_cause(owner, event, epoch)
            if isinstance(epoch, int):
                repair_epochs.setdefault(owner, []).append(epoch)
        elif event == "update_dropped":
            target = obj.get("target")
            if isinstance(target, int):
                note_cause(target, event, epoch, obj.get("reason"))
        elif event == "mirror_selected":
            owner = obj["owner"]
            owners_selected.add(owner)
            new_set = frozenset(
                m for m in obj.get("mirrors") or () if isinstance(m, int)
            )
            old_set = selected_sets.get(owner, frozenset())
            for mirror in old_set.symmetric_difference(new_set):
                pair = (owner, mirror)
                toggles[pair] = toggles.get(pair, 0) + 1
            selected_sets[owner] = new_set
        elif event == "dht_lookup":
            hops = obj.get("hops")
            analysis.dht.observe(
                len(hops) if isinstance(hops, list) else 0,
                bool(obj.get("delivered")),
            )
        elif event == "retry":
            kind = obj.get("kind", "?")
            analysis.retries_by_kind[kind] = (
                analysis.retries_by_kind.get(kind, 0) + 1
            )
            target = obj.get("mirror", obj.get("dest"))
            if isinstance(target, int):
                analysis.retries_by_target[target] = (
                    analysis.retries_by_target.get(target, 0) + 1
                )
        elif event == "circuit_open":
            dest = obj.get("dest")
            if isinstance(dest, int):
                analysis.circuit_opens_by_dest[dest] = (
                    analysis.circuit_opens_by_dest.get(dest, 0) + 1
                )
        elif event == "chaos_action":
            analysis.chaos_actions.append(obj)
            # A kill is a first-class cause: the victims' subsequent
            # unavailability windows should point at the chaos action,
            # not fall back to "mirrors_offline".
            if obj.get("kind") == "kill":
                for victim in obj.get("nodes") or ():
                    if isinstance(victim, int):
                        note_cause(victim, event, epoch, "kill")
        elif event == "node_lifecycle":
            node = obj.get("node")
            state = obj.get("state")
            if isinstance(node, int) and state == "killed":
                note_cause(node, event, epoch, "killed")
        elif event == "availability_sample":
            sample_epoch = obj.get("epoch")
            if not isinstance(sample_epoch, int):
                continue
            analysis.samples += 1
            analysis.population_epochs += int(obj.get("population", 0))
            analysis.available_epochs += int(obj.get("available", 0))
            unavailable = {
                o for o in obj.get("unavailable") or () if isinstance(o, int)
            }
            for owner in unavailable:
                analysis.unavailable_epochs_by_owner[owner] = (
                    analysis.unavailable_epochs_by_owner.get(owner, 0) + 1
                )
                window = open_windows.get(owner)
                if window is not None:
                    window.end_epoch = sample_epoch
                    continue
                causes = [
                    cause
                    for cause in recent_causes.get(owner, ())
                    if cause.epoch is None
                    or cause.epoch >= sample_epoch - lookback
                ]
                if causes:
                    cause = "replica_loss"
                elif owner in owners_selected:
                    cause = "mirrors_offline"
                else:
                    cause = "no_mirrors_yet"
                window = UnavailabilityWindow(
                    owner=owner,
                    start_epoch=sample_epoch,
                    end_epoch=sample_epoch,
                    cause=cause,
                    causes=causes,
                )
                open_windows[owner] = window
                analysis.windows_by_owner.setdefault(owner, []).append(window)
            # Owners that recovered close their window at its last epoch.
            for owner in [o for o in open_windows if o not in unavailable]:
                del open_windows[owner]

    analysis.findings = (
        detect_repair_loops(repair_epochs, config)
        + detect_churn_storms(drops_by_epoch, config)
        + detect_mirror_flapping(toggles, config)
    )
    return analysis


# ----------------------------------------------------------------------
# owner timelines
# ----------------------------------------------------------------------
@dataclass
class TimelineEntry:
    """One owner-relevant event, in trace order."""

    seq: int
    epoch: Optional[int]
    event: str
    summary: str


def owner_timeline(
    source: Union[str, IO[str], Iterable[str]],
    owner: int,
    report: Optional[TraceReadReport] = None,
) -> List[TimelineEntry]:
    """Every event concerning ``owner``, streamed into a causal timeline:
    selections, pushes, drops, failures, repairs, retries, and the epochs
    where the owner's data was unavailable."""
    entries: List[TimelineEntry] = []
    unavailable_run: Optional[List[int]] = None

    def close_run() -> None:
        nonlocal unavailable_run
        if unavailable_run is None:
            return
        start, end, seq = unavailable_run[0], unavailable_run[1], unavailable_run[2]
        entries.append(TimelineEntry(
            seq, start, "unavailable",
            f"data unavailable epochs {start}-{end} ({end - start + 1} epochs)",
        ))
        unavailable_run = None

    for obj in iter_trace(source, report=report):
        event = obj.get("event")
        seq = int(obj.get("seq", -1))
        epoch = obj.get("epoch") if isinstance(obj.get("epoch"), int) else None
        summary: Optional[str] = None
        if event == "mirror_selected" and obj.get("owner") == owner:
            error = obj.get("estimated_error")
            error_text = f" err={error:.3f}" if isinstance(error, float) else ""
            summary = f"selected mirrors {obj.get('mirrors')}{error_text}"
        elif event == "replica_pushed" and obj.get("owner") == owner:
            summary = f"replica pushed to mirror {obj.get('mirror')}"
        elif event == "replica_dropped" and obj.get("owner") == owner:
            summary = (
                f"replica dropped by mirror {obj.get('mirror')} "
                f"({obj.get('reason')})"
            )
        elif event == "failure_declared" and obj.get("by") == owner:
            summary = f"declared mirror {obj.get('peer')} dead"
        elif event == "repair_round" and obj.get("owner") == owner:
            summary = (
                f"repair round: dead={obj.get('dead')} "
                f"replacements={obj.get('replacements')}"
            )
        elif event == "retry" and obj.get("owner") == owner:
            summary = (
                f"retry ({obj.get('kind')}) -> {obj.get('mirror', obj.get('dest'))} "
                f"attempt {obj.get('attempt')}"
            )
        elif event == "update_dropped" and obj.get("target") == owner:
            summary = f"update from {obj.get('origin')} dropped ({obj.get('reason')})"
        elif event == "availability_sample" and isinstance(epoch, int):
            if owner in (obj.get("unavailable") or ()):
                if unavailable_run is None:
                    unavailable_run = [epoch, epoch, seq]
                else:
                    unavailable_run[1] = epoch
            else:
                close_run()
            continue
        if summary is not None:
            close_run()
            entries.append(TimelineEntry(seq, epoch, event, summary))
    close_run()
    return entries


# ----------------------------------------------------------------------
# text rendering (the `soup trace ...` views)
# ----------------------------------------------------------------------
def render_findings(findings: Sequence[Finding]) -> List[str]:
    if not findings:
        return ["anomalies: none detected"]
    lines = [f"anomalies: {len(findings)} finding(s)"]
    for finding in findings:
        where = f" @epoch {finding.epoch}" if finding.epoch is not None else ""
        lines.append(f"  [{finding.rule}]{where} {finding.message}")
    return lines


def render_attribution(analysis: TraceAnalysis, top: int = 20) -> List[str]:
    rows = analysis.attribution_rows()
    if not rows:
        return ["unavailability: no owner was ever unavailable "
                "(or the trace carries no availability_sample events)"]
    lines = [
        f"unavailability attribution "
        f"(total {analysis.total_unavailable_epochs} owner-epochs, "
        f"{len(rows)} owners affected):",
        f"{'owner':>7} {'epochs':>7} {'windows':>8} {'longest':>8}  causes",
    ]
    for row in rows[:top]:
        causes = " ".join(
            f"{name}={epochs}" for name, epochs in sorted(row.causes.items())
        )
        if row.drop_reasons:
            reasons = ",".join(
                f"{reason}x{count}"
                for reason, count in sorted(row.drop_reasons.items())
            )
            causes += f"  drops[{reasons}]"
        lines.append(
            f"{row.owner:>7} {row.unavailable_epochs:>7} {row.windows:>8} "
            f"{row.longest_window:>8}  {causes}"
        )
    if len(rows) > top:
        lines.append(f"  ... and {len(rows) - top} more owners")
    return lines


def render_analysis(analysis: TraceAnalysis, top: int = 20) -> List[str]:
    """The full `soup trace analyze` text view."""
    lines = [
        f"trace: {analysis.report.events} events"
        + (f" ({analysis.path})" if analysis.path else ""),
    ]
    if analysis.report.truncated:
        lines.append("  note: final line truncated (killed run) — tail event lost")
    if analysis.report.errors:
        lines.append(f"  note: {len(analysis.report.errors)} undecodable line(s) skipped")
    counts = " ".join(
        f"{name}={count}"
        for name, count in sorted(analysis.events_by_type.items())
    )
    lines.append(f"  events: {counts}")
    if analysis.first_epoch is not None:
        lines.append(f"  epochs: {analysis.first_epoch}..{analysis.last_epoch}")

    lines.append("")
    lines.extend(render_attribution(analysis, top=top))

    # Lifecycle summary: aggregate the per-pair machines.
    if analysis.lifecycles:
        states: Dict[str, int] = {}
        pushes = drops = 0
        for cycle in analysis.lifecycles.values():
            states[cycle.state] = states.get(cycle.state, 0) + 1
            pushes += cycle.pushes
            drops += cycle.drops
        state_text = " ".join(
            f"{name}={count}" for name, count in sorted(states.items())
        )
        lines.append("")
        lines.append(
            f"replica lifecycles: {len(analysis.lifecycles)} (owner, mirror) "
            f"pairs, {pushes} pushes, {drops} drops; final states: {state_text}"
        )

    if analysis.dht.lookups:
        hops = " ".join(
            f"{h}:{n}" for h, n in sorted(analysis.dht.hops_histogram.items())
        )
        lines.append("")
        lines.append(
            f"dht lookups: {analysis.dht.lookups} "
            f"(failed {analysis.dht.failed}, "
            f"rate {analysis.dht.failure_rate:.3f}), "
            f"mean hops {analysis.dht.mean_hops:.2f}, histogram {hops}"
        )

    if analysis.retries_by_kind:
        kinds = " ".join(
            f"{kind}={count}"
            for kind, count in sorted(analysis.retries_by_kind.items())
        )
        lines.append("")
        lines.append(f"retries: {kinds}")
        hotspots = analysis.retry_hotspots()
        if hotspots:
            ranked = " ".join(f"{t}x{c}" for t, c in hotspots)
            lines.append(f"  hot targets: {ranked}")
    if analysis.circuit_opens_by_dest:
        ranked = sorted(
            analysis.circuit_opens_by_dest.items(),
            key=lambda item: (-item[1], item[0]),
        )[:10]
        lines.append(
            "circuit opens: "
            + " ".join(f"dest {d}x{c}" for d, c in ranked)
        )

    lines.append("")
    lines.extend(render_findings(analysis.findings))
    return lines


def render_timeline(owner: int, entries: Sequence[TimelineEntry]) -> List[str]:
    if not entries:
        return [f"owner {owner}: no events in trace"]
    lines = [f"owner {owner}: {len(entries)} timeline entries"]
    for entry in entries:
        epoch_text = f"epoch {entry.epoch:>5}" if entry.epoch is not None else " " * 11
        lines.append(f"  {epoch_text}  {entry.summary}")
    return lines
