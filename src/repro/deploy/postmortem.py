"""Post-mortem bundles: the black box of a resilience run.

After a chaos run, the harness's observability plane leaves per-node
flight recorders, a chaos log and gate results on disk.  This module
packs them into a **content-keyed bundle** — a directory named by the
SHA-256 of its evidence, so a bundle can be archived, shipped from CI as
an artifact, and verified bit-for-bit later — and implements the
``soup postmortem`` analysis over one:

* re-merge the flight recorders into a single causally ordered trace
  (:func:`repro.obs.analysis.merge_trace_files`) and run the *sim-side*
  analyzer and anomaly detectors over it, unchanged;
* correlate every chaos ``kill`` action with its consequences — failure
  declarations naming the victims, repair rounds replacing them,
  messages sent into the dead nodes that were never received, and the
  victims' unavailability windows — into typed causal chains whose
  evidence spans multiple nodes' recorders.

The bundle layout::

    bundle-<key12>/
      MANIFEST.json     # schema, content key, file hashes (written last)
      report.json       # the soup-resilience/v1 report incl. gate results
      chaos.json        # the chaos controller's action log
      heartbeat.json    # final streaming-metrics heartbeat (if present)
      flight/           # one JSONL flight recorder per node + harness
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.analysis import (
    AnomalyConfig,
    TraceAnalysis,
    TraceReadReport,
    analyze_events,
    merge_trace_files,
)

#: Bundle manifest schema identifier (bump on breaking layout changes).
BUNDLE_SCHEMA = "soup-postmortem/v1"

_MANIFEST = "MANIFEST.json"


class BundleError(ValueError):
    """A bundle is missing, malformed, or fails hash verification."""


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _dump(document: Any) -> bytes:
    return json.dumps(document, sort_keys=True, indent=1).encode("utf-8") + b"\n"


# ----------------------------------------------------------------------
# assembling
# ----------------------------------------------------------------------
def assemble_bundle(
    obs_dir: str,
    out_root: str,
    report: Optional[Dict[str, Any]] = None,
) -> str:
    """Collect one run's evidence into a content-keyed bundle directory.

    ``obs_dir`` is the harness's observability directory (``flight/`` +
    ``heartbeat.json``); ``report`` is the finished ``soup-resilience/v1``
    report — passed in *after* gate evaluation so the bundle records the
    verdict, not just the run.  Returns the bundle directory path
    (``<out_root>/bundle-<key12>``); assembling the same evidence twice
    lands on the same directory.
    """
    flight_dir = os.path.join(obs_dir, "flight")
    if not os.path.isdir(flight_dir):
        raise BundleError(f"no flight recorders under {obs_dir!r}")
    flight_files = sorted(
        name for name in os.listdir(flight_dir) if name.endswith(".jsonl")
    )
    if not flight_files:
        raise BundleError(f"no flight recorder files in {flight_dir!r}")

    # name -> (source path or None, literal bytes or None, sha256)
    contents: Dict[str, Tuple[Optional[str], Optional[bytes], str]] = {}
    for name in flight_files:
        path = os.path.join(flight_dir, name)
        contents[f"flight/{name}"] = (path, None, _sha256_file(path))
    heartbeat = os.path.join(obs_dir, "heartbeat.json")
    if os.path.isfile(heartbeat):
        contents["heartbeat.json"] = (heartbeat, None, _sha256_file(heartbeat))
    if report is not None:
        report_bytes = _dump(report)
        contents["report.json"] = (None, report_bytes, _sha256_bytes(report_bytes))
        chaos_bytes = _dump(report.get("chaos", {}))
        contents["chaos.json"] = (None, chaos_bytes, _sha256_bytes(chaos_bytes))

    key = hashlib.sha256(
        "\n".join(
            f"{name} {sha}" for name, (_, _, sha) in sorted(contents.items())
        ).encode("utf-8")
    ).hexdigest()
    bundle_dir = os.path.join(out_root, f"bundle-{key[:12]}")
    os.makedirs(os.path.join(bundle_dir, "flight"), exist_ok=True)
    for name, (source, data, _) in contents.items():
        target = os.path.join(bundle_dir, name)
        if source is not None:
            shutil.copyfile(source, target)
        else:
            with open(target, "wb") as handle:
                handle.write(data)

    from repro.runtime.store import atomic_write_json

    # The manifest goes last, atomically: a bundle with a manifest is a
    # complete bundle — there is no observable half-written state.
    atomic_write_json(
        Path(bundle_dir) / _MANIFEST,
        {
            "schema": BUNDLE_SCHEMA,
            "key": key,
            "created_t": time.time(),
            "files": {
                name: {"sha256": sha} for name, (_, _, sha) in sorted(contents.items())
            },
        },
    )
    return bundle_dir


@dataclass
class Bundle:
    """A loaded, hash-verified post-mortem bundle."""

    path: str
    key: str
    manifest: Dict[str, Any]
    report: Optional[Dict[str, Any]] = None

    def flight_paths(self) -> List[str]:
        return [
            os.path.join(self.path, name)
            for name in sorted(self.manifest["files"])
            if name.startswith("flight/")
        ]


def load_bundle(path: str) -> Bundle:
    """Open a bundle, verifying every file against the manifest hashes."""
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.isfile(manifest_path):
        raise BundleError(f"{path!r} is not a post-mortem bundle (no {_MANIFEST})")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise BundleError(
            f"unsupported bundle schema {manifest.get('schema')!r} "
            f"(expected {BUNDLE_SCHEMA})"
        )
    for name, meta in manifest.get("files", {}).items():
        file_path = os.path.join(path, name)
        if not os.path.isfile(file_path):
            raise BundleError(f"bundle file missing: {name}")
        actual = _sha256_file(file_path)
        if actual != meta["sha256"]:
            raise BundleError(
                f"bundle file corrupted: {name} "
                f"(sha256 {actual[:12]}… != manifest {meta['sha256'][:12]}…)"
            )
    report = None
    report_path = os.path.join(path, "report.json")
    if os.path.isfile(report_path):
        with open(report_path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    return Bundle(
        path=path, key=manifest["key"], manifest=manifest, report=report
    )


# ----------------------------------------------------------------------
# correlation: chaos actions -> causal chains
# ----------------------------------------------------------------------
@dataclass
class ChainLink:
    """One piece of evidence tied to a chaos action."""

    kind: str  # failure_declared | repair_round | lost_send | unavailability
    node: Optional[int]  # which node's recorder holds the evidence
    lamport: Optional[int]
    epoch: Optional[int]
    summary: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "node": self.node,
            "lamport": self.lamport,
            "epoch": self.epoch,
            "summary": self.summary,
            "data": self.data,
        }


@dataclass
class CausalChain:
    """One chaos action and every downstream consequence traced to it."""

    action: Dict[str, Any]
    victims: List[int]
    links: List[ChainLink] = field(default_factory=list)

    @property
    def nodes(self) -> List[int]:
        """Distinct nodes whose recorders contributed evidence."""
        return sorted(
            {link.node for link in self.links if isinstance(link.node, int)}
        )

    @property
    def cross_node(self) -> bool:
        """True when the chain's evidence spans >= 2 distinct recorders —
        the action's effect demonstrably propagated across the cluster."""
        return len(self.nodes) >= 2

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "action": {
                k: v for k, v in self.action.items()
                if k not in ("v", "seq")
            },
            "victims": self.victims,
            "cross_node": self.cross_node,
            "nodes": self.nodes,
            "links": [link.to_json_dict() for link in self.links],
        }


@dataclass
class Postmortem:
    """Everything ``soup postmortem`` derives from one bundle."""

    bundle: Bundle
    analysis: TraceAnalysis
    chains: List[CausalChain] = field(default_factory=list)

    @property
    def cross_node_chains(self) -> List[CausalChain]:
        return [chain for chain in self.chains if chain.cross_node]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": BUNDLE_SCHEMA,
            "bundle": self.bundle.path,
            "key": self.bundle.key,
            "trace": {
                "events": self.analysis.report.events,
                "errors": len(self.analysis.report.errors),
                "truncated": self.analysis.report.truncated,
                "events_by_type": dict(
                    sorted(self.analysis.events_by_type.items())
                ),
            },
            "chains": [chain.to_json_dict() for chain in self.chains],
            "cross_node_chains": len(self.cross_node_chains),
            "unavailability": {
                "owner_epochs": self.analysis.total_unavailable_epochs,
                "owners": len(self.analysis.unavailable_epochs_by_owner),
            },
            "findings": [f.to_json_dict() for f in self.analysis.findings],
            "gates": (self.bundle.report or {}).get("gates"),
        }


def correlate(
    bundle: Bundle, config: AnomalyConfig = AnomalyConfig()
) -> Postmortem:
    """Merge the bundle's flight recorders and trace every chaos ``kill``
    to its downstream evidence.

    A chain link qualifies when it *names* a victim (a failure
    declaration for it, a repair round replacing it, a message sent to it
    that no recorder ever received) or *is* a victim's unavailability
    window starting at or after the kill epoch.  The anomaly detectors
    run over the very same merged stream — live traces get exactly the
    sim's rules.
    """
    read_report = TraceReadReport()
    merged = merge_trace_files(
        bundle.flight_paths(), validate=True, report=read_report
    )

    kills: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    repairs: List[Dict[str, Any]] = []
    sends: Dict[str, Dict[str, Any]] = {}
    received: set = set()

    def spy(events):
        for obj in events:
            event = obj.get("event")
            if event == "chaos_action" and obj.get("kind") == "kill":
                kills.append(obj)
            elif event == "failure_declared":
                failures.append(obj)
            elif event == "repair_round":
                repairs.append(obj)
            elif event == "live_msg_send":
                msg_id = obj.get("msg_id")
                if isinstance(msg_id, str):
                    sends[msg_id] = obj
            elif event == "live_msg_recv":
                received.add(obj.get("msg_id"))
            yield obj

    analysis = analyze_events(spy(merged), config=config, report=read_report)

    chains: List[CausalChain] = []
    for kill in kills:
        victims = [v for v in kill.get("nodes") or () if isinstance(v, int)]
        victim_set = set(victims)
        kill_epoch = kill.get("epoch", 0)
        chain = CausalChain(action=kill, victims=victims)

        for obj in failures:
            if obj.get("peer") in victim_set and _at_or_after(obj, kill_epoch):
                chain.links.append(ChainLink(
                    kind="failure_declared",
                    node=obj.get("node", obj.get("by")),
                    lamport=obj.get("lamport"),
                    epoch=obj.get("epoch"),
                    summary=(
                        f"node {obj.get('by', obj.get('node'))} declared "
                        f"victim {obj['peer']} dead"
                        + (f" ({obj['reason']})" if obj.get("reason") else "")
                    ),
                    data={"peer": obj.get("peer"), "by": obj.get("by")},
                ))
        for obj in repairs:
            dead = [d for d in obj.get("dead") or () if d in victim_set]
            if dead and _at_or_after(obj, kill_epoch):
                chain.links.append(ChainLink(
                    kind="repair_round",
                    node=obj.get("node", obj.get("owner")),
                    lamport=obj.get("lamport"),
                    epoch=obj.get("epoch"),
                    summary=(
                        f"owner {obj.get('owner')} repaired, replacing dead "
                        f"victim(s) {dead} with "
                        f"{obj.get('replacements', '?')} replacement(s)"
                    ),
                    data={"owner": obj.get("owner"), "dead": dead},
                ))
        kill_lamport = kill.get("lamport")
        for msg_id, obj in sends.items():
            if obj.get("peer") not in victim_set or msg_id in received:
                continue
            lamport = obj.get("lamport")
            if (
                isinstance(kill_lamport, int)
                and isinstance(lamport, int)
                and lamport < kill_lamport
            ):
                continue  # predates the kill: in-flight loss, not causal
            chain.links.append(ChainLink(
                kind="lost_send",
                node=obj.get("node"),
                lamport=lamport,
                epoch=None,
                summary=(
                    f"node {obj.get('node')} sent "
                    f"{obj.get('kind', 'a message')} ({msg_id}) to dead "
                    f"victim {obj['peer']}; never received"
                ),
                data={"msg_id": msg_id, "peer": obj.get("peer")},
            ))
        for victim in victims:
            for window in analysis.windows_by_owner.get(victim, ()):
                if window.start_epoch >= kill_epoch:
                    chain.links.append(ChainLink(
                        kind="unavailability",
                        node=victim,
                        lamport=None,
                        epoch=window.start_epoch,
                        summary=(
                            f"victim {victim} unavailable epochs "
                            f"{window.start_epoch}-{window.end_epoch} "
                            f"({window.cause})"
                        ),
                        data={
                            "owner": victim,
                            "start_epoch": window.start_epoch,
                            "end_epoch": window.end_epoch,
                            "cause": window.cause,
                        },
                    ))
        chain.links.sort(
            key=lambda link: (
                link.lamport if link.lamport is not None else 1 << 60,
                link.epoch if link.epoch is not None else 1 << 60,
            )
        )
        chains.append(chain)

    return Postmortem(bundle=bundle, analysis=analysis, chains=chains)


def _at_or_after(obj: Dict[str, Any], epoch: int) -> bool:
    """Whether an event happened at/after ``epoch`` (events without an
    epoch — pure live events — are kept; lamport filters handle those)."""
    own = obj.get("epoch")
    return not isinstance(own, int) or own >= epoch


# ----------------------------------------------------------------------
# rendering (the `soup postmortem` text view)
# ----------------------------------------------------------------------
def render_postmortem(result: Postmortem, max_links: int = 8) -> List[str]:
    analysis = result.analysis
    lines = [
        f"post-mortem bundle {result.bundle.key[:12]} ({result.bundle.path})",
        f"  trace: {analysis.report.events} events from "
        f"{len(result.bundle.flight_paths())} flight recorder(s)"
        + (", truncated tail" if analysis.report.truncated else ""),
    ]
    gates = (result.bundle.report or {}).get("gates")
    if gates:
        verdict = "PASS" if gates.get("passed") else "FAIL"
        lines.append(
            f"  gates: {verdict}"
            + (
                f" (violated: {', '.join(gates.get('violated', []))})"
                if gates.get("violated")
                else ""
            )
        )
    lines.append("")
    if not result.chains:
        lines.append("no chaos kill actions in this trace")
    for chain in result.chains:
        marker = "cross-node" if chain.cross_node else "single-node"
        lines.append(
            f"kill @epoch {chain.action.get('epoch')} "
            f"victims={chain.victims} -> {len(chain.links)} linked "
            f"consequence(s) [{marker}, recorders: {chain.nodes}]"
        )
        for link in chain.links[:max_links]:
            clock = (
                f"lamport {link.lamport}"
                if link.lamport is not None
                else f"epoch {link.epoch}"
            )
            lines.append(f"    [{link.kind} @{clock}] {link.summary}")
        if len(chain.links) > max_links:
            lines.append(f"    ... and {len(chain.links) - max_links} more")
    lines.append("")
    lines.append(
        f"unavailability: {analysis.total_unavailable_epochs} owner-epochs "
        f"across {len(analysis.unavailable_epochs_by_owner)} owner(s)"
    )
    if analysis.findings:
        lines.append(f"anomalies: {len(analysis.findings)} finding(s)")
        for finding in analysis.findings:
            where = f" @epoch {finding.epoch}" if finding.epoch is not None else ""
            lines.append(f"  [{finding.rule}]{where} {finding.message}")
    else:
        lines.append("anomalies: none detected")
    return lines
