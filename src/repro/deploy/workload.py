"""The deployment's social workload (paper Sec. 7).

"We collected several days of data, during which our users established 282
friendships, shared 204 photos, and exchanged 1189 messages."  The builder
schedules exactly those volumes over the collection period, biased toward
the first days (friendships form early; messaging continues throughout).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class WorkloadEvent:
    """One scheduled social action."""

    time_s: float
    kind: str  # "friendship" | "photo" | "message" | "profile_view" | "album"
    actor: int  # index into the deployment's user list
    target: int  # peer index (meaning depends on kind)


def build_workload(
    n_users: int,
    duration_s: float,
    rng: random.Random,
    n_friendships: int = 282,
    n_photos: int = 204,
    n_messages: int = 1189,
    n_profile_views: int = 600,
    n_albums: int = 8,
) -> List[WorkloadEvent]:
    """Schedule the paper's measured workload volumes.

    Friendship formation is front-loaded (uniform over the first third of
    the period); photos, messages and profile views spread over the whole
    run.  Album publications (the Fig. 14b bandwidth spikes) are scheduled
    at scattered points.
    """
    if n_users < 2:
        raise ValueError("a deployment needs at least two users")
    events: List[WorkloadEvent] = []

    def pick_pair() -> Sequence[int]:
        a = rng.randrange(n_users)
        b = rng.randrange(n_users - 1)
        if b >= a:
            b += 1
        return a, b

    max_friendships = n_users * (n_users - 1) // 2
    seen_pairs = set()
    for _ in range(min(n_friendships, max_friendships)):
        while True:
            a, b = pick_pair()
            key = (min(a, b), max(a, b))
            if key not in seen_pairs:
                seen_pairs.add(key)
                break
        events.append(
            WorkloadEvent(rng.uniform(0, duration_s / 3), "friendship", a, b)
        )

    for _ in range(n_photos):
        a, b = pick_pair()
        events.append(WorkloadEvent(rng.uniform(0, duration_s), "photo", a, b))

    for _ in range(n_messages):
        a, b = pick_pair()
        events.append(WorkloadEvent(rng.uniform(0, duration_s), "message", a, b))

    for _ in range(n_profile_views):
        a, b = pick_pair()
        events.append(WorkloadEvent(rng.uniform(0, duration_s), "profile_view", a, b))

    for _ in range(n_albums):
        a, b = pick_pair()
        events.append(WorkloadEvent(rng.uniform(0, duration_s), "album", a, b))

    events.sort(key=lambda e: e.time_s)
    return events
