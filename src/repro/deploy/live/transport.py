"""The live transport backend: TCP loopback sockets under asyncio.

Every node gets a real TCP server on ``127.0.0.1`` (ephemeral port);
every :meth:`LiveTransport.send` pickles the message into a
length-prefixed frame and writes it over a real socket connection to the
receiver's server, where it is unpickled and dispatched to the node's
registered handler.  Protocol state stays in-process (the middleware's
``peer_resolver`` still hands out live objects — exactly as in the
simulated deployment, where decisions are synchronous but every byte
crosses the metered network), so the middleware runs unchanged; what
becomes real is the timing: kernel buffers, connection setup, wall-clock
retry timers.

Failure semantics deliberately mirror :class:`~repro.network.simnet.SimNetwork`
so the reliability layer sees the same reasons on both backends:
``sender-offline`` (immediate), ``unreachable`` (after a latency-derived
detection delay, or when the connection errors), ``lost-in-flight`` (the
receiver went offline while the frame was in flight), plus the chaos
reasons (``partitioned``, ``chaos-drop``) from the shared base class.
"""

from __future__ import annotations

import asyncio
import logging
import pickle
import struct
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.network.transport import Transport
from repro.obs import get_registry

logger = logging.getLogger("repro.deploy.live.transport")

_HEADER = struct.Struct(">I")


def _msg_kind(message: Any) -> str:
    """A compact label for the message type carried in trace events:
    the tag of ``("tag", ...)`` tuples, else the payload's class name."""
    if isinstance(message, tuple) and message and isinstance(message[0], str):
        return message[0]
    return type(message).__name__


class _PausedFrame:
    """Wrapper keeping a frame's trace context attached while it sits in
    the paused-inbox buffer (the shared buffer stores messages opaquely)."""

    __slots__ = ("message", "ctx")

    def __init__(self, message: Any, ctx: Optional[tuple]) -> None:
        self.message = message
        self.ctx = ctx


class AsyncClock:
    """Wallclock :class:`~repro.network.transport.Clock` over asyncio.

    ``now`` is seconds since the clock was created (so timestamps look
    like the simulator's small floats, not epoch seconds); ``schedule``
    maps to ``call_later``.  Timer callbacks are guarded: an exception in
    a retry timer must not kill the event loop.  Must be constructed
    inside a running event loop.
    """

    def __init__(self) -> None:
        self.aioloop = asyncio.get_running_loop()
        self._t0 = self.aioloop.time()
        self._handles: Set[asyncio.TimerHandle] = set()
        self._closed = False

    @property
    def now(self) -> float:
        return self.aioloop.time() - self._t0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if self._closed:
            return
        handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            self._handles.discard(handle)
            if self._closed:
                return
            try:
                callback()
            except Exception:  # noqa: BLE001 — timers must not kill the loop
                logger.exception("scheduled callback failed")

        handle = self.aioloop.call_later(max(0.0, delay), fire)
        self._handles.add(handle)

    def close(self) -> None:
        """Cancel every outstanding timer (teardown: pending retries from
        killed nodes must not fire into a dismantled cluster)."""
        self._closed = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


class LiveTransport(Transport):
    """Message delivery over real TCP loopback sockets.

    When an observability plane is attached (``observer`` set to a
    :class:`repro.obs.flight.LiveObservability`), every send stamps a
    compact trace context ``(msg_id, lamport, t_send)`` into the wire
    envelope and every delivery folds it back into the receiver's
    Lamport clock — the disabled path costs a single ``is None`` check.
    """

    def __init__(self, clock: AsyncClock) -> None:
        super().__init__(clock)
        self._aio = clock.aioloop
        self._clock = clock
        self.observer = None  # Optional[repro.obs.flight.LiveObservability]
        self._servers: Dict[int, asyncio.base_events.Server] = {}
        self._ports: Dict[int, int] = {}
        #: One cached outbound connection per (sender, receiver) pair.
        self._writers: Dict[Tuple[int, int], asyncio.StreamWriter] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._closed = False

    # --- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        """Open one TCP server per registered node (idempotent — call
        again after registering more nodes)."""
        for node_id in self.node_ids():
            if node_id not in self._servers:
                await self._start_server(node_id)

    async def _start_server(self, node_id: int) -> None:
        server = await asyncio.start_server(
            lambda reader, writer, nid=node_id: self._serve(nid, reader, writer),
            host="127.0.0.1",
            port=0,
        )
        self._servers[node_id] = server
        self._ports[node_id] = server.sockets[0].getsockname()[1]

    def port_of(self, node_id: int) -> Optional[int]:
        return self._ports.get(node_id)

    async def close(self) -> None:
        """Tear the runtime down: timers, in-flight tasks, sockets."""
        self._closed = True
        self._clock.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for server in self._servers.values():
            server.close()
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers.values()),
            return_exceptions=True,
        )
        self._servers.clear()
        self._ports.clear()

    async def drain(self, settle_s: float = 0.05) -> None:
        """Wait for every queued outbound frame to hit the wire, then a
        short settle so inbound dispatch runs."""
        pending = [task for task in self._tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await asyncio.sleep(settle_s)

    # --- inbound ----------------------------------------------------------
    async def _serve(
        self, node_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                payload = await reader.readexactly(length)
                # Frames are (sender, size, message) or, when an observer
                # was attached at send time, (sender, size, message, ctx).
                parts = pickle.loads(payload)
                sender, size_bytes, message = parts[0], parts[1], parts[2]
                ctx = parts[3] if len(parts) > 3 else None
                self._dispatch(sender, node_id, message, size_bytes, ctx)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _dispatch(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        ctx: Optional[tuple] = None,
    ) -> None:
        if self._closed:
            return
        if not self._online.get(receiver, False):
            # Went offline while the frame was in flight: bytes are lost.
            self._count_failure("lost-in-flight")
            return
        if self._chaos is not None and receiver in self._chaos.paused:
            self._buffer_inbound(
                sender, receiver, _PausedFrame(message, ctx), size_bytes, 0.0
            )
            return
        link = self._links.get(receiver)
        if link is None:
            self._count_failure("lost-in-flight")
            return
        self.meters[receiver].record_received(
            self.loop.now, size_bytes, size_bytes / link.downstream_bytes_per_s
        )
        self.messages_delivered += 1
        get_registry().counter("net.delivered").inc()
        handler = self._handlers.get(receiver)
        observer = self.observer
        if observer is None:
            if handler is not None:
                try:
                    handler(sender, message)
                except Exception:  # noqa: BLE001 — one bad frame must not kill the server
                    logger.exception("handler for node %d failed", receiver)
            return
        if ctx is not None:
            observer.on_receive(receiver, sender, ctx, _msg_kind(message))
        if handler is not None:
            # Scope the handler to the receiving node so every protocol
            # event it emits (repair_round, failure_declared, acks...)
            # lands in that node's flight recorder.
            with observer.scope(receiver):
                try:
                    handler(sender, message)
                except Exception:  # noqa: BLE001 — one bad frame must not kill the server
                    logger.exception("handler for node %d failed", receiver)

    def _flush_inbound(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        receive_duration: float,
    ) -> None:
        ctx = None
        if isinstance(message, _PausedFrame):
            message, ctx = message.message, message.ctx
        self._dispatch(sender, receiver, message, size_bytes, ctx)

    # --- outbound ---------------------------------------------------------
    def _schedule_failure(
        self, delay: float, sender: int, receiver: int, message: Any, reason: str
    ) -> None:
        failure_handler = self._failure_handlers.get(sender)
        if failure_handler is None:
            return
        self.loop.schedule(
            delay, lambda: failure_handler(receiver, message, reason)
        )

    def send(self, sender: int, receiver: int, message: Any, size_bytes: int) -> None:
        """Send a message; the frame crosses a real loopback socket."""
        if sender not in self._links:
            raise KeyError(f"unknown sender {sender}")
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        if self._closed:
            return
        if not self._online.get(sender, False):
            self._count_failure("sender-offline")
            self._schedule_failure(0.0, sender, receiver, message, "sender-offline")
            return
        if self._chaos is not None:
            blocked = self._chaos_blocks(sender, receiver)
            if blocked == "paused":
                self._buffer_outbound(sender, receiver, message, size_bytes)
                return
            if blocked == "chaos-drop":
                self._count_failure("chaos-drop")
                return
            if blocked is not None:  # "partitioned"
                self._count_failure(blocked)
                delay = self._links[sender].latency_s * 2 + 0.5
                self._schedule_failure(delay, sender, receiver, message, blocked)
                return
        send_duration = size_bytes / self._links[sender].upstream_bytes_per_s
        self.meters[sender].record_sent(self.loop.now, size_bytes, send_duration)
        # Trace context is minted after the chaos checks (a resumed,
        # re-sent frame records once per actual wire attempt) but before
        # the receiver-online check: a send into a dead node is exactly
        # the unmatched live_msg_send a post-mortem wants to see.
        ctx = None
        if self.observer is not None:
            ctx = self.observer.on_send(
                sender, receiver, _msg_kind(message), size_bytes
            )
        if receiver not in self._links or not self._online.get(receiver, False):
            self._count_failure("unreachable")
            delay = self._links[sender].latency_s * 2 + 0.5
            self._schedule_failure(delay, sender, receiver, message, "unreachable")
            return
        task = self._aio.create_task(
            self._transmit(sender, receiver, message, size_bytes, ctx)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _transmit(
        self,
        sender: int,
        receiver: int,
        message: Any,
        size_bytes: int,
        ctx: Optional[tuple] = None,
    ) -> None:
        extra = self._chaos_extra_delay()
        if extra:
            await asyncio.sleep(extra)
        envelope = (
            (sender, size_bytes, message)
            if ctx is None
            else (sender, size_bytes, message, ctx)
        )
        try:
            payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — report, don't crash the runtime
            logger.exception("unpicklable message from %d to %d", sender, receiver)
            self._count_failure("unreachable")
            self._schedule_failure(0.0, sender, receiver, message, "unreachable")
            return
        frame = _HEADER.pack(len(payload)) + payload
        key = (sender, receiver)
        try:
            writer = self._writers.get(key)
            if writer is None or writer.is_closing():
                port = self._ports.get(receiver)
                if port is None:
                    raise ConnectionError(f"no server for node {receiver}")
                _, writer = await asyncio.open_connection("127.0.0.1", port)
                self._writers[key] = writer
            writer.write(frame)
            await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            self._writers.pop(key, None)
            if self._closed:
                return
            self._count_failure("unreachable")
            self._schedule_failure(0.0, sender, receiver, message, "unreachable")
