"""The resilience harness: one cluster, either backend, chaos + load + gates.

Builds an N-node SOUP cluster out of real :class:`~repro.node.middleware.SoupNode`
middleware instances on either side of the transport seam — the
deterministic :class:`~repro.network.simnet.SimNetwork` or the socket-backed
:class:`~repro.deploy.live.transport.LiveTransport` — then drives an
open-loop request mix through it while a :class:`ChaosController` replays
a fault plan, and emits a ``soup-resilience/v1`` report.

The protocol-level metrics in the report (availability samples, chaos
events, durability accounting) are **structural**: they are computed from
middleware state that only mutates synchronously inside harness-ordered
calls, never from message arrival timing.  That is what makes the same
seed produce the same availability series on both backends (the
equivalence acceptance criterion) — while latency percentiles and
retry/timeout counters remain honestly backend-specific.

Availability is measured SuperNova-style, from the readers' side: at each
epoch boundary, over every (reader, owner) pair with the reader alive,
the owner's data counts as available if the reader can currently reach
the owner itself or any announced mirror that is online and actually
stores the owner's replica.  A partition therefore *does* hurt
availability (cross-group mirrors don't count for that reader) even
though no data was lost.

"Zero lost acked updates" is likewise structural: every acked replica
push is remembered as ``(owner, sequence)``; at the end of the run an
acked update is *lost* only if its owner is offline and no online node
still holds it (in an update log or a stored replica).
"""

from __future__ import annotations

import asyncio
import random
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import SoupConfig
from repro.deploy.live.chaos import ChaosController
from repro.deploy.live.load import DEFAULT_MIX, LATENCY_BUCKETS, LoadOp, build_load_plan
from repro.deploy.live.transport import AsyncClock, LiveTransport
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.reliability import ReliabilityStats
from repro.network.simnet import SimNetwork
from repro.network.transport import DESKTOP_LINK, SERVER_LINK, Transport
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem
from repro.obs import (
    LiveObservability,
    Tracer,
    get_registry,
    pop_registry,
    push_registry,
    set_tracer,
)

#: Report schema identifier (bump on breaking changes).
REPORT_SCHEMA = "soup-resilience/v1"


@dataclass
class ResilienceConfig:
    """One resilience run, fully specified (and fully replayable)."""

    n_nodes: int = 25
    seed: int = 7
    backend: str = "sim"
    #: Fault-plan spec string (see :mod:`repro.sim.faults`); empty = no chaos.
    chaos: str = ""
    epochs: int = 10
    #: Seconds per epoch — simulated seconds on the sim backend, wall
    #: seconds on the live one.
    epoch_s: float = 0.5
    load_rps: float = 40.0
    friends_per_node: int = 3
    items_per_node: int = 2
    #: Small keys + simulated signatures keep a 25-node smoke run fast;
    #: the protocol logic is identical (forgeries still rejected).
    key_bits: int = 256
    crypto_mode: str = "by_id"
    #: Live backend only: wall seconds for sockets to settle after setup.
    settle_s: float = 0.25
    #: Observability plane output directory (flight recorders, heartbeat).
    #: Empty = plane disabled; the run is telemetry-blind, as before PR 8.
    obs_dir: str = ""

    def validate(self) -> None:
        if self.backend not in ("sim", "live"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.n_nodes < 3:
            raise ValueError("a resilience run needs at least 3 nodes")
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.epoch_s <= 0:
            raise ValueError("epoch duration must be positive")
        if self.load_rps <= 0:
            raise ValueError("load rate must be positive")

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ResilienceConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown resilience config keys: {sorted(unknown)}")
        return cls(**raw)  # type: ignore[arg-type]


class ResilienceHarness:
    """Runs one resilience scenario and produces the report dict."""

    def __init__(self, config: ResilienceConfig) -> None:
        config.validate()
        self.config = config
        self.network: Optional[Transport] = None
        self.nodes: Dict[int, SoupNode] = {}
        self.order: List[int] = []
        self.gateway_id: Optional[int] = None
        self.chaos: Optional[ChaosController] = None
        self.samples: List[dict] = []
        self.baseline_availability: float = 1.0
        self._acked: Dict[tuple, int] = {}
        self._counts: Dict[str, int] = {}
        self._read_attempts = 0
        self._read_successes = 0
        self.obs: Optional[LiveObservability] = None
        self._saved_tracer: Optional[Tracer] = None

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Execute the scenario; returns the ``soup-resilience/v1`` report."""
        push_registry()
        try:
            if self.config.backend == "live":
                report = asyncio.run(self._run_live())
            else:
                report = self._run_sim()
            if self.obs is not None:
                self._obs_finalize(report)
            return report
        finally:
            if self._saved_tracer is not None:
                set_tracer(self._saved_tracer)
                self._saved_tracer = None
            if self.obs is not None:
                self.obs.close()
            pop_registry()

    # --- cluster construction (shared) --------------------------------
    def _build(self, network: Transport) -> None:
        cfg = self.config
        self.network = network
        self.rng = random.Random(cfg.seed)
        self.overlay = PastryOverlay()
        self.overlay.set_liveness(network.is_online)
        self.bootstrap = BootstrapRegistry()

        def resolve(node_id: int) -> Optional[SoupNode]:
            return self.nodes.get(node_id)

        for index in range(cfg.n_nodes):
            node = SoupNode(
                name="gateway" if index == 0 else f"user{index:02d}",
                network=network,
                overlay=self.overlay,
                registry=self.bootstrap,
                peer_resolver=resolve,
                config=SoupConfig(),
                seed=self.rng.randrange(2**31),
                link=SERVER_LINK if index == 0 else DESKTOP_LINK,
                key_bits=cfg.key_bits,
                crypto_mode=cfg.crypto_mode,
            )
            self.nodes[node.node_id] = node
            self.order.append(node.node_id)
        self.gateway_id = self.order[0]

    def _join_all(self) -> None:
        gateway = self.nodes[self.gateway_id]
        gateway.join()
        gateway.make_bootstrap_node()
        for node_id in self.order[1:]:
            self.nodes[node_id].join(bootstrap_id=self.gateway_id)

    def _setup_social(self) -> None:
        """Ring + seeded random extra friendships (connected by construction)."""
        cfg = self.config
        n = len(self.order)
        for index, node_id in enumerate(self.order):
            self.nodes[node_id].befriend(self.order[(index + 1) % n])
        extra = max(0, cfg.friends_per_node - 2)
        for index, node_id in enumerate(self.order):
            for _ in range(extra):
                other = self.rng.randrange(n - 1)
                if other >= index:
                    other += 1
                other_id = self.order[other]
                if not self.nodes[node_id].social.is_friend(other_id):
                    self.nodes[node_id].befriend(other_id)

    def _seed_content(self) -> None:
        for node_id in self.order:
            self.nodes[node_id].run_selection_round()
        for node_id in self.order:
            for _ in range(self.config.items_per_node):
                self._post(node_id)
        # A second round lets early selectors see the now-announced peers.
        for node_id in self.order:
            self.nodes[node_id].run_selection_round()

    # --- observability plane -------------------------------------------
    def _obs_setup(self) -> None:
        """Attach the live observability plane (no-op without ``obs_dir``):
        per-node flight recorders, the routing tracer installed
        process-wide, and transport send/receive hooks on the live
        backend."""
        if not self.config.obs_dir:
            return
        self.obs = LiveObservability(
            self.config.obs_dir, self.order, latency_buckets=LATENCY_BUCKETS
        )
        if isinstance(self.network, LiveTransport):
            self.network.observer = self.obs
        self._saved_tracer = set_tracer(self.obs.tracer)
        self.obs.heartbeat(0, self.config.epochs, extra=self._heartbeat_extra())

    def _scoped(self, node_id: int):
        """Attribute events emitted inside the block to ``node_id``'s
        flight recorder (pass-through when the plane is off)."""
        return self.obs.scope(node_id) if self.obs is not None else nullcontext()

    def _owner_availability(self) -> Tuple[int, int, List[int]]:
        """Owner-level availability for the trace's ``availability_sample``
        events: an owner counts as unavailable when it is down (or paused)
        and no online, unpaused mirror actually serves its replica."""
        net = self.network
        unavailable: List[int] = []
        for owner_id in self.order:
            if net.is_online(owner_id) and not net.is_paused(owner_id):
                continue
            served = any(
                net.is_online(mirror_id)
                and not net.is_paused(mirror_id)
                and self.nodes[mirror_id].mirror_manager.store.stores_for(owner_id)
                for mirror_id in self.nodes[owner_id].mirror_manager.announced_mirrors
            )
            if not served:
                unavailable.append(owner_id)
        population = len(self.order)
        return population, population - len(unavailable), unavailable

    def _heartbeat_extra(self) -> dict:
        extra = {"backend": self.config.backend, "n_nodes": self.config.n_nodes}
        if self.samples:
            extra["availability"] = self.samples[-1]["availability"]
            extra["online"] = self.samples[-1]["online"]
        return extra

    def _obs_epoch(self, epoch: int) -> None:
        """Epoch boundary: sync Lamport clocks through the harness, emit
        the availability ground truth, refresh the streaming heartbeat."""
        if self.obs is None:
            return
        self.obs.epoch_sync(epoch)
        population, available, unavailable = self._owner_availability()
        self.obs.harness.emit(
            "availability_sample",
            epoch=epoch,
            population=population,
            available=available,
            unavailable=unavailable,
        )
        self.obs.heartbeat(
            epoch + 1, self.config.epochs, extra=self._heartbeat_extra()
        )

    def _obs_finalize(self, report: dict) -> None:
        """Close the recorders, re-analyze the merged live trace with the
        sim-side analyzer, and publish an ``obs`` report section gates can
        assert on."""
        from repro.obs.analysis import (
            TraceReadReport,
            analyze_events,
            merge_trace_files,
        )

        obs = self.obs
        obs.heartbeat(
            self.config.epochs, self.config.epochs,
            extra=self._heartbeat_extra(), done=True,
        )
        merged_metrics = obs.merged_registry()
        obs.close()
        read_report = TraceReadReport()
        analysis = analyze_events(
            merge_trace_files(obs.trace_paths(), report=read_report),
            report=read_report,
        )
        findings_by_rule: Dict[str, int] = {}
        for finding in analysis.findings:
            findings_by_rule[finding.rule] = (
                findings_by_rule.get(finding.rule, 0) + 1
            )
        snapshot = merged_metrics.snapshot_scalars()
        latency = merged_metrics.histogram(
            "live.msg.latency_s", buckets=LATENCY_BUCKETS
        )
        report["obs"] = {
            "dir": self.config.obs_dir,
            "flight_files": len(obs.trace_paths()),
            "trace_events": analysis.report.events,
            "trace_errors": len(analysis.report.errors),
            "events_by_type": dict(sorted(analysis.events_by_type.items())),
            "chaos_actions": len(analysis.chaos_actions),
            "unavailable_owner_epochs": analysis.total_unavailable_epochs,
            "anomalies": {
                "total": len(analysis.findings),
                "by_rule": dict(sorted(findings_by_rule.items())),
            },
            "live_msgs": {
                "sent": int(snapshot.get("live.msgs.sent", 0.0)),
                "recv": int(snapshot.get("live.msgs.recv", 0.0)),
                "bytes_sent": int(snapshot.get("live.bytes.sent", 0.0)),
            },
            "msg_latency": {
                "count": latency.count,
                "mean_s": round(latency.mean, 6),
                "p50_s": round(latency.quantile(0.5), 6),
                "p95_s": round(latency.quantile(0.95), 6),
                "p99_s": round(latency.quantile(0.99), 6),
            },
        }

    # --- workload ------------------------------------------------------
    def _ack_cb(self, owner_id: int) -> Callable[[int, object], None]:
        def on_ack(dest: int, payload: object) -> None:
            key = (owner_id, getattr(payload, "sequence", None))
            self._acked[key] = self._acked.get(key, 0) + 1

        return on_ack

    def _post(self, owner_id: int) -> None:
        item = DataItem.text(size_bytes=2_000, created_at=self.network.loop.now)
        self.nodes[owner_id].post_item(item, on_push_ack=self._ack_cb(owner_id))

    def _count(self, key: str) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1

    def _execute_op(self, op: LoadOp) -> None:
        actor_id = self.order[op.actor]
        target_id = self.order[op.target]
        net = self.network
        if not net.is_online(actor_id) or net.is_paused(actor_id):
            self._count("skipped_actor_down")
            return
        node = self.nodes[actor_id]
        started = time.perf_counter()
        with self._scoped(actor_id):
            if op.kind == "read":
                ok = bool(node.request_profile(target_id))
                self._read_attempts += 1
                self._read_successes += int(ok)
            elif op.kind == "post":
                self._post(actor_id)
                ok = True
            else:
                ok = bool(node.send_message(target_id, "resilience-probe"))
        elapsed = time.perf_counter() - started
        get_registry().histogram(
            f"resilience.latency.{op.kind}_s", buckets=LATENCY_BUCKETS
        ).observe(elapsed)
        self._count(f"{op.kind}_{'ok' if ok else 'fail'}")

    def _maintenance(self, epoch: int) -> None:
        net = self.network
        for node_id in self.order:
            if not net.is_online(node_id) or net.is_paused(node_id):
                continue
            node = self.nodes[node_id]
            with self._scoped(node_id):
                node.run_selection_round()
                node.exchange_experience_sets()

    # --- measurement ---------------------------------------------------
    def _compute_availability(self) -> float:
        net = self.network
        readers = [
            node_id
            for node_id in self.order
            if net.is_online(node_id) and not net.is_paused(node_id)
        ]
        if not readers:
            return 0.0
        pairs = served = 0
        for owner_id in self.order:
            owner_online = net.is_online(owner_id)
            serving_mirrors = [
                mirror_id
                for mirror_id in self.nodes[owner_id].mirror_manager.announced_mirrors
                if net.is_online(mirror_id)
                and self.nodes[mirror_id].mirror_manager.store.stores_for(owner_id)
            ]
            for reader_id in readers:
                if reader_id == owner_id:
                    continue
                pairs += 1
                if owner_online and net.reachable(reader_id, owner_id):
                    served += 1
                elif any(
                    net.reachable(reader_id, mirror_id)
                    for mirror_id in serving_mirrors
                ):
                    served += 1
        return served / pairs if pairs else 1.0

    def _sample(self, epoch: int) -> None:
        net = self.network
        self.samples.append(
            {
                "epoch": epoch,
                "t": round(net.loop.now, 3),
                "availability": round(self._compute_availability(), 6),
                "online": sum(1 for node_id in self.order if net.is_online(node_id)),
            }
        )

    def _durability(self) -> dict:
        net = self.network
        lost = []
        for owner_id, sequence in self._acked:
            if net.is_online(owner_id):
                continue
            survives = False
            for node_id in self.order:
                if node_id == owner_id or not net.is_online(node_id):
                    continue
                manager = self.nodes[node_id].mirror_manager
                log = manager.update_log_for(owner_id)
                if log is not None and any(
                    entry.sequence == sequence for entry in log.entries()
                ):
                    survives = True
                    break
                if manager.store.stores_for(owner_id):
                    survives = True
                    break
            if not survives:
                lost.append([owner_id, sequence])
        return {
            "acked_updates": len(self._acked),
            "lost_acked_updates": len(lost),
            "lost": lost[:20],
        }

    def _recovery(self) -> dict:
        heals = self.chaos.partition_heal_events() if self.chaos else []
        if not heals:
            return {"applicable": False, "recovered": True, "seconds": 0.0}
        heal = heals[0]
        # Recover to the pre-chaos level (small epsilon for float dust).
        target = self.baseline_availability - 1e-6
        for sample in self.samples:
            if sample["epoch"] >= heal["epoch"] and sample["availability"] >= target:
                return {
                    "applicable": True,
                    "recovered": True,
                    "seconds": round(max(0.0, sample["t"] - heal["t"]), 3),
                }
        return {"applicable": True, "recovered": False, "seconds": None}

    def _latency_summary(self) -> dict:
        registry = get_registry()
        out = {}
        for kind, _ in DEFAULT_MIX:
            hist = registry.histogram(
                f"resilience.latency.{kind}_s", buckets=LATENCY_BUCKETS
            )
            out[kind] = {
                "count": hist.count,
                "mean_s": round(hist.mean, 6),
                "p50_s": round(hist.quantile(0.5), 6),
                "p95_s": round(hist.quantile(0.95), 6),
                "p99_s": round(hist.quantile(0.99), 6),
                "max_s": round(hist.maximum or 0.0, 6),
            }
        return out

    def _aggregate_reliability(self) -> dict:
        total = ReliabilityStats()
        for node in self.nodes.values():
            total.merge(node.reliability.stats)
        return asdict(total)

    def _report(self) -> dict:
        availabilities = [sample["availability"] for sample in self.samples]
        first_chaos = self.chaos.first_chaos_epoch() if self.chaos else None
        during = (
            [s["availability"] for s in self.samples if s["epoch"] >= first_chaos]
            if first_chaos is not None
            else availabilities
        ) or availabilities
        read_rate = (
            self._read_successes / self._read_attempts if self._read_attempts else 1.0
        )
        net = self.network
        return {
            "schema": REPORT_SCHEMA,
            "config": asdict(self.config),
            "chaos": {
                "spec": self.chaos.to_string() if self.chaos else "",
                "events": list(self.chaos.events) if self.chaos else [],
                "killed": len(self.chaos.killed) if self.chaos else 0,
            },
            "availability": {
                "baseline": round(self.baseline_availability, 6),
                "mean": round(sum(availabilities) / len(availabilities), 6)
                if availabilities
                else 1.0,
                "min": round(min(availabilities), 6) if availabilities else 1.0,
                "final": availabilities[-1] if availabilities else 1.0,
                "during_chaos_min": round(min(during), 6) if during else 1.0,
                "request_success_rate": round(read_rate, 6),
                "samples": self.samples,
            },
            "latency": self._latency_summary(),
            "requests": dict(sorted(self._counts.items())),
            "durability": self._durability(),
            "recovery": self._recovery(),
            "reliability": self._aggregate_reliability(),
            "net": {
                "delivered": net.messages_delivered,
                "failed": net.messages_failed,
                "failures_by_reason": dict(sorted(net.failures_by_reason.items())),
            },
        }

    # --- drivers --------------------------------------------------------
    def _make_chaos(self) -> ChaosController:
        self.chaos = ChaosController.from_spec(
            self.config.chaos,
            self.network,
            self.nodes,
            self.order,
            base_seed=self.config.seed,
            protected={self.gateway_id},
        )
        return self.chaos

    def _run_sim(self) -> dict:
        cfg = self.config
        loop = EventLoop()
        network = SimNetwork(loop)
        self._build(network)
        self._obs_setup()
        self._join_all()
        loop.run_until(loop.now + 1.0)
        self._setup_social()
        loop.run_until(loop.now + 1.0)
        self._seed_content()
        loop.run_until(loop.now + 2.0)
        self.baseline_availability = self._compute_availability()
        chaos = self._make_chaos()
        plan = build_load_plan(
            cfg.n_nodes, cfg.load_rps, cfg.epochs * cfg.epoch_s, seed=cfg.seed
        )
        t_base = loop.now
        op_index = 0
        for epoch in range(cfg.epochs):
            chaos.on_epoch(epoch)
            horizon = (epoch + 1) * cfg.epoch_s
            while op_index < len(plan) and plan[op_index].at_s < horizon:
                loop.run_until(t_base + plan[op_index].at_s)
                self._execute_op(plan[op_index])
                op_index += 1
            loop.run_until(t_base + horizon)
            self._maintenance(epoch)
            self._sample(epoch)
            self._obs_epoch(epoch)
        loop.run_until(loop.now + 2.0)
        return self._report()

    async def _run_live(self) -> dict:
        cfg = self.config
        clock = AsyncClock()
        network = LiveTransport(clock)
        try:
            self._build(network)
            self._obs_setup()
            await network.start()
            self._join_all()
            self._setup_social()
            self._seed_content()
            await network.drain(cfg.settle_s)
            self.baseline_availability = self._compute_availability()
            chaos = self._make_chaos()
            plan = build_load_plan(
                cfg.n_nodes, cfg.load_rps, cfg.epochs * cfg.epoch_s, seed=cfg.seed
            )
            t_base = clock.now
            op_index = 0
            for epoch in range(cfg.epochs):
                chaos.on_epoch(epoch)
                horizon = (epoch + 1) * cfg.epoch_s
                while op_index < len(plan) and plan[op_index].at_s < horizon:
                    wait = t_base + plan[op_index].at_s - clock.now
                    if wait > 0:
                        await asyncio.sleep(wait)
                    self._execute_op(plan[op_index])
                    op_index += 1
                wait = t_base + horizon - clock.now
                if wait > 0:
                    await asyncio.sleep(wait)
                self._maintenance(epoch)
                self._sample(epoch)
                self._obs_epoch(epoch)
            await network.drain(cfg.settle_s)
            return self._report()
        finally:
            await network.close()
