"""The chaos controller: replays a fault plan against a transport.

Takes the same one-line :class:`~repro.sim.faults.FaultSpec` grammar the
epoch simulator uses and applies the process/socket-level kinds to a
:class:`~repro.network.transport.Transport` — either backend — at epoch
boundaries:

* ``kill:epoch=E:count=N`` (or ``node=ID``) — victims shut down abruptly
  and never return (``crash`` is accepted as an alias).
* ``pause:epoch=E:resume=E2:count=N`` — SIGSTOP-style stall until the
  ``resume`` epoch (default: one epoch later).
* ``partition:epoch=E:heal=E2:groups=G`` — seeded split into ``G``
  (default 2) balanced groups, healed at ``heal``.
* ``delay:from_epoch=A:to_epoch=B:seconds=S`` — extra per-delivery delay
  inside the window.
* ``drop:from_epoch=A:to_epoch=B:rate=R`` — seeded random message loss
  inside the window.

Victim selection draws from a per-spec :class:`random.Random` seeded by
``(base_seed, index, kind)`` — the same derivation as
:class:`~repro.sim.faults.FaultInjector` — over the cluster's stable node
order, so a plan replays identically on both backends and across runs.
Every action is appended to :attr:`events` (with the transport clock's
timestamp), which the resilience report publishes for replay comparison.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.network.transport import Transport
from repro.obs import get_tracer
from repro.sim.faults import FaultSpec

#: Spec kinds this controller executes (others — e.g. ``reorder`` — are
#: simulator-internal and ignored here).
CHAOS_KINDS = ("kill", "crash", "pause", "partition", "delay", "drop")


class ChaosController:
    """Executes the process/socket-level kinds of a fault plan."""

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        transport: Transport,
        nodes: Dict[int, object],
        node_order: Sequence[int],
        base_seed: int = 0,
        protected: Iterable[int] = (),
    ) -> None:
        self.specs = [spec for spec in specs if spec.kind in CHAOS_KINDS]
        self._rngs = [
            random.Random(f"{base_seed}/{index}/{spec.kind}")
            for index, spec in enumerate(self.specs)
        ]
        self.transport = transport
        self.nodes = nodes
        self.node_order = list(node_order)
        #: Nodes chaos never targets (the bootstrap/gateway host — the
        #: one piece of pinned infrastructure, as in the paper's study).
        self.protected = set(protected)
        self.base_seed = base_seed
        #: Chronological record of every action taken.
        self.events: List[dict] = []
        self.killed: set = set()
        self._paused_victims: Dict[int, List[int]] = {}
        self._delay_active: set = set()
        self._drop_active: set = set()
        self._partition_up: set = set()

    @classmethod
    def from_spec(
        cls,
        spec_string: Optional[str],
        transport: Transport,
        nodes: Dict[int, object],
        node_order: Sequence[int],
        base_seed: int = 0,
        protected: Iterable[int] = (),
    ) -> "ChaosController":
        specs = (
            [FaultSpec.parse(clause) for clause in spec_string.split(";") if clause]
            if spec_string
            else []
        )
        return cls(specs, transport, nodes, node_order, base_seed, protected)

    def to_string(self) -> str:
        return ";".join(spec.to_string() for spec in self.specs)

    # ------------------------------------------------------------------
    def _record(
        self, epoch: int, kind: str, scheduled_epoch: Optional[int] = None, **detail
    ) -> None:
        self.events.append(
            {"epoch": epoch, "t": round(self.transport.loop.now, 3), "kind": kind, **detail}
        )
        # Mirror every action into the trace as a typed chaos_action event
        # (no-op without a tracer), carrying both the epoch the spec
        # scheduled it for and the boundary it actually ran at — the
        # post-mortem correlator anchors causal chains on these.
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                "chaos_action",
                kind=kind,
                epoch=epoch,
                scheduled_epoch=scheduled_epoch if scheduled_epoch is not None else epoch,
                t=self.transport.loop.now,
                **detail,
            )

    def _sample_victims(
        self, rng: random.Random, count: int, node_param: Optional[object]
    ) -> List[int]:
        if node_param is not None:
            return [int(node_param)]
        pool = [
            node_id
            for node_id in self.node_order
            if self.transport.is_online(node_id)
            and node_id not in self.protected
            and not self.transport.is_paused(node_id)
        ]
        count = min(count, len(pool))
        return rng.sample(pool, count) if count else []

    # ------------------------------------------------------------------
    def on_epoch(self, epoch: int) -> None:
        """Apply every spec's actions due at this epoch boundary."""
        for index, (spec, rng) in enumerate(zip(self.specs, self._rngs)):
            kind = "kill" if spec.kind == "crash" else spec.kind
            if kind == "kill":
                self._apply_kill(epoch, spec, rng)
            elif kind == "pause":
                self._apply_pause(index, epoch, spec, rng)
            elif kind == "partition":
                self._apply_partition(index, epoch, spec, rng)
            elif kind == "delay":
                self._apply_delay(index, epoch, spec)
            elif kind == "drop":
                self._apply_drop(index, epoch, spec)

    # --- kinds ---------------------------------------------------------
    def _apply_kill(self, epoch: int, spec: FaultSpec, rng: random.Random) -> None:
        if spec.get("epoch") != epoch:
            return
        victims = self._sample_victims(rng, int(spec.get("count", 1)), spec.get("node"))
        tracer = get_tracer()
        for victim in victims:
            node = self.nodes.get(victim)
            if node is not None:
                node.shutdown(graceful=False)
            else:
                self.transport.set_online(victim, False)
            self.killed.add(victim)
            if tracer.enabled:
                tracer.emit(
                    "node_lifecycle", node=victim, state="killed",
                    epoch=epoch, reason="chaos-kill",
                    t=self.transport.loop.now,
                )
        self._record(epoch, "kill", scheduled_epoch=spec.get("epoch"),
                     nodes=sorted(victims))

    def _apply_pause(
        self, index: int, epoch: int, spec: FaultSpec, rng: random.Random
    ) -> None:
        if spec.get("epoch") == epoch:
            victims = self._sample_victims(
                rng, int(spec.get("count", 1)), spec.get("node")
            )
            for victim in victims:
                self.transport.pause(victim)
            self._paused_victims[index] = victims
            self._record(epoch, "pause", scheduled_epoch=spec.get("epoch"),
                         nodes=sorted(victims))
        resume_epoch = spec.get("resume", spec.get("epoch", 0) + 1)
        if resume_epoch == epoch and index in self._paused_victims:
            victims = self._paused_victims.pop(index)
            for victim in victims:
                self.transport.resume(victim)
            self._record(epoch, "resume", scheduled_epoch=resume_epoch,
                         nodes=sorted(victims))

    def _apply_partition(
        self, index: int, epoch: int, spec: FaultSpec, rng: random.Random
    ) -> None:
        if spec.get("epoch") == epoch:
            n_groups = max(2, int(spec.get("groups", 2)))
            order = list(self.node_order)
            rng.shuffle(order)
            groups = {
                node_id: position % n_groups for position, node_id in enumerate(order)
            }
            self.transport.set_partition(groups)
            self._partition_up.add(index)
            sizes = [sum(1 for g in groups.values() if g == i) for i in range(n_groups)]
            self._record(epoch, "partition", scheduled_epoch=spec.get("epoch"),
                         groups=n_groups, sizes=sizes)
        if spec.get("heal") == epoch and index in self._partition_up:
            self.transport.heal_partition()
            self._partition_up.discard(index)
            self._record(epoch, "partition_heal", scheduled_epoch=spec.get("heal"))

    def _apply_delay(self, index: int, epoch: int, spec: FaultSpec) -> None:
        if spec.in_window(epoch) and index not in self._delay_active:
            seconds = float(spec.get("seconds", 0.25))
            self.transport.set_extra_delay(seconds)
            self._delay_active.add(index)
            self._record(epoch, "delay_on", scheduled_epoch=spec.get("from_epoch"),
                         seconds=seconds)
        elif not spec.in_window(epoch) and index in self._delay_active:
            self.transport.set_extra_delay(0.0)
            self._delay_active.discard(index)
            self._record(epoch, "delay_off", scheduled_epoch=spec.get("to_epoch"))

    def _apply_drop(self, index: int, epoch: int, spec: FaultSpec) -> None:
        if spec.in_window(epoch) and index not in self._drop_active:
            rate = float(spec.get("rate", 0.1))
            self.transport.set_drop(rate, seed=f"{self.base_seed}/{index}")
            self._drop_active.add(index)
            self._record(epoch, "drop_on", scheduled_epoch=spec.get("from_epoch"),
                         rate=rate)
        elif not spec.in_window(epoch) and index in self._drop_active:
            self.transport.set_drop(0.0)
            self._drop_active.discard(index)
            self._record(epoch, "drop_off", scheduled_epoch=spec.get("to_epoch"))

    # ------------------------------------------------------------------
    def partition_heal_events(self) -> List[dict]:
        return [event for event in self.events if event["kind"] == "partition_heal"]

    def first_chaos_epoch(self) -> Optional[int]:
        epochs = [
            spec.get("epoch", spec.get("from_epoch"))
            for spec in self.specs
            if spec.get("epoch", spec.get("from_epoch")) is not None
        ]
        return min(epochs) if epochs else None
