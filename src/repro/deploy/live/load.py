"""Open-loop load generation for the resilience harness.

The fig15-style request mix (profile reads dominate, posts and messages
ride along) is laid out *before* the run as a fixed schedule: request
``i`` fires at ``start + i / rate`` regardless of how long earlier
requests took.  Open-loop is the honest way to load a system under
chaos — a closed loop would politely slow down exactly when the cluster
struggles, hiding the latency the gates are supposed to bound.

The plan is pure data (seeded, backend-agnostic); the harness executes
it against sim time or wall time.  Latencies are recorded into
:mod:`repro.obs` histograms, one per operation kind.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Default request mix — reads dominate, like the Fig. 15 mirror-load
#: study (profile requests are the bread-and-butter operation).
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("read", 0.70),
    ("post", 0.20),
    ("message", 0.10),
)

#: Sub-second log-spaced buckets for operation latency histograms
#: (loopback operations run from tens of microseconds to, under chaos,
#: whole retry timeouts).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


@dataclass(frozen=True)
class LoadOp:
    """One scheduled request: ``actor`` performs ``kind`` against ``target``.

    ``actor``/``target`` are *positions* in the cluster's stable node
    order, not node ids — the plan is built before key generation, so it
    is identical across backends and runs by construction.
    """

    at_s: float
    kind: str
    actor: int
    target: int


def build_load_plan(
    n_nodes: int,
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
    start_s: float = 0.0,
) -> List[LoadOp]:
    """Lay out the full open-loop schedule for a run."""
    if n_nodes < 2:
        raise ValueError("load generation needs at least two nodes")
    if rate_rps <= 0:
        raise ValueError("request rate must be positive")
    rng = random.Random(f"load/{seed}")
    total = sum(weight for _, weight in mix)
    ops: List[LoadOp] = []
    for index in range(int(rate_rps * duration_s)):
        draw = rng.random() * total
        kind = mix[-1][0]
        for candidate, weight in mix:
            if draw < weight:
                kind = candidate
                break
            draw -= weight
        actor = rng.randrange(n_nodes)
        target = rng.randrange(n_nodes - 1)
        if target >= actor:
            target += 1
        ops.append(LoadOp(start_s + index / rate_rps, kind, actor, target))
    return ops
