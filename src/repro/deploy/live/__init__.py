"""Live deployment runtime: real middleware over real sockets.

The simulator answers "does the protocol behave?"; this package answers
"does the *implementation* behave when the network is real" — real TCP
loopback sockets, real buffers, wall-clock timers, and process-level
chaos.  It is the second backend of the transport seam
(:mod:`repro.network.transport`):

* :mod:`repro.deploy.live.transport` — :class:`AsyncClock` (the wallclock
  :class:`~repro.network.transport.Clock`) and :class:`LiveTransport`
  (every frame crosses a real TCP loopback socket).
* :mod:`repro.deploy.live.chaos` — :class:`ChaosController`: replays a
  :class:`~repro.sim.faults.FaultPlan` spec (``kill``/``pause``/
  ``partition``/``delay``/``drop``) against either transport backend,
  seeded and epoch-triggered.
* :mod:`repro.deploy.live.load` — the open-loop fig15-style request mix.
* :mod:`repro.deploy.live.harness` — :class:`ResilienceHarness`: builds
  an N-node cluster on either backend, drives load + chaos, and emits a
  ``soup-resilience/v1`` report for :mod:`repro.deploy.gates`.
"""

from repro.deploy.live.chaos import ChaosController
from repro.deploy.live.harness import ResilienceConfig, ResilienceHarness
from repro.deploy.live.load import LoadOp, build_load_plan
from repro.deploy.live.transport import AsyncClock, LiveTransport

__all__ = [
    "AsyncClock",
    "ChaosController",
    "LiveTransport",
    "LoadOp",
    "ResilienceConfig",
    "ResilienceHarness",
    "build_load_plan",
]
