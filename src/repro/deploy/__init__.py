"""Deployment emulation (paper Sec. 7).

The paper deploys SOUP on a real 31-user DOSN (4 Android phones relaying
through one gateway/bootstrap node) and reports traffic and stability
measurements.  We reproduce that deployment over the simulated network:

* :mod:`repro.deploy.emulation` — builds the 31-node SOUP network (27
  desktop + 4 mobile), drives the measured workload (282 friendships, 204
  photos, 1189 messages) through real :class:`~repro.node.middleware.SoupNode`
  instances, and collects the Fig. 14a/14b/14c series from the traffic
  meters.
* :mod:`repro.deploy.workload` — the scheduled social workload.
* :mod:`repro.deploy.traffic` — the Fig. 15 mirror-load model: one mirror
  hosting 20 real-size profiles (206 MB, 2035 items) serving 1/10/20
  requests per second through a finite uplink.
* :mod:`repro.deploy.live` — the live TCP deployment backend: resilience
  harness, chaos controller, asyncio transport.
* :mod:`repro.deploy.gates` — declarative pass/fail gates over reports.
* :mod:`repro.deploy.postmortem` — content-keyed post-mortem bundles and
  the kill→consequence causal-chain correlator (``soup postmortem``).
"""

from repro.deploy.emulation import Deployment, DeploymentReport
from repro.deploy.postmortem import (
    Bundle,
    BundleError,
    CausalChain,
    Postmortem,
    assemble_bundle,
    correlate,
    load_bundle,
    render_postmortem,
)
from repro.deploy.traffic import MirrorLoadModel, MirrorLoadResult
from repro.deploy.workload import WorkloadEvent, build_workload

__all__ = [
    "Bundle",
    "BundleError",
    "CausalChain",
    "Deployment",
    "DeploymentReport",
    "MirrorLoadModel",
    "MirrorLoadResult",
    "Postmortem",
    "WorkloadEvent",
    "assemble_bundle",
    "build_workload",
    "correlate",
    "load_bundle",
    "render_postmortem",
]
