"""Declarative resilience gates over a ``soup-resilience/v1`` report.

A gate file is TOML, one ``[[gate]]`` table per assertion::

    [[gate]]
    name = "availability-during-churn"
    metric = "availability.during_chaos_min"   # dotted path into the report
    op = ">="
    value = 0.85
    description = "kills + partition must not sink serving below 85%"

``metric`` is resolved with dot-notation against the report dict; a
numeric hop indexes into a list (``availability.samples.0.availability``
is the first sample's value, ``samples.-1...`` the last), so gates can
pin per-epoch series entries, not just scalar summaries.  A missing or
null metric **fails** the gate (a run that could not measure recovery
did not demonstrate recovery).  ``op`` is one of ``<=``, ``>=``, ``<``,
``>``, ``==``, ``!=``.

Evaluation is pure data-in/data-out: :func:`evaluate_gates` returns a
verdict dict that the ``soup resilience`` CLI embeds into the report
(under ``"gates"``) and turns into its exit code — 0 when every gate
passed, 5 on violation.  The gate *file*, the chaos spec, and the seed
together make a resilience claim replayable from one command line.

TOML parsing uses :mod:`tomllib` where available (Python ≥ 3.11) and
falls back to a small built-in parser covering the gate-file subset
(``[[gate]]`` tables; string/number/boolean values) — the repo supports
3.9+ and must not grow dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

Number = Union[int, float]

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<=": lambda actual, bound: actual <= bound,
    ">=": lambda actual, bound: actual >= bound,
    "<": lambda actual, bound: actual < bound,
    ">": lambda actual, bound: actual > bound,
    "==": lambda actual, bound: actual == bound,
    "!=": lambda actual, bound: actual != bound,
}


@dataclass(frozen=True)
class Gate:
    """One declarative assertion against the report."""

    name: str
    metric: str
    op: str
    value: Number
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"gate {self.name!r}: unknown op {self.op!r}")
        if not self.metric:
            raise ValueError(f"gate {self.name!r}: empty metric path")


def resolve_metric(report: dict, path: str):
    """Walk a dotted path into the report; None if any hop is missing.

    Dict hops are key lookups; a hop that parses as an integer indexes
    into a list (negative indices count from the end), so paths like
    ``availability.samples.-1.availability`` reach into per-epoch series.

    Flattened summaries store nested metric groups under keys that
    *contain* literal dots (``arch.cache.hit_rate`` from
    ``SimulationResult.summary()``), so dict hops match longest-first:
    the longest joined run of remaining segments that is a key wins,
    backtracking to shorter prefixes when the rest of the path dead-ends.
    A stored ``None`` leaf is indistinguishable from a miss (gates fail
    on both, so nothing is lost).
    """
    return _resolve_segments(report, path.split("."))


def _resolve_segments(value, segments: List[str]):
    if not segments:
        return value
    if isinstance(value, dict):
        for cut in range(len(segments), 0, -1):
            key = ".".join(segments[:cut])
            if key in value:
                found = _resolve_segments(value[key], segments[cut:])
                if found is not None:
                    return found
        return None
    if isinstance(value, list):
        try:
            index = int(segments[0])
        except ValueError:
            return None
        if not -len(value) <= index < len(value):
            return None
        return _resolve_segments(value[index], segments[1:])
    return None


def evaluate_gates(gates: List[Gate], report: dict) -> dict:
    """Evaluate every gate; missing/null metrics fail (never vacuous)."""
    results = []
    for gate in gates:
        actual = resolve_metric(report, gate.metric)
        if isinstance(actual, bool):
            actual = int(actual)
        if actual is None or not isinstance(actual, (int, float)):
            results.append(
                {
                    "name": gate.name,
                    "metric": gate.metric,
                    "op": gate.op,
                    "value": gate.value,
                    "actual": None,
                    "passed": False,
                    "reason": "metric missing or not numeric",
                }
            )
            continue
        passed = _OPS[gate.op](actual, gate.value)
        results.append(
            {
                "name": gate.name,
                "metric": gate.metric,
                "op": gate.op,
                "value": gate.value,
                "actual": actual,
                "passed": passed,
                "reason": "" if passed else f"{actual!r} {gate.op} {gate.value!r} is false",
            }
        )
    return {
        "passed": all(result["passed"] for result in results),
        "violated": [result["name"] for result in results if not result["passed"]],
        "results": results,
    }


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def gates_from_mapping(data: dict) -> List[Gate]:
    raw_gates = data.get("gate", [])
    if not isinstance(raw_gates, list):
        raise ValueError("expected [[gate]] tables")
    gates = []
    for index, raw in enumerate(raw_gates):
        try:
            gates.append(
                Gate(
                    name=str(raw["name"]),
                    metric=str(raw["metric"]),
                    op=str(raw["op"]),
                    value=raw["value"],
                    description=str(raw.get("description", "")),
                )
            )
        except KeyError as exc:
            raise ValueError(f"gate #{index}: missing key {exc}") from None
    if not gates:
        raise ValueError("gate file defines no gates")
    return gates


def load_gates(path: Union[str, Path]) -> List[Gate]:
    text = Path(path).read_text(encoding="utf-8")
    try:
        import tomllib

        data = tomllib.loads(text)
    except ImportError:  # Python < 3.11: the bundled subset parser
        data = _parse_gates_toml(text)
    return gates_from_mapping(data)


def _parse_scalar(raw: str):
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        return raw[1:-1]
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"unsupported TOML value {raw!r}") from None


def _parse_gates_toml(text: str) -> dict:
    """Parse the gate-file TOML subset: ``[[gate]]`` array-of-tables with
    scalar key/value lines.  Not a general TOML parser — just enough for
    gate configs on Pythons without :mod:`tomllib`."""
    data: dict = {"gate": []}
    current: Optional[dict] = None
    for line_no, raw_line in enumerate(text.splitlines(), 1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[gate]]":
            current = {}
            data["gate"].append(current)
            continue
        if line.startswith("["):
            raise ValueError(
                f"line {line_no}: only [[gate]] tables are supported ({line!r})"
            )
        if "=" not in line:
            raise ValueError(f"line {line_no}: expected key = value ({line!r})")
        if current is None:
            raise ValueError(f"line {line_no}: key/value outside a [[gate]] table")
        key, raw_value = line.split("=", 1)
        # Strip trailing comments outside quoted strings.
        raw_value = raw_value.strip()
        if raw_value.startswith(('"', "'")):
            quote = raw_value[0]
            end = raw_value.find(quote, 1)
            if end < 0:
                raise ValueError(f"line {line_no}: unterminated string ({line!r})")
            trailer = raw_value[end + 1 :].strip()
            if trailer and not trailer.startswith("#"):
                raise ValueError(
                    f"line {line_no}: trailing content after string ({line!r})"
                )
            raw_value = raw_value[: end + 1]
        elif "#" in raw_value:
            raw_value = raw_value.split("#", 1)[0].strip()
        current[key.strip()] = _parse_scalar(raw_value)
    return data
