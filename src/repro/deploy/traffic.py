"""Mirror-load model: serving popular data at high request rates (Fig. 15).

The paper's stress test: one mirror hosts 20 real Facebook profiles
(206 MB across 2035 unique items; 35 % of items < 10 KB, 93 % < 100 KB,
large items rare) and serves text/photo/video requests "according to the
request probabilities for each data type as described in [23]" at 1, 10 and
20 requests per second.  Average consumption stays well below 600 KB/s even
at 20 req/s; an increasing rate hits the rare large items more often,
causing the spikes, and an overloaded mirror may time requests out.

The model builds the same inventory, draws requests from a text-heavy mix,
and serves them through a finite uplink with a FIFO backlog — producing the
per-second bandwidth series and timeout counts the figure shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


#: Request mix per data type, after [23] (web/OSN traffic is dominated by
#: small text/photo fetches; video is a rare, heavy tail).
REQUEST_MIX = (("text", 0.70), ("photo", 0.295), ("video", 0.005))


def build_inventory(
    rng: random.Random,
    n_profiles: int = 20,
    total_items: int = 2035,
    target_total_bytes: float = 206e6,
) -> Dict[str, List[int]]:
    """Create the hosted item inventory matching the Sec. 7 measurements.

    Item sizes are drawn per type from the measured shape (35 % < 10 KB,
    93 % < 100 KB) and then rescaled so the totals match the published
    206 MB across 2035 items.
    """
    from repro.node.profile import sample_item_size

    counts = {
        "text": int(total_items * 0.40),
        "photo": int(total_items * 0.57),
    }
    counts["video"] = max(1, total_items - sum(counts.values()))

    inventory = {
        kind: [sample_item_size(kind, rng) for _ in range(count)]
        for kind, count in counts.items()
    }
    total = sum(sum(sizes) for sizes in inventory.values())
    scale = target_total_bytes / total
    return {
        kind: [max(64, int(size * scale)) for size in sizes]
        for kind, sizes in inventory.items()
    }


@dataclass
class MirrorLoadResult:
    """Outcome of one constant-rate serving run."""

    request_rate: float
    #: (second, KB/s) series of bytes actually served.
    bandwidth_series: List[Tuple[int, float]]
    requests_served: int
    requests_timed_out: int

    @property
    def mean_kb_per_s(self) -> float:
        if not self.bandwidth_series:
            return 0.0
        return float(np.mean([kb for _, kb in self.bandwidth_series]))

    @property
    def peak_kb_per_s(self) -> float:
        return max((kb for _, kb in self.bandwidth_series), default=0.0)


@dataclass
class MirrorLoadModel:
    """One mirror serving its stored profiles through a finite uplink."""

    uplink_bytes_per_s: float = 800_000.0
    timeout_s: float = 10.0
    seed: int = 0

    def run(self, request_rate: float, duration_s: int = 300) -> MirrorLoadResult:
        """Serve Poisson-arriving requests for ``duration_s`` seconds."""
        if request_rate <= 0:
            raise ValueError(f"request rate must be positive, got {request_rate}")
        rng = random.Random(self.seed)
        np_rng = np.random.default_rng(self.seed)
        inventory = build_inventory(rng)
        kinds = [kind for kind, _ in REQUEST_MIX]
        mix = np.array([p for _, p in REQUEST_MIX])
        mix = mix / mix.sum()

        backlog: List[Tuple[float, int]] = []  # (arrival time, bytes left)
        series: List[Tuple[int, float]] = []
        served = 0
        timed_out = 0

        for second in range(duration_s):
            # Arrivals this second.
            for _ in range(int(np_rng.poisson(request_rate))):
                kind = kinds[int(np_rng.choice(len(kinds), p=mix))]
                size = rng.choice(inventory[kind])
                backlog.append((float(second), size))

            # Expire requests stuck in the backlog beyond the timeout.
            fresh: List[Tuple[float, int]] = []
            for arrival, remaining in backlog:
                if second - arrival > self.timeout_s:
                    timed_out += 1
                else:
                    fresh.append((arrival, remaining))
            backlog = fresh

            # Serve FIFO up to the uplink capacity.
            budget = self.uplink_bytes_per_s
            sent = 0.0
            next_backlog: List[Tuple[float, int]] = []
            for arrival, remaining in backlog:
                if budget <= 0:
                    next_backlog.append((arrival, remaining))
                    continue
                chunk = min(remaining, budget)
                budget -= chunk
                sent += chunk
                if remaining > chunk:
                    next_backlog.append((arrival, int(remaining - chunk)))
                else:
                    served += 1
            backlog = next_backlog
            series.append((second, sent / 1024.0))

        return MirrorLoadResult(
            request_rate=request_rate,
            bandwidth_series=series,
            requests_served=served,
            requests_timed_out=timed_out,
        )

    def sweep(self, rates=(1.0, 10.0, 20.0), duration_s: int = 300) -> List[MirrorLoadResult]:
        """The Fig. 15 sweep over request rates."""
        return [self.run(rate, duration_s=duration_s) for rate in rates]
