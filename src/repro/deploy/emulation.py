"""The 31-node deployment emulation (paper Sec. 7).

Builds the deployment exactly as described: 31 users, 4 on (simulated)
Android phones relaying through a single gateway that doubles as the
bootstrap node, the rest on desktops.  Real :class:`SoupNode` instances run
the full middleware over the metered network; the measured workload drives
friendships, photos and messages; selection rounds run periodically.

Outputs map to the paper's figures:

* Fig. 14a — DHT control traffic at the bootstrap node: spikes on join/
  leave (entry shifting + state transfer), lookups invisible.
* Fig. 14b — the busiest user's traffic: profile distribution to mirrors
  and album publishing dominate; messaging ≈ idle link.
* Fig. 14c — mirror-set variance per selection round, stabilizing at ~1
  (the random exploration node).
* Availability: the paper observed no data loss; the emulation verifies
  every profile request succeeded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.sim.metrics import ReliabilityMetrics
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import DESKTOP_LINK, MOBILE_LINK, SERVER_LINK, SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem, sample_item_size
from repro.deploy.workload import WorkloadEvent, build_workload

#: Bytes of Pastry state handed to a joining node (routing rows + leaf set).
_JOIN_STATE_BYTES = 24_000


def _identity(node_id: int) -> int:
    """Deployment nodes join the overlay under their SOUP id directly."""
    return node_id


class _DeploymentView:
    """Duck-typed engine view over a live deployment.

    :meth:`SuperPeerEconomy.begin_round` reads uptime, capacities, and
    electability; the deployment serves them as dicts keyed by (sparse)
    SOUP ids instead of the simulator's dense arrays.
    """

    def __init__(self, deployment: "Deployment") -> None:
        self._deployment = deployment
        self.capacities = {
            user.node_id: user.mirror_manager.store.capacity_profiles
            for user in deployment.users
        }

    def observed_uptime(self, epoch: int) -> Dict[int, float]:
        elapsed = max(self._deployment._elapsed_s, 1e-9)
        return {
            node_id: min(1.0, seconds / elapsed)
            for node_id, seconds in self._deployment._online_seconds.items()
        }

    def is_electable(self, node_id: int) -> bool:
        node = self._deployment.nodes.get(node_id)
        return (
            node is not None and node.joined and node.online and not node.is_mobile
        )


@dataclass
class DeploymentReport:
    """Everything the emulation measured."""

    n_users: int
    n_mobile: int
    friendships: int
    photos_shared: int
    messages_sent: int
    profile_requests: int
    profile_failures: int
    #: (second, KB/s) at the bootstrap/gateway node (Fig. 14a).
    gateway_series: List[Tuple[int, float]] = field(default_factory=list)
    #: (second, KB/s) of the busiest user (Fig. 14b).
    busiest_user_series: List[Tuple[int, float]] = field(default_factory=list)
    busiest_user: str = ""
    #: Mean |M_t Δ M_{t-1}| per selection round (Fig. 14c).
    mirror_variance_by_round: List[float] = field(default_factory=list)
    #: Reliability-layer counters aggregated over every node's endpoint
    #: (retries, give-ups, failure declarations, circuit transitions).
    reliability: Optional[ReliabilityMetrics] = None
    #: Which pluggable architecture ran, and its per-component metrics
    #: (same ``{component: {metric: value}}`` shape as the simulator's
    #: ``SimulationResult.arch``).
    architecture: str = "soup"
    arch_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        if self.profile_requests == 0:
            return 1.0
        return 1.0 - self.profile_failures / self.profile_requests


class Deployment:
    """A scripted SOUP deployment over the simulated network."""

    def __init__(
        self,
        n_desktop: int = 27,
        n_mobile: int = 4,
        seed: int = 7,
        config: Optional[SoupConfig] = None,
        key_bits: int = 512,
        crypto_mode: str = "full",
        architecture: str = "soup",
    ) -> None:
        if n_desktop < 1:
            raise ValueError("need at least one desktop node (the gateway)")
        self.rng = random.Random(seed)
        self.config = config or SoupConfig()
        self.loop = EventLoop()
        self.network = SimNetwork(self.loop)
        self.overlay = PastryOverlay()
        # Publish/lookup see the network's real online state, so republish
        # backoff and lookup alternates engage under churn.  (The overlay
        # default — everyone live — is kept for unit scenarios that park
        # offline nodes in the ring.)
        self.overlay.set_liveness(self.network.is_online)
        self.registry = BootstrapRegistry()
        self.nodes: Dict[int, SoupNode] = {}
        self.users: List[SoupNode] = []
        self._seed = seed
        self._key_bits = key_bits
        self.crypto_mode = crypto_mode
        self.n_desktop = n_desktop
        self.n_mobile = n_mobile

        # Pluggable architecture (repro.arch): the same strategy objects
        # the simulator uses, installed on the *real* overlay and nodes.
        from repro.arch import create_architecture

        self.arch = create_architecture(architecture, self.config)
        if self.arch.placement is not None:
            self.overlay.set_placement(self.arch.placement)
        if self.arch.routing is not None:
            self.overlay.set_routing_policy(self.arch.routing)
        #: Cumulative per-node online seconds (the deployment's uptime
        #: observation for super-peer election).
        self._online_seconds: Dict[int, float] = {}
        self._elapsed_s = 0.0

    # ------------------------------------------------------------------
    def _resolve(self, node_id: int) -> Optional[SoupNode]:
        return self.nodes.get(node_id)

    def _new_node(self, name: str, is_mobile: bool, link=None) -> SoupNode:
        node = SoupNode(
            name=name,
            network=self.network,
            overlay=self.overlay,
            registry=self.registry,
            peer_resolver=self._resolve,
            config=self.config,
            seed=self.rng.randrange(2**31),
            is_mobile=is_mobile,
            link=link,
            key_bits=self._key_bits,
            crypto_mode=self.crypto_mode,
            # Sec. 7: "All phones were relaying via the same gateway node"
            # — the study pinned phones to the gateway, so regular users
            # refuse relays (the limit every regular node can set).
            mobile_relay_limit=0,
        )
        self.nodes[node.node_id] = node
        self.users.append(node)
        node.mirror_manager.selection_strategy = self.arch.selection
        node.read_cache = self.arch.read_path
        self._online_seconds[node.node_id] = 0.0
        return node

    def build(self, join_spread_s: float = 45.0) -> None:
        """Create and join all nodes; the first desktop is the gateway.

        Joins are staggered over ``join_spread_s`` so each one's control
        spike is individually visible in the Fig. 14a series.
        """
        gateway = self._new_node("gateway", is_mobile=False, link=SERVER_LINK)
        gateway.join()
        gateway.make_bootstrap_node()
        self._charge_join(gateway)

        total_joiners = max(1, self.n_desktop - 1 + self.n_mobile)
        step = join_spread_s / total_joiners
        for index in range(1, self.n_desktop):
            self.loop.run_until(self.loop.now + step)
            node = self._new_node(f"user{index:02d}", is_mobile=False)
            node.join(bootstrap_id=gateway.node_id)
            self._charge_join(node)
        for index in range(self.n_mobile):
            self.loop.run_until(self.loop.now + step)
            node = self._new_node(f"mobile{index:02d}", is_mobile=True)
            # "All phones were relaying via the same gateway node."
            node.join(bootstrap_id=gateway.node_id)
        self.loop.run_until(self.loop.now + 1.0)

    def _charge_join(self, node: SoupNode) -> None:
        """Account the join cost: state transfer + shifted entries.

        This is what makes joins visible as the 20-40 KB/s spikes at the
        bootstrap node in Fig. 14a.
        """
        if node.is_mobile:
            return
        gateway_id = self.registry.all()[0] if len(self.registry) else None
        now = self.loop.now
        if gateway_id is not None and node.node_id != gateway_id:
            self.network.control_meter(gateway_id).record_sent(now, _JOIN_STATE_BYTES)
            self.network.control_meter(node.node_id).record_received(
                now, _JOIN_STATE_BYTES
            )
        for record in self.overlay.transfer_log:
            self.network.control_meter(record.from_node).record_sent(
                now, record.size_bytes
            )
            self.network.control_meter(record.to_node).record_received(
                now, record.size_bytes
            )
        self.overlay.transfer_log.clear()

    # ------------------------------------------------------------------
    def run(
        self,
        duration_s: float = 1800.0,
        selection_rounds: int = 15,
        workload: Optional[List[WorkloadEvent]] = None,
    ) -> DeploymentReport:
        """Drive the workload and periodic selection rounds; measure."""
        if not self.users:
            self.build()
        users = self.users
        if workload is None:
            workload = build_workload(len(users), duration_s, self.rng)

        report = DeploymentReport(
            n_users=len(users),
            n_mobile=sum(1 for u in users if u.is_mobile),
            friendships=0,
            photos_shared=0,
            messages_sent=0,
            profile_requests=0,
            profile_failures=0,
        )

        round_interval = duration_s / selection_rounds
        next_round = round_interval
        previous_sets: Dict[int, set] = {u.node_id: set() for u in users}
        event_index = 0
        current = self.loop.now
        step = 1.0

        # A few leave/rejoin churn events mid-run: the paper observes DHT
        # utilization "only upon join and leave operations" (Fig. 14a).
        churn_candidates = [u for u in users[1:] if not u.is_mobile]
        churn_schedule: List[Tuple[float, str, SoupNode]] = []
        if churn_candidates:
            for i in range(min(3, len(churn_candidates))):
                victim = churn_candidates[-(i + 1)]
                leave_at = duration_s * (0.35 + 0.18 * i)
                churn_schedule.append((leave_at, "leave", victim))
                churn_schedule.append((leave_at + 120.0, "rejoin", victim))
        churn_schedule.sort(key=lambda item: item[0])
        churn_index = 0

        while current < duration_s:
            while (
                churn_index < len(churn_schedule)
                and churn_schedule[churn_index][0] <= current
            ):
                _, action, victim = churn_schedule[churn_index]
                churn_index += 1
                if action == "leave" and victim.node_id in self.overlay:
                    transfers = self.overlay.leave(victim.node_id)
                    victim.go_offline()
                    self.overlay.transfer_log.clear()
                    now = self.loop.now
                    for record in transfers:
                        self.network.control_meter(record.from_node).record_sent(
                            now, record.size_bytes
                        )
                        self.network.control_meter(record.to_node).record_received(
                            now, record.size_bytes
                        )
                elif action == "rejoin" and victim.node_id not in self.overlay:
                    self.overlay.join(victim.node_id, users[0].node_id)
                    victim.go_online()
                    self._charge_join(victim)
            # Social events due in this step.
            while (
                event_index < len(workload)
                and workload[event_index].time_s <= current
            ):
                self._apply_event(workload[event_index], report)
                event_index += 1

            # Periodic selection rounds (Fig. 14c measures their variance).
            if current >= next_round:
                self._begin_arch_round(len(report.mirror_variance_by_round))
                diffs = []
                for user in users:
                    user.exchange_experience_sets()
                for user in users:
                    accepted = set(user.run_selection_round())
                    diffs.append(
                        len(accepted.symmetric_difference(previous_sets[user.node_id]))
                    )
                    previous_sets[user.node_id] = accepted
                report.mirror_variance_by_round.append(
                    sum(diffs) / max(1, len(diffs))
                )
                next_round += round_interval

            for user in users:
                if user.online:
                    self._online_seconds[user.node_id] += step
            self._elapsed_s = current + step
            current += step
            self.loop.run_until(current)

        gateway = users[0]
        # Fig. 14a shows "the bandwidth consumption of the DHT at our
        # bootstrapping node": control traffic only, not user data.
        report.gateway_series = self.network.control_meter(
            gateway.node_id
        ).series_kb_per_s(0, int(duration_s))

        # The busiest user by peak traffic, excluding the gateway.
        busiest = max(
            users[1:],
            key=lambda u: self.network.meters[u.node_id].peak_kb_per_s(),
            default=gateway,
        )
        report.busiest_user = busiest.name
        report.busiest_user_series = self.network.meters[
            busiest.node_id
        ].series_kb_per_s(0, int(duration_s))
        report.reliability = self._aggregate_reliability()
        report.architecture = self.arch.name
        report.arch_metrics = self.arch.metrics()
        return report

    def _begin_arch_round(self, round_index: int) -> None:
        """Architecture hooks at a selection-round boundary.

        The social map is rebound so anchors track newly formed
        friendships — every node republishes its entry in the same round,
        so publish and lookup agree on the remapped keys again before the
        next read.  Super-peer election sees uptime observed so far.
        """
        arch = self.arch
        if arch.placement is not None or arch.routing is not None:
            friends_of = {
                u.node_id: sorted(u.social.friends()) for u in self.users
            }
            if arch.placement is not None:
                arch.placement.bind_social_graph(friends_of, _identity)
            if arch.routing is not None:
                arch.routing.bind_social_graph(friends_of, _identity)
        if arch.selection is not None:
            arch.selection.begin_round(_DeploymentView(self), round_index)

    def _aggregate_reliability(self) -> ReliabilityMetrics:
        """Roll every node's endpoint counters (including circuit-breaker
        transitions) into one :class:`ReliabilityMetrics`."""
        metrics = ReliabilityMetrics()
        for user in self.users:
            endpoint = user.reliability
            metrics.transfer_retries += endpoint.stats.retries
            metrics.transfer_giveups += endpoint.stats.give_ups
            metrics.deaths_declared += endpoint.detector.deaths_declared
            metrics.revivals += endpoint.detector.revivals
            metrics.repairs_triggered += user.mirror_manager.repairs_triggered
            metrics.repair_replacements += user.mirror_manager.repair_replacements
            for key, count in endpoint.breaker.transitions.items():
                metrics.circuit_transitions[key] = (
                    metrics.circuit_transitions.get(key, 0) + count
                )
        return metrics

    # ------------------------------------------------------------------
    def _apply_event(self, event: WorkloadEvent, report: DeploymentReport) -> None:
        actor = self.users[event.actor % len(self.users)]
        target = self.users[event.target % len(self.users)]
        if actor is target or not actor.online:
            return
        if event.kind == "friendship":
            if actor.befriend(target.node_id):
                actor.contact(target.node_id)
                target.contact(actor.node_id)
                report.friendships += 1
        elif event.kind == "photo":
            size = sample_item_size("photo", self.rng)
            actor.post_item(DataItem.photo(size_bytes=size, created_at=self.loop.now))
            report.photos_shared += 1
        elif event.kind == "album":
            # A photo album: a burst of photos published at once — the
            # dominant bandwidth event of Fig. 14b.
            for _ in range(24):
                size = sample_item_size("photo", self.rng)
                actor.post_item(
                    DataItem.photo(size_bytes=size, created_at=self.loop.now)
                )
            report.photos_shared += 24
        elif event.kind == "message":
            if actor.send_message(target.node_id, f"hi from {actor.name}"):
                report.messages_sent += 1
        elif event.kind == "profile_view":
            report.profile_requests += 1
            album = self.rng.random() < 0.1
            size = 400_000 if album else None
            if not actor.request_profile(target.node_id, fetch_bytes=size):
                report.profile_failures += 1
        else:
            raise ValueError(f"unknown workload event kind {event.kind!r}")
