"""Symmetric encryption for SOUP payloads.

ABE in SOUP protects a *symmetric content key*; the bulk data is encrypted
symmetrically (paper Sec. 3.4).  With no third-party crypto packages
available offline, this module implements a counter-mode stream cipher whose
keystream blocks are SHA-256(key || nonce || counter), authenticated with an
HMAC-SHA256 tag (encrypt-then-MAC).  Simulation-grade, self-contained.
"""

from __future__ import annotations

import hashlib
import hmac
import os

_NONCE_SIZE = 16
_TAG_SIZE = 32
_BLOCK_SIZE = 32  # SHA-256 output size


class SymmetricCipherError(Exception):
    """Raised on malformed ciphertexts or failed authentication."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes from SHA-256 in counter mode."""
    blocks = []
    for counter in range((length + _BLOCK_SIZE - 1) // _BLOCK_SIZE):
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def _mac_key(key: bytes) -> bytes:
    """Derive an independent MAC key from the encryption key."""
    return hashlib.sha256(b"soup-mac" + key).digest()


def symmetric_encrypt(key: bytes, plaintext: bytes, nonce: bytes = None) -> bytes:
    """Encrypt ``plaintext``; returns ``nonce || ciphertext || tag``.

    ``nonce`` may be pinned for deterministic tests; by default a random
    16-byte nonce is drawn from ``os.urandom``.
    """
    if len(key) < 16:
        raise SymmetricCipherError("key must be at least 128 bits")
    if nonce is None:
        nonce = os.urandom(_NONCE_SIZE)
    if len(nonce) != _NONCE_SIZE:
        raise SymmetricCipherError(f"nonce must be {_NONCE_SIZE} bytes")
    stream = _keystream(key, nonce, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(_mac_key(key), nonce + body, hashlib.sha256).digest()
    return nonce + body + tag


def symmetric_decrypt(key: bytes, blob: bytes) -> bytes:
    """Authenticate and decrypt a blob produced by :func:`symmetric_encrypt`."""
    if len(blob) < _NONCE_SIZE + _TAG_SIZE:
        raise SymmetricCipherError("ciphertext too short")
    nonce = blob[:_NONCE_SIZE]
    body = blob[_NONCE_SIZE:-_TAG_SIZE]
    tag = blob[-_TAG_SIZE:]
    expected = hmac.new(_mac_key(key), nonce + body, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise SymmetricCipherError("authentication failed")
    stream = _keystream(key, nonce, len(body))
    return bytes(c ^ s for c, s in zip(body, stream))
