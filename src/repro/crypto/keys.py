"""User identity keys and signed envelopes.

Combines the RSA substrate with SOUP ID derivation: a :class:`KeyPair` is a
user's long-term identity, and :class:`SignedEnvelope` is the generic
"appropriately signed SOUP object" wrapper (paper Sec. 3.4: requests to
modify data "must be encapsulated in an appropriately signed SOUP object,
and will otherwise be discarded").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto import rsa
from repro.crypto.hashing import soup_id_from_public_key


@dataclass(frozen=True)
class KeyPair:
    """A user's identity: RSA keys plus the derived 64-bit SOUP ID."""

    rsa_keys: rsa.RsaKeyPair
    soup_id: int

    @classmethod
    def generate(cls, bits: int = 1024, seed: Optional[int] = None) -> "KeyPair":
        keys = rsa.generate_keypair(bits=bits, seed=seed)
        return cls(rsa_keys=keys, soup_id=soup_id_from_public_key(keys.public.to_bytes()))

    @property
    def public(self) -> rsa.RsaPublicKey:
        return self.rsa_keys.public

    @property
    def private(self) -> rsa.RsaPrivateKey:
        return self.rsa_keys.private


@dataclass(frozen=True)
class SignedEnvelope:
    """A payload with the signer's SOUP ID and RSA signature attached."""

    signer_id: int
    payload: bytes
    signature: int

    def size_bytes(self) -> int:
        return len(self.payload) + 8 + 128  # id + 1024-bit signature


def _canonical_payload(payload: Any) -> bytes:
    """Serialize a payload deterministically for signing."""
    if isinstance(payload, bytes):
        return payload
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def sign_payload(payload: Any, keys: KeyPair) -> SignedEnvelope:
    """Wrap ``payload`` (bytes or JSON-serializable) in a signed envelope."""
    body = _canonical_payload(payload)
    return SignedEnvelope(
        signer_id=keys.soup_id,
        payload=body,
        signature=rsa.sign(body, keys.private),
    )


def verify_envelope(envelope: SignedEnvelope, public_key: rsa.RsaPublicKey) -> bool:
    """Check an envelope's signature against the claimed signer's key."""
    return rsa.verify(envelope.payload, envelope.signature, public_key)
