"""Access structures for attribute-based encryption.

An access structure is a tree whose internal nodes are threshold gates
(``k``-of-``n``; AND is ``n``-of-``n``, OR is ``1``-of-``n``) and whose leaves
are attribute names (paper Sec. 3.4: "the symmetric key for encrypted content
is protected by an Access Structure, which is defined by a combination of
attributes").  The helpers :func:`attr`, :func:`and_of`, :func:`or_of` and
:func:`threshold` build trees declaratively::

    policy = and_of(attr("colleague"), or_of(attr("lives-nearby"), attr("family")))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Sequence, Tuple


@dataclass(frozen=True)
class AccessStructure:
    """A node in an access-structure tree.

    Leaves carry ``attribute`` and no children; internal nodes carry a
    ``threshold`` (how many children must be satisfied) and the children.
    """

    attribute: str = ""
    threshold: int = 0
    children: Tuple["AccessStructure", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.is_leaf:
            if self.children:
                raise ValueError("leaf nodes cannot have children")
        else:
            if not self.children:
                raise ValueError("internal nodes need at least one child")
            if not 1 <= self.threshold <= len(self.children):
                raise ValueError(
                    f"threshold {self.threshold} invalid for "
                    f"{len(self.children)} children"
                )

    @property
    def is_leaf(self) -> bool:
        return bool(self.attribute)

    def attributes(self) -> FrozenSet[str]:
        """The set of attribute names mentioned anywhere in the tree."""
        if self.is_leaf:
            return frozenset((self.attribute,))
        found = frozenset()
        for child in self.children:
            found |= child.attributes()
        return found

    def is_satisfied_by(self, held: Iterable[str]) -> bool:
        """Evaluate whether a set of attributes satisfies this structure."""
        held_set = frozenset(held)
        if self.is_leaf:
            return self.attribute in held_set
        satisfied = sum(1 for child in self.children if child.is_satisfied_by(held_set))
        return satisfied >= self.threshold

    def describe(self) -> str:
        """Human-readable policy string (used in logs and examples)."""
        if self.is_leaf:
            return self.attribute
        inner = ", ".join(child.describe() for child in self.children)
        if self.threshold == len(self.children):
            return f"AND({inner})"
        if self.threshold == 1:
            return f"OR({inner})"
        return f"{self.threshold}-of-({inner})"


def attr(name: str) -> AccessStructure:
    """A leaf requiring the attribute ``name``."""
    if not name:
        raise ValueError("attribute name must be non-empty")
    return AccessStructure(attribute=name)


def threshold(k: int, *children: AccessStructure) -> AccessStructure:
    """A ``k``-of-``n`` threshold gate over ``children``."""
    return AccessStructure(threshold=k, children=tuple(children))


def and_of(*children: AccessStructure) -> AccessStructure:
    """All children must be satisfied."""
    return threshold(len(children), *children)


def or_of(*children: AccessStructure) -> AccessStructure:
    """Any one child suffices."""
    return threshold(1, *children)
