"""Simulation-grade Ciphertext-Policy ABE.

SOUP encrypts every data item so that "only requesters holding the correct
attribute key can decrypt it" and, crucially, "the mirrors themselves cannot
access the data stored at their premises" (paper Sec. 3.4).  The original
system uses the pairing-based ``cpabe`` toolkit; pairings need native
libraries unavailable in this offline environment, so we reproduce the
*semantics* with a classical construction:

* The data owner acts as the **attribute authority**: she holds a master
  secret and derives one symmetric *attribute key* per attribute name
  (HMAC of the master secret).  She hands attribute keys to the contacts she
  deems to hold those attributes (e.g. ``colleague``, ``lives-in-my-city``).

* **Encryption** under an access structure splits a fresh content key down
  the structure tree with Shamir secret sharing (threshold gates map directly
  onto Shamir thresholds) and wraps each leaf share under the leaf's
  attribute key.

* **Decryption** succeeds iff the requester's attribute keys satisfy the
  structure: satisfied leaves unwrap their shares, and Lagrange interpolation
  recombines them bottom-up.

Mirrors never receive attribute keys for other users' data, so they store
ciphertext they cannot read — exactly the behaviour the paper requires.

.. warning::
   Against a real adversary this is key distribution, not public-key ABE:
   anyone holding an attribute key for ``a`` could wrap shares for ``a``.
   The reproduction only needs the enforcement semantics (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.crypto.access import AccessStructure
from repro.crypto.symmetric import (
    SymmetricCipherError,
    symmetric_decrypt,
    symmetric_encrypt,
)
from repro.obs import get_registry
from repro.obs.profiling import PROFILER

# Prime field for Shamir sharing; 2**255 - 19 comfortably holds 256-bit keys.
_FIELD_PRIME = 2**255 - 19
_KEY_SIZE = 16  # content keys are 128-bit


class AbeError(Exception):
    """Raised on policy violations or malformed ciphertexts."""


@dataclass(frozen=True)
class AbePublicParameters:
    """Public handle identifying an authority (the owner's key fingerprint)."""

    authority_id: str


@dataclass(frozen=True)
class AbePrivateKey:
    """A user's decryption key: attribute name -> attribute key bytes."""

    authority_id: str
    attribute_keys: Mapping[str, bytes]

    def attributes(self) -> FrozenSet[str]:
        return frozenset(self.attribute_keys)


@dataclass(frozen=True)
class AbeCiphertext:
    """An ABE-encrypted blob: the policy, wrapped shares, and the payload.

    ``wrapped_shares`` maps a leaf path (tuple of child indices from the
    root) to the share encrypted under that leaf's attribute key.
    """

    authority_id: str
    policy: AccessStructure
    wrapped_shares: Mapping[Tuple[int, ...], bytes]
    payload: bytes

    def size_bytes(self) -> int:
        """Approximate wire size, used by the traffic models."""
        share_bytes = sum(len(blob) for blob in self.wrapped_shares.values())
        return len(self.payload) + share_bytes


def _share_secret(
    secret: int, threshold: int, count: int, rng_bytes
) -> List[int]:
    """Shamir-share ``secret`` as ``count`` points with the given threshold.

    Share ``i`` is the polynomial evaluated at ``x = i + 1``.
    """
    coefficients = [secret] + [
        int.from_bytes(rng_bytes(32), "big") % _FIELD_PRIME
        for _ in range(threshold - 1)
    ]
    shares = []
    for i in range(count):
        x = i + 1
        value = 0
        for power, coefficient in enumerate(coefficients):
            value = (value + coefficient * pow(x, power, _FIELD_PRIME)) % _FIELD_PRIME
        shares.append(value)
    return shares


def _combine_shares(points: List[Tuple[int, int]]) -> int:
    """Lagrange-interpolate the secret (value at x=0) from ``points``."""
    secret = 0
    for i, (xi, yi) in enumerate(points):
        numerator, denominator = 1, 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (-xj)) % _FIELD_PRIME
            denominator = (denominator * (xi - xj)) % _FIELD_PRIME
        term = yi * numerator * pow(denominator, -1, _FIELD_PRIME)
        secret = (secret + term) % _FIELD_PRIME
    return secret


def _derive_attribute_key(master_secret: bytes, attribute: str) -> bytes:
    return hmac.new(master_secret, b"attr:" + attribute.encode("utf-8"), hashlib.sha256).digest()


class AbeAuthority:
    """The attribute authority for one data owner.

    Every SOUP user is the authority for her own data: she decides which
    contacts hold which attributes and issues them the matching keys.
    """

    def __init__(self, master_secret: Optional[bytes] = None, authority_id: str = "") -> None:
        self._master_secret = master_secret if master_secret is not None else os.urandom(32)
        self._authority_id = authority_id or hashlib.sha256(self._master_secret).hexdigest()[:16]

    @property
    def public_parameters(self) -> AbePublicParameters:
        return AbePublicParameters(authority_id=self._authority_id)

    def issue_key(self, attributes: Iterable[str]) -> AbePrivateKey:
        """Issue a private key granting the given attributes."""
        keys = {
            attribute: _derive_attribute_key(self._master_secret, attribute)
            for attribute in attributes
        }
        if not keys:
            raise AbeError("cannot issue a key with no attributes")
        return AbePrivateKey(authority_id=self._authority_id, attribute_keys=keys)

    def encrypt(
        self,
        plaintext: bytes,
        policy: AccessStructure,
        rng_bytes=os.urandom,
    ) -> AbeCiphertext:
        """Encrypt ``plaintext`` so only keys satisfying ``policy`` decrypt it."""
        with PROFILER.span("crypto.abe.encrypt"):
            return self._encrypt(plaintext, policy, rng_bytes)

    def _encrypt(
        self,
        plaintext: bytes,
        policy: AccessStructure,
        rng_bytes=os.urandom,
    ) -> AbeCiphertext:
        get_registry().counter("crypto.abe.encrypts").inc()
        content_key = rng_bytes(_KEY_SIZE)
        secret = int.from_bytes(content_key, "big")
        wrapped: Dict[Tuple[int, ...], bytes] = {}

        def descend(node: AccessStructure, node_secret: int, path: Tuple[int, ...]) -> None:
            if node.is_leaf:
                leaf_key = _derive_attribute_key(self._master_secret, node.attribute)
                share_bytes = node_secret.to_bytes(32, "big")
                wrapped[path] = symmetric_encrypt(leaf_key, share_bytes, nonce=rng_bytes(16))
                return
            shares = _share_secret(node_secret, node.threshold, len(node.children), rng_bytes)
            for index, (child, share) in enumerate(zip(node.children, shares)):
                descend(child, share, path + (index,))

        descend(policy, secret, ())
        payload = symmetric_encrypt(content_key, plaintext, nonce=rng_bytes(16))
        return AbeCiphertext(
            authority_id=self._authority_id,
            policy=policy,
            wrapped_shares=wrapped,
            payload=payload,
        )


def decrypt(ciphertext: AbeCiphertext, key: AbePrivateKey) -> bytes:
    """Decrypt an :class:`AbeCiphertext` with a satisfying private key.

    Raises :class:`AbeError` if the key belongs to another authority or the
    held attributes do not satisfy the ciphertext policy.
    """
    with PROFILER.span("crypto.abe.decrypt"):
        return _decrypt(ciphertext, key)


def _decrypt(ciphertext: AbeCiphertext, key: AbePrivateKey) -> bytes:
    get_registry().counter("crypto.abe.decrypts").inc()
    if key.authority_id != ciphertext.authority_id:
        raise AbeError("key issued by a different authority")
    if not ciphertext.policy.is_satisfied_by(key.attributes()):
        raise AbeError(
            f"attributes {sorted(key.attributes())} do not satisfy policy "
            f"{ciphertext.policy.describe()}"
        )

    def recover(node: AccessStructure, path: Tuple[int, ...]) -> Optional[int]:
        if node.is_leaf:
            attribute_key = key.attribute_keys.get(node.attribute)
            if attribute_key is None:
                return None
            blob = ciphertext.wrapped_shares.get(path)
            if blob is None:
                raise AbeError("ciphertext missing share for satisfied leaf")
            try:
                return int.from_bytes(symmetric_decrypt(attribute_key, blob), "big")
            except SymmetricCipherError as exc:
                raise AbeError("corrupted leaf share") from exc
        points: List[Tuple[int, int]] = []
        for index, child in enumerate(node.children):
            if len(points) == node.threshold:
                break
            value = recover(child, path + (index,))
            if value is not None:
                points.append((index + 1, value))
        if len(points) < node.threshold:
            return None
        return _combine_shares(points)

    secret = recover(ciphertext.policy, ())
    if secret is None:
        raise AbeError("internal error: satisfying key failed share recovery")
    content_key = secret.to_bytes(32, "big")[-_KEY_SIZE:]
    try:
        return symmetric_decrypt(content_key, ciphertext.payload)
    except SymmetricCipherError as exc:
        raise AbeError("payload authentication failed") from exc
