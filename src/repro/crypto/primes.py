"""Prime generation for the RSA substrate.

Implements deterministic Miller-Rabin for 64-bit inputs and probabilistic
Miller-Rabin with configurable rounds for larger candidates, plus a simple
random prime generator seeded through :class:`random.Random` so that key
generation is reproducible in tests and simulations.
"""

from __future__ import annotations

import random
from typing import Optional

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)

# Witnesses that make Miller-Rabin deterministic for n < 3.3 * 10^24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Test ``n`` for primality.

    Deterministic for ``n`` below ~3.3e24 (covers all 64-bit inputs); uses
    ``rounds`` random Miller-Rabin witnesses above that bound.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or random.Random()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return not any(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, as RSA key generation requires.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
