"""Cryptographic substrate for the SOUP reproduction.

The paper relies on two cryptographic building blocks:

* **Asymmetric signatures** — every SOUP object is signed with the owner's
  1024-bit key, and the SOUP ID is a 64-bit SHA-256 hash over the public key
  (Sec. 3.2).  We implement textbook RSA from scratch (:mod:`repro.crypto.rsa`)
  on top of a Miller-Rabin prime generator (:mod:`repro.crypto.primes`).

* **Ciphertext-Policy Attribute-Based Encryption (CP-ABE)** — all user data is
  encrypted under an *access structure*; only requesters holding a satisfying
  set of attribute keys can decrypt (Sec. 3.4).  The paper uses the pairing
  based ``cpabe`` toolkit; pairing-friendly curves need native libraries that
  are unavailable here, so :mod:`repro.crypto.abe` provides a *simulation
  grade* CP-ABE built from Shamir secret sharing over access-structure trees
  with hash-derived attribute keys.  It enforces exactly the access-control
  semantics the system depends on, but is **not** secure against a real
  adversary (see DESIGN.md, substitution table).

The symmetric layer (:mod:`repro.crypto.symmetric`) is a SHA-256 keystream
cipher with an HMAC integrity tag, used to encrypt the actual payload bytes
under the ABE-protected content key.
"""

from repro.crypto.abe import (
    AbeAuthority,
    AbeCiphertext,
    AbeError,
    AbePrivateKey,
    AbePublicParameters,
)
from repro.crypto.access import AccessStructure, attr, and_of, or_of, threshold
from repro.crypto.hashing import sha256, soup_id_from_public_key
from repro.crypto.keys import KeyPair, SignedEnvelope, sign_payload, verify_envelope
from repro.crypto.rsa import (
    RsaError,
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)
from repro.crypto.symmetric import SymmetricCipherError, symmetric_decrypt, symmetric_encrypt

__all__ = [
    "AbeAuthority",
    "AbeCiphertext",
    "AbeError",
    "AbePrivateKey",
    "AbePublicParameters",
    "AccessStructure",
    "attr",
    "and_of",
    "or_of",
    "threshold",
    "sha256",
    "soup_id_from_public_key",
    "KeyPair",
    "SignedEnvelope",
    "sign_payload",
    "verify_envelope",
    "RsaError",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "SymmetricCipherError",
    "symmetric_decrypt",
    "symmetric_encrypt",
]
