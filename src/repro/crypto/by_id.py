"""Simulated by-ID signatures: the `crypto_mode="by_id"` scheme.

Textbook-RSA sign/verify (:mod:`repro.crypto.rsa`) costs a modular
exponentiation per object — the right price when a scenario attacks the
signature scheme itself, pure overhead when it does not.  In ``by_id``
mode a signature is the pair *(signer's SOUP ID, message digest)*:
producing one is a single SHA-256, and verification checks that

1. the embedded signer ID equals the object's claimed source — inside the
   simulation, only the node that owns an identity signs through its own
   :class:`~repro.node.security_manager.SecurityManager`, so this models
   "only the private-key holder can sign as this ID";
2. the digest matches the received bytes (integrity); and
3. the receiver knows the source's public key (same directory-resolution
   requirement as full mode — unknown senders are still discarded).

A Sybil or slanderer forging an update with ``source = victim`` therefore
still fails verification in both modes: its own manager embeds *its* ID
(by_id) or signs with *its* key (full).  What by_id deliberately does not
model is an attacker hand-crafting the signature tuple outside the
protocol stack — scenarios that attack the signature scheme itself must
run ``crypto_mode="full"`` (see docs/PROTOCOL.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.obs import get_registry


@dataclass(frozen=True)
class ByIdSignature:
    """A simulated signature: who signed, over which bytes."""

    signer: int
    digest: bytes


def sign_by_id(message: bytes, signer_id: int) -> ByIdSignature:
    """Produce the simulated signature for ``message``."""
    get_registry().counter("crypto.by_id.signs").inc()
    return ByIdSignature(signer=signer_id, digest=hashlib.sha256(message).digest())


def verify_by_id(message: bytes, signature: object, expected_signer: int) -> bool:
    """Verify a simulated signature against the object's claimed source."""
    get_registry().counter("crypto.by_id.verifies").inc()
    if not isinstance(signature, ByIdSignature):
        return False
    if signature.signer != expected_signer:
        return False
    return signature.digest == hashlib.sha256(message).digest()
