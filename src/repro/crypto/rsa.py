"""Textbook RSA, built from scratch for the SOUP reproduction.

SOUP signs every object with the owner's 1024-bit asymmetric key (Sec. 3.4)
and derives the user's SOUP ID from the public key (Sec. 3.2).  This module
provides key generation (Miller-Rabin primes), low-level modular
encrypt/decrypt, and hash-then-sign signatures.

.. warning::
   This is *simulation-grade* cryptography: deterministic hash padding, no
   OAEP/PSS, no constant-time arithmetic.  It exists so the reproduction has
   a real, self-contained signing substrate — do not reuse it elsewhere.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.primes import generate_prime
from repro.obs import get_registry
from repro.obs.profiling import PROFILER


class RsaError(Exception):
    """Raised on malformed keys or out-of-range plaintexts."""


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def to_bytes(self) -> bytes:
        """Canonical serialization used for SOUP ID derivation."""
        n_bytes = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters for fast exponentiation."""

    n: int
    d: int
    p: int
    q: int

    def _crt_pow(self, c: int) -> int:
        """Compute ``c**d mod n`` via the Chinese Remainder Theorem."""
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(c % self.p, dp, self.p)
        m2 = pow(c % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


@dataclass(frozen=True)
class RsaKeyPair:
    """A matched public/private RSA key pair."""

    public: RsaPublicKey
    private: RsaPrivateKey


def generate_keypair(bits: int = 1024, seed: Optional[int] = None) -> RsaKeyPair:
    """Generate an RSA key pair with modulus of exactly ``bits`` bits.

    ``seed`` makes generation deterministic, which the simulator uses to give
    every synthetic user a stable identity across runs.
    """
    if bits < 128:
        raise RsaError(f"modulus too small: {bits} bits")
    rng = random.Random(seed)
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(e, -1, phi)
        return RsaKeyPair(
            public=RsaPublicKey(n=n, e=e),
            private=RsaPrivateKey(n=n, d=d, p=p, q=q),
        )


def encrypt_int(message: int, public: RsaPublicKey) -> int:
    """Raw RSA encryption of an integer ``message < n``."""
    if not 0 <= message < public.n:
        raise RsaError("plaintext out of range for modulus")
    return pow(message, public.e, public.n)


def decrypt_int(ciphertext: int, private: RsaPrivateKey) -> int:
    """Raw RSA decryption (CRT-accelerated)."""
    if not 0 <= ciphertext < private.n:
        raise RsaError("ciphertext out of range for modulus")
    return private._crt_pow(ciphertext)


def _digest_as_int(message: bytes, n: int) -> int:
    """Hash ``message`` into an integer reduced below ``n``."""
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest, "big") % n


def sign(message: bytes, private: RsaPrivateKey) -> int:
    """Hash-then-sign: returns the RSA signature integer."""
    get_registry().counter("crypto.rsa.signs").inc()
    with PROFILER.span("crypto.rsa.sign"):
        return private._crt_pow(_digest_as_int(message, private.n))


def verify(message: bytes, signature: int, public: RsaPublicKey) -> bool:
    """Verify a signature produced by :func:`sign`."""
    get_registry().counter("crypto.rsa.verifies").inc()
    if not 0 <= signature < public.n:
        return False
    with PROFILER.span("crypto.rsa.verify"):
        return pow(signature, public.e, public.n) == _digest_as_int(message, public.n)
