"""Hash helpers and SOUP ID derivation.

The SOUP ID is "a 64-bit SHA-256 hash over the user's 1024-bit public key"
(paper Sec. 3.2): we hash the canonical public-key serialization with SHA-256
and keep the top 64 bits.  The same 64-bit space is used as the DHT key space.
"""

from __future__ import annotations

import hashlib

SOUP_ID_BITS = 64
SOUP_ID_SPACE = 1 << SOUP_ID_BITS


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_int(data: bytes) -> int:
    """SHA-256 digest of ``data`` as a big-endian integer."""
    return int.from_bytes(sha256(data), "big")


def truncate_to_id(digest: bytes) -> int:
    """Keep the top :data:`SOUP_ID_BITS` bits of a digest as an ID."""
    return int.from_bytes(digest[: SOUP_ID_BITS // 8], "big")


def soup_id_from_public_key(public_key_bytes: bytes) -> int:
    """Derive the 64-bit SOUP ID from a serialized public key."""
    return truncate_to_id(sha256(public_key_bytes))


def dht_key_for_string(name: str) -> int:
    """Map an arbitrary string (e.g. a user name) into the DHT key space."""
    return truncate_to_id(sha256(name.encode("utf-8")))


def format_soup_id(soup_id: int) -> str:
    """Render a SOUP ID as the fixed-width hex string used in logs/entries."""
    if not 0 <= soup_id < SOUP_ID_SPACE:
        raise ValueError(f"SOUP ID out of 64-bit range: {soup_id}")
    return f"{soup_id:016x}"
