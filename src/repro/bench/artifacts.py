"""Schema-versioned benchmark artifacts (``BENCH_*.json``) and baseline diffs.

Every ``soup bench`` run serializes its results as a ``soup-bench/v1``
document.  Artifacts are the interchange format of the perf-regression
harness: CI uploads them, baselines are committed under
``benchmarks/baselines/``, and :func:`compare` diffs a fresh run against a
baseline with a configurable regression threshold.

Throughput is the primary metric (higher is better); wall-clock is kept
alongside for context.  A benchmark regresses when its throughput falls
below ``baseline * (1 - threshold)`` — the threshold absorbs scheduler
noise on shared CI hardware.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

BENCH_SCHEMA = "soup-bench/v1"

#: Default relative throughput drop tolerated before a run is flagged.
DEFAULT_THRESHOLD = 0.30


@dataclass
class BenchResult:
    """One benchmark's measurement."""

    name: str
    wall_seconds: float
    throughput: float
    unit: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "unit": self.unit,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=str(data["name"]),
            wall_seconds=float(data["wall_seconds"]),
            throughput=float(data["throughput"]),
            unit=str(data.get("unit", "ops/s")),
            detail=dict(data.get("detail", {})),
        )


def build_artifact(
    results: List[BenchResult],
    profile: str,
    seed: int,
    created: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the ``soup-bench/v1`` document for one suite run."""
    return {
        "schema": BENCH_SCHEMA,
        "profile": profile,
        "seed": seed,
        "created": created or "",
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "results": {result.name: result.to_dict() for result in results},
    }


def validate_artifact(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed artifact."""
    if not isinstance(payload, dict):
        raise ValueError("bench artifact must be a JSON object")
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(f"expected schema {BENCH_SCHEMA!r}, got {schema!r}")
    results = payload.get("results")
    if not isinstance(results, dict):
        raise ValueError("bench artifact has no 'results' mapping")
    for name, entry in results.items():
        if not isinstance(entry, dict):
            raise ValueError(f"result {name!r} is not an object")
        for key in ("name", "wall_seconds", "throughput"):
            if key not in entry:
                raise ValueError(f"result {name!r} is missing {key!r}")
        if float(entry["wall_seconds"]) < 0:
            raise ValueError(f"result {name!r} has negative wall_seconds")
        if float(entry["throughput"]) < 0:
            raise ValueError(f"result {name!r} has negative throughput")


def write_artifact(payload: Dict[str, Any], path: str) -> None:
    validate_artifact(payload)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_artifact(path: str) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    validate_artifact(payload)
    return payload


def artifact_results(payload: Dict[str, Any]) -> Dict[str, BenchResult]:
    return {
        name: BenchResult.from_dict(entry)
        for name, entry in payload["results"].items()
    }


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    baseline_throughput: float
    current_throughput: float
    #: current / baseline; > 1 is faster, < 1 - threshold is a regression.
    ratio: float
    regressed: bool


@dataclass
class Comparison:
    """The full diff of a run against a baseline artifact."""

    threshold: float
    rows: List[ComparisonRow] = field(default_factory=list)
    #: Benchmarks present in only one of the two artifacts.
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_current: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report_lines(self) -> List[str]:
        lines = []
        for row in self.rows:
            verdict = "REGRESSION" if row.regressed else "ok"
            lines.append(
                f"{row.name:<24} baseline={row.baseline_throughput:>12.1f} "
                f"current={row.current_throughput:>12.1f} "
                f"ratio={row.ratio:.2f}  {verdict}"
            )
        for name in self.only_in_baseline:
            lines.append(f"{name:<24} missing from current run")
        for name in self.only_in_current:
            lines.append(f"{name:<24} new (no baseline)")
        return lines


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Diff two artifacts; only benchmarks present in both are judged."""
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    base = artifact_results(baseline)
    cur = artifact_results(current)
    comparison = Comparison(threshold=threshold)
    for name in base:
        if name not in cur:
            comparison.only_in_baseline.append(name)
            continue
        base_tp = base[name].throughput
        cur_tp = cur[name].throughput
        ratio = cur_tp / base_tp if base_tp > 0 else float("inf")
        comparison.rows.append(
            ComparisonRow(
                name=name,
                baseline_throughput=base_tp,
                current_throughput=cur_tp,
                ratio=ratio,
                regressed=ratio < 1.0 - threshold,
            )
        )
    comparison.only_in_current = [name for name in cur if name not in base]
    return comparison
