"""Schema-versioned benchmark artifacts (``BENCH_*.json``) and baseline diffs.

Every ``soup bench`` run serializes its results as a ``soup-bench/v2``
document.  Artifacts are the interchange format of the perf-regression
harness: CI uploads them, baselines are committed under
``benchmarks/baselines/``, and :func:`compare` diffs a fresh run against a
baseline with a configurable regression threshold.

Throughput is the primary metric (higher is better); wall-clock is kept
alongside for context.  A benchmark regresses when its throughput falls
below ``baseline * (1 - threshold)`` — the threshold absorbs scheduler
noise on shared CI hardware.

v2 extends v1 with two blocks (v1 artifacts remain loadable — committed
full-size baselines are expensive to regenerate):

* ``provenance`` — git SHA + dirty flag + timestamp
  (:mod:`repro.bench.provenance`), so a diff names the commits compared;
* per-result ``phases`` — exclusive wall seconds per engine phase
  (:func:`repro.obs.perf.phase_breakdown`).  When a benchmark regresses,
  :func:`compare` attributes the regression to the phase(s) whose *share*
  of the total grew, turning "epoch_loop got slower" into
  "dropping-phase time doubled in epoch_loop".
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

BENCH_SCHEMA_V1 = "soup-bench/v1"
BENCH_SCHEMA = "soup-bench/v2"
SUPPORTED_BENCH_SCHEMAS = (BENCH_SCHEMA_V1, BENCH_SCHEMA)

#: Default relative throughput drop tolerated before a run is flagged.
DEFAULT_THRESHOLD = 0.30

#: A phase is attributed when its share of the run grew by at least this
#: many absolute points between baseline and current (see :func:`compare`).
PHASE_ATTRIBUTION_POINTS = 0.05


@dataclass
class BenchResult:
    """One benchmark's measurement."""

    name: str
    wall_seconds: float
    throughput: float
    unit: str
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Exclusive wall seconds per phase (empty when the benchmark does not
    #: capture a breakdown, and in artifacts loaded from v1 documents).
    phases: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "unit": self.unit,
            "detail": dict(self.detail),
            "phases": {name: float(wall) for name, wall in self.phases.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=str(data["name"]),
            wall_seconds=float(data["wall_seconds"]),
            throughput=float(data["throughput"]),
            unit=str(data.get("unit", "ops/s")),
            detail=dict(data.get("detail", {})),
            phases={
                str(name): float(wall)
                for name, wall in data.get("phases", {}).items()
            },
        )


def build_artifact(
    results: List[BenchResult],
    profile: str,
    seed: int,
    created: Optional[str] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``soup-bench/v2`` document for one suite run.

    ``provenance`` defaults to :func:`repro.bench.provenance.git_provenance`
    resolved at build time (all-``None`` fields outside a git checkout).
    """
    if provenance is None:
        from repro.bench.provenance import git_provenance

        provenance = git_provenance(created=created)
    return {
        "schema": BENCH_SCHEMA,
        "profile": profile,
        "seed": seed,
        "created": created or "",
        "provenance": dict(provenance),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "results": {result.name: result.to_dict() for result in results},
    }


def validate_artifact(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed artifact
    (v1 or v2)."""
    if not isinstance(payload, dict):
        raise ValueError("bench artifact must be a JSON object")
    schema = payload.get("schema")
    if schema not in SUPPORTED_BENCH_SCHEMAS:
        raise ValueError(
            f"expected schema in {SUPPORTED_BENCH_SCHEMAS}, got {schema!r}"
        )
    results = payload.get("results")
    if not isinstance(results, dict):
        raise ValueError("bench artifact has no 'results' mapping")
    for name, entry in results.items():
        if not isinstance(entry, dict):
            raise ValueError(f"result {name!r} is not an object")
        for key in ("name", "wall_seconds", "throughput"):
            if key not in entry:
                raise ValueError(f"result {name!r} is missing {key!r}")
        if float(entry["wall_seconds"]) < 0:
            raise ValueError(f"result {name!r} has negative wall_seconds")
        if float(entry["throughput"]) < 0:
            raise ValueError(f"result {name!r} has negative throughput")
        phases = entry.get("phases", {})
        if not isinstance(phases, dict):
            raise ValueError(f"result {name!r} has non-mapping phases")
        for phase, wall in phases.items():
            if float(wall) < 0:
                raise ValueError(
                    f"result {name!r} phase {phase!r} has negative time"
                )
    if schema == BENCH_SCHEMA:
        provenance = payload.get("provenance")
        if provenance is not None and not isinstance(provenance, dict):
            raise ValueError("v2 artifact provenance must be an object")


def write_artifact(payload: Dict[str, Any], path: str) -> None:
    validate_artifact(payload)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_artifact(path: str) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    validate_artifact(payload)
    return payload


def artifact_results(payload: Dict[str, Any]) -> Dict[str, BenchResult]:
    return {
        name: BenchResult.from_dict(entry)
        for name, entry in payload["results"].items()
    }


def attribute_phases(
    baseline_phases: Dict[str, float],
    current_phases: Dict[str, float],
    points: float = PHASE_ATTRIBUTION_POINTS,
) -> Tuple[Tuple[str, ...], Dict[str, Tuple[float, float]]]:
    """Which phase(s) explain a slowdown, by share growth.

    Shares (phase / total) are compared rather than absolute times so a
    uniformly slower machine attributes nothing, while a phase that
    doubled its share is named even if everything else also drifted.
    Returns ``(attributed, shares)`` where ``attributed`` lists phases
    whose share grew by at least ``points`` (falling back to the single
    fastest-growing phase when nothing clears the bar) and ``shares``
    maps every phase to its ``(baseline_share, current_share)`` pair.
    """
    base_total = sum(baseline_phases.values())
    cur_total = sum(current_phases.values())
    if base_total <= 0.0 or cur_total <= 0.0:
        return (), {}
    names = sorted(set(baseline_phases) | set(current_phases))
    shares = {
        name: (
            baseline_phases.get(name, 0.0) / base_total,
            current_phases.get(name, 0.0) / cur_total,
        )
        for name in names
    }
    growth = {name: cur - base for name, (base, cur) in shares.items()}
    attributed = tuple(
        sorted(
            (name for name, delta in growth.items() if delta >= points),
            key=lambda name: growth[name],
            reverse=True,
        )
    )
    if not attributed:
        positive = [name for name, delta in growth.items() if delta > 0.0]
        if positive:
            attributed = (max(positive, key=lambda name: growth[name]),)
    return attributed, shares


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    baseline_throughput: float
    current_throughput: float
    #: current / baseline; > 1 is faster, < 1 - threshold is a regression.
    ratio: float
    regressed: bool
    #: Phases (share-growth order) the regression is attributed to; empty
    #: unless the row regressed and both artifacts carry phase breakdowns.
    attributed_phases: Tuple[str, ...] = ()
    #: phase -> (baseline_share, current_share) for every known phase.
    phase_shares: Dict[str, Tuple[float, float]] = field(default_factory=dict)


@dataclass
class Comparison:
    """The full diff of a run against a baseline artifact."""

    threshold: float
    rows: List[ComparisonRow] = field(default_factory=list)
    #: Benchmarks present in only one of the two artifacts.
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_current: List[str] = field(default_factory=list)
    #: Provenance blocks of the two artifacts (None for v1 baselines).
    baseline_provenance: Optional[Dict[str, Any]] = None
    current_provenance: Optional[Dict[str, Any]] = None

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report_lines(self) -> List[str]:
        from repro.bench.provenance import short_sha

        lines = [
            "baseline "
            + short_sha(self.baseline_provenance)
            + " vs current "
            + short_sha(self.current_provenance)
        ]
        for row in self.rows:
            verdict = "REGRESSION" if row.regressed else "ok"
            lines.append(
                f"{row.name:<24} baseline={row.baseline_throughput:>12.1f} "
                f"current={row.current_throughput:>12.1f} "
                f"ratio={row.ratio:.2f}  {verdict}"
            )
            if row.regressed and row.attributed_phases:
                parts = ", ".join(
                    f"{phase} (share {row.phase_shares[phase][0]:.0%}"
                    f" -> {row.phase_shares[phase][1]:.0%})"
                    for phase in row.attributed_phases
                )
                lines.append(f"{'':<24} ^ attributed phase(s): {parts}")
        for name in self.only_in_baseline:
            lines.append(f"{name:<24} missing from current run")
        for name in self.only_in_current:
            lines.append(f"{name:<24} new (no baseline)")
        return lines


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Diff two artifacts; only benchmarks present in both are judged."""
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    base = artifact_results(baseline)
    cur = artifact_results(current)
    comparison = Comparison(
        threshold=threshold,
        baseline_provenance=baseline.get("provenance"),
        current_provenance=current.get("provenance"),
    )
    for name in base:
        if name not in cur:
            comparison.only_in_baseline.append(name)
            continue
        base_tp = base[name].throughput
        cur_tp = cur[name].throughput
        ratio = cur_tp / base_tp if base_tp > 0 else float("inf")
        regressed = ratio < 1.0 - threshold
        attributed: Tuple[str, ...] = ()
        shares: Dict[str, Tuple[float, float]] = {}
        if regressed:
            attributed, shares = attribute_phases(
                base[name].phases, cur[name].phases
            )
        comparison.rows.append(
            ComparisonRow(
                name=name,
                baseline_throughput=base_tp,
                current_throughput=cur_tp,
                ratio=ratio,
                regressed=regressed,
                attributed_phases=attributed,
                phase_shares=shares,
            )
        )
    comparison.only_in_current = [name for name in cur if name not in base]
    return comparison
