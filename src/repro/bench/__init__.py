"""repro.bench — the standing perf-regression harness behind ``soup bench``.

The suite (:mod:`repro.bench.suite`) measures the simulator's hot paths —
epoch-loop throughput, SimNetwork message rate, sweep-orchestrator
overhead, crypto-mode sign/verify rates — and serializes each run as a
schema-versioned ``BENCH_*.json`` artifact (:mod:`repro.bench.artifacts`,
schema ``soup-bench/v1``).  ``soup bench --check --baseline PATH`` diffs a
fresh run against a committed baseline and fails on regressions beyond a
configurable threshold; CI runs the smoke profile on every push.

See ``docs/BENCHMARKS.md``.
"""

from repro.bench.artifacts import (
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    BenchResult,
    Comparison,
    ComparisonRow,
    build_artifact,
    compare,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.bench.suite import (
    PROFILES,
    BenchProfile,
    benchmark_names,
    register,
    resolve_profile,
    run_suite,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_THRESHOLD",
    "BenchProfile",
    "BenchResult",
    "Comparison",
    "ComparisonRow",
    "PROFILES",
    "benchmark_names",
    "build_artifact",
    "compare",
    "load_artifact",
    "register",
    "resolve_profile",
    "run_suite",
    "validate_artifact",
    "write_artifact",
]
