"""repro.bench — the standing perf-regression harness behind ``soup bench``.

The suite (:mod:`repro.bench.suite`) measures the simulator's hot paths —
epoch-loop throughput, SimNetwork message rate, sweep-orchestrator
overhead, crypto-mode sign/verify rates — and serializes each run as a
schema-versioned ``BENCH_*.json`` artifact (:mod:`repro.bench.artifacts`,
schema ``soup-bench/v2``; v1 remains loadable).  ``soup bench --check
--baseline PATH`` diffs a fresh run against a committed baseline and fails
on regressions beyond a configurable threshold; v2 artifacts carry git
provenance and per-phase breakdowns, so a failed check names the commits
compared and attributes the regression to the phase(s) whose share of the
run grew (:func:`repro.bench.artifacts.attribute_phases`).

The perf *trajectory* lives in ``benchmarks/baselines/HISTORY.jsonl``
(:mod:`repro.bench.history`): one appended line per recorded run, rendered
by ``soup bench history`` / ``soup bench trend`` and gated in CI by
``soup bench trend --check-history``.

See ``docs/BENCHMARKS.md``.
"""

from repro.bench.artifacts import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    DEFAULT_THRESHOLD,
    PHASE_ATTRIBUTION_POINTS,
    SUPPORTED_BENCH_SCHEMAS,
    BenchResult,
    Comparison,
    ComparisonRow,
    attribute_phases,
    build_artifact,
    compare,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.bench.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    append_history,
    check_history,
    history_entry,
    load_history,
    render_history_lines,
    render_trend_lines,
)
from repro.bench.provenance import git_provenance, short_sha
from repro.bench.suite import (
    PROFILES,
    BenchProfile,
    benchmark_names,
    register,
    resolve_profile,
    run_suite,
)

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V1",
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_THRESHOLD",
    "HISTORY_SCHEMA",
    "PHASE_ATTRIBUTION_POINTS",
    "SUPPORTED_BENCH_SCHEMAS",
    "BenchProfile",
    "BenchResult",
    "Comparison",
    "ComparisonRow",
    "PROFILES",
    "append_history",
    "attribute_phases",
    "benchmark_names",
    "build_artifact",
    "check_history",
    "compare",
    "git_provenance",
    "history_entry",
    "load_artifact",
    "load_history",
    "register",
    "render_history_lines",
    "render_trend_lines",
    "resolve_profile",
    "run_suite",
    "short_sha",
    "validate_artifact",
    "write_artifact",
]
