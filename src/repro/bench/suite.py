"""The standing benchmark suite behind ``soup bench``.

Four benchmarks cover the hot paths the epoch-loop overhaul optimized:

* ``epoch_loop`` — a fig5-style availability run on the WOSN (Facebook)
  graph; throughput in node-epochs/s.  The ``full`` profile runs the
  paper-scale graph (90,269 nodes / 3.6M directed edges).
* ``simnet_messages`` — raw :class:`~repro.network.simnet.SimNetwork`
  delivery rate with pooled events; throughput in messages/s.
* ``sweep_overhead`` — a tiny grid through the ``repro.runtime``
  orchestrator, measuring per-task overhead; throughput in tasks/s.
* ``crypto_modes`` — sign+verify rate in ``by_id`` mode, with the
  ``full``-RSA rate and the speedup in the detail block.

Each benchmark is a registered callable taking a :class:`BenchProfile`
and returning a :class:`~repro.bench.artifacts.BenchResult`; tests (and
extensions) can :func:`register` additional benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.bench.artifacts import BenchResult


@dataclass(frozen=True)
class BenchProfile:
    """Knobs shared by the suite's benchmarks."""

    name: str
    seed: int = 5
    #: Dataset scale for the epoch-loop benchmark (1.0 = paper size).
    scale: float = 0.005
    #: Simulated days for the epoch-loop benchmark.
    days: int = 4
    #: Messages pushed through the SimNetwork benchmark.
    messages: int = 20_000
    #: Seeds (= tasks) in the sweep-overhead grid.
    sweep_seeds: int = 3
    #: Objects signed+verified per crypto mode.
    crypto_objects: int = 60
    #: RSA modulus size for the crypto benchmark.
    crypto_bits: int = 512
    #: Nodes in the live-loopback (real TCP sockets) benchmark.
    live_nodes: int = 10
    #: Epochs driven through the live-loopback benchmark.
    live_epochs: int = 6


PROFILES: Dict[str, BenchProfile] = {
    # CI-sized: the whole suite runs in well under a minute.
    "smoke": BenchProfile(name="smoke"),
    # Paper-scale WOSN epoch loop; minutes, not hours.
    "full": BenchProfile(
        name="full",
        scale=1.0,
        days=2,
        messages=200_000,
        sweep_seeds=4,
        crypto_objects=200,
        live_nodes=25,
        live_epochs=10,
    ),
}


def resolve_profile(
    name: str, scale: Optional[float] = None, seed: Optional[int] = None
) -> BenchProfile:
    """Look up a profile, optionally overriding scale/seed from the CLI."""
    profile = PROFILES.get(name)
    if profile is None:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(PROFILES)}")
    if scale is not None:
        profile = replace(profile, scale=scale)
    if seed is not None:
        profile = replace(profile, seed=seed)
    return profile


BenchFn = Callable[[BenchProfile], BenchResult]

_REGISTRY: Dict[str, BenchFn] = {}


def register(name: str) -> Callable[[BenchFn], BenchFn]:
    """Register a benchmark under ``name`` (last registration wins, so
    tests can shadow real benchmarks with synthetic ones)."""

    def decorator(fn: BenchFn) -> BenchFn:
        _REGISTRY[name] = fn
        return fn

    return decorator


def benchmark_names() -> List[str]:
    return list(_REGISTRY)


def run_suite(
    profile: BenchProfile, names: Optional[List[str]] = None
) -> List[BenchResult]:
    """Run the selected benchmarks (default: all) in registration order."""
    selected = names or benchmark_names()
    unknown = [name for name in selected if name not in _REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown benchmarks {unknown}; available: {benchmark_names()}"
        )
    return [_REGISTRY[name](profile) for name in selected]


# --- the standing suite ---------------------------------------------------


@register("epoch_loop")
def bench_epoch_loop(profile: BenchProfile) -> BenchResult:
    """Fig5-style epoch-loop throughput on the WOSN graph.

    Graph generation is measured separately (``detail.graph_seconds``) so
    the headline number isolates the engine's epoch loop.
    """
    from repro.graphs.datasets import generate_dataset
    from repro.sim.engine import SoupSimulation
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(
        dataset="facebook",
        scale=profile.scale,
        n_days=profile.days,
        seed=profile.seed,
    )
    graph_start = time.perf_counter()
    graph = generate_dataset("facebook", scale=profile.scale, seed=profile.seed)
    graph_seconds = time.perf_counter() - graph_start

    sim = SoupSimulation(graph, config)
    start = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - start

    node_epochs = graph.number_of_nodes() * config.n_epochs
    return BenchResult(
        name="epoch_loop",
        wall_seconds=wall,
        throughput=node_epochs / wall if wall > 0 else 0.0,
        unit="node-epochs/s",
        detail={
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "epochs": config.n_epochs,
            "graph_seconds": graph_seconds,
            "steady_availability": result.steady_state_availability(),
        },
    )


@register("simnet_messages")
def bench_simnet_messages(profile: BenchProfile) -> BenchResult:
    """Raw SimNetwork message rate with pooled delivery events."""
    from repro.network.events import EventLoop
    from repro.network.simnet import SimNetwork

    n_nodes = 64
    loop = EventLoop()
    net = SimNetwork(loop)
    received = [0]

    def handler(sender, message):
        received[0] += 1

    for node_id in range(n_nodes):
        net.register(node_id, handler)

    start = time.perf_counter()
    for i in range(profile.messages):
        sender = i % n_nodes
        receiver = (i + 1 + i // n_nodes) % n_nodes
        if receiver == sender:
            receiver = (receiver + 1) % n_nodes
        net.send(sender, receiver, ("ping", i), size_bytes=512)
        # Drain in batches so the heap and the event pool stay hot but
        # bounded, the way the engine's epoch loop drives the network.
        if i % 1024 == 1023:
            loop.run_until(loop.now + 3600.0)
    loop.run_until(loop.now + 3600.0)
    wall = time.perf_counter() - start

    return BenchResult(
        name="simnet_messages",
        wall_seconds=wall,
        throughput=net.messages_delivered / wall if wall > 0 else 0.0,
        unit="messages/s",
        detail={
            "sent": profile.messages,
            "delivered": net.messages_delivered,
            "handler_invocations": received[0],
            "pool_size": len(net._event_pool),
        },
    )


@register("sweep_overhead")
def bench_sweep_overhead(profile: BenchProfile) -> BenchResult:
    """Orchestrator overhead: a tiny sweep grid, serial, through the full
    spec → task → checkpoint → aggregate path."""
    import tempfile

    from repro.runtime import load_records, run_sweep
    from repro.runtime.spec import SweepSpec

    spec = SweepSpec.from_mapping(
        {
            "name": "bench-overhead",
            "base": {"dataset": "facebook", "scale": 0.003, "n_days": 1},
            "seeds": list(range(profile.sweep_seeds)),
        }
    )
    with tempfile.TemporaryDirectory(prefix="soup-bench-sweep-") as tmp:
        start = time.perf_counter()
        outcome = run_sweep(spec, tmp, jobs=1)
        records = load_records(tmp)
        wall = time.perf_counter() - start
    if outcome.failed:
        raise RuntimeError(f"sweep benchmark tasks failed: {outcome.failed}")

    tasks = len(records)
    return BenchResult(
        name="sweep_overhead",
        wall_seconds=wall,
        throughput=tasks / wall if wall > 0 else 0.0,
        unit="tasks/s",
        detail={"tasks": tasks, "seconds_per_task": wall / tasks if tasks else 0.0},
    )


@register("crypto_modes")
def bench_crypto_modes(profile: BenchProfile) -> BenchResult:
    """Sign+verify rate of ``crypto_mode="by_id"`` vs full RSA."""
    from repro.core.objects import ObjectType, SoupObject
    from repro.crypto.keys import KeyPair
    from repro.node.security_manager import SecurityManager

    keys = KeyPair.generate(bits=profile.crypto_bits, seed=profile.seed)

    def run_mode(mode: str, count: int) -> float:
        manager = SecurityManager(keys, crypto_mode=mode)
        manager.learn_public_key(keys.soup_id, keys.public)
        start = time.perf_counter()
        for i in range(count):
            obj = SoupObject(
                source=keys.soup_id,
                dest=keys.soup_id,
                object_type=ObjectType.MESSAGE,
                payload={"seq": i},
            )
            manager.sign_object(obj)
            if not manager.verify_object(obj):
                raise RuntimeError(f"self-signed object failed to verify ({mode})")
        return time.perf_counter() - start

    # by_id is ~25x faster per op, so it gets proportionally more
    # iterations — a sub-millisecond measurement would be all jitter.
    full_ops = profile.crypto_objects
    by_id_ops = profile.crypto_objects * 100
    full_wall = run_mode("full", full_ops)
    by_id_wall = run_mode("by_id", by_id_ops)

    full_rate = full_ops / full_wall if full_wall > 0 else 0.0
    by_id_rate = by_id_ops / by_id_wall if by_id_wall > 0 else 0.0
    return BenchResult(
        name="crypto_modes",
        wall_seconds=by_id_wall,
        throughput=by_id_rate,
        unit="sign+verify/s",
        detail={
            "full_objects": full_ops,
            "by_id_objects": by_id_ops,
            "full_wall_seconds": full_wall,
            "full_ops_per_s": full_rate,
            "by_id_speedup": by_id_rate / full_rate if full_rate > 0 else 0.0,
        },
    )


@register("live_loopback")
def bench_live_loopback(profile: BenchProfile) -> BenchResult:
    """End-to-end frame rate of the live TCP loopback backend.

    Boots ``live_nodes`` full middleware instances on real loopback
    sockets via the resilience harness (no chaos), drives the standing
    open-loop load mix for ``live_epochs`` epochs, and reports delivered
    wire frames per second.  This is the standing regression guard for
    the asyncio transport: a slowdown in framing, connection caching, or
    the clock shows up here without any simulation in the way.
    """
    from repro.deploy.live import ResilienceConfig, ResilienceHarness

    config = ResilienceConfig(
        n_nodes=profile.live_nodes,
        seed=profile.seed,
        backend="live",
        chaos="",
        epochs=profile.live_epochs,
        epoch_s=0.2,
        load_rps=80.0,
        settle_s=0.15,
    )
    harness = ResilienceHarness(config)
    start = time.perf_counter()
    report = harness.run()
    wall = time.perf_counter() - start

    requests = report["requests"]
    ops = sum(
        count for kind, count in requests.items() if kind != "skipped_actor_down"
    )
    delivered = report["net"]["delivered"]
    return BenchResult(
        name="live_loopback",
        wall_seconds=wall,
        throughput=delivered / wall if wall > 0 else 0.0,
        unit="frames/s",
        detail={
            "nodes": config.n_nodes,
            "epochs": config.epochs,
            "ops_executed": ops,
            "frames_delivered": delivered,
            "frames_failed": report["net"]["failed"],
            "availability_mean": report["availability"]["mean"],
            "read_p99_s": report["latency"].get("read", {}).get("p99_s"),
        },
    )
