"""Git provenance for benchmark artifacts: which tree produced the number.

A perf trajectory is only as good as its x-axis — ``BENCH_*.json``
artifacts and ``HISTORY.jsonl`` entries therefore carry the commit SHA
and a dirty-tree flag, so a baseline diff can say *which commits* it is
comparing and a history plot maps straight onto the PR sequence.

Everything degrades gracefully: outside a git checkout (or with git not
installed) the fields are simply ``None`` — provenance is metadata, never
a reason for a benchmark run to fail.
"""

from __future__ import annotations

import subprocess
from typing import Any, Dict, Optional


def _git(args, cwd: Optional[str]) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip()


def git_provenance(
    cwd: Optional[str] = None, created: Optional[str] = None
) -> Dict[str, Any]:
    """The provenance block embedded in every artifact.

    ``git_sha`` / ``git_dirty`` are ``None`` when not in a git checkout;
    ``created`` carries the artifact's own timestamp so the provenance
    block is self-contained when an artifact is inspected in isolation.
    """
    sha = _git(["rev-parse", "HEAD"], cwd)
    dirty: Optional[bool] = None
    if sha is not None:
        status = _git(["status", "--porcelain"], cwd)
        dirty = bool(status) if status is not None else None
    return {
        "git_sha": sha,
        "git_dirty": dirty,
        "created": created or "",
    }


def short_sha(provenance: Optional[Dict[str, Any]]) -> str:
    """``a1b2c3d`` / ``a1b2c3d+dirty`` / ``unknown`` — for report lines."""
    if not provenance or not provenance.get("git_sha"):
        return "unknown"
    label = str(provenance["git_sha"])[:7]
    if provenance.get("git_dirty"):
        label += "+dirty"
    return label
