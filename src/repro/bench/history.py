"""The perf trajectory: ``benchmarks/baselines/HISTORY.jsonl``.

One JSON line per recorded ``soup bench`` run, append-only, committed to
the repository — the per-PR throughput trajectory the ROADMAP called for.
Each entry condenses one ``BENCH_*.json`` artifact to what trend analysis
needs: git provenance, per-case throughput/wall, and the per-phase
breakdown (so a regression *between history entries* is attributable to a
phase exactly like a baseline diff).

``soup bench history`` lists the trajectory, ``soup bench trend`` renders
a per-case sparkline, and ``soup bench trend --check-history`` gates CI:
it re-judges the newest entry against the best median-smoothed view of
its predecessors and exits 4 — naming case *and* phase — when the newest
run regressed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.artifacts import (
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    Comparison,
    compare,
)
from repro.bench.provenance import short_sha

HISTORY_SCHEMA = "soup-bench-history/v1"

#: Default committed trajectory file.
DEFAULT_HISTORY_PATH = "benchmarks/baselines/HISTORY.jsonl"


def history_entry(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """Condense one bench artifact into a history line."""
    provenance = artifact.get("provenance") or {}
    return {
        "schema": HISTORY_SCHEMA,
        "created": artifact.get("created", ""),
        "profile": artifact.get("profile", ""),
        "seed": artifact.get("seed"),
        "git_sha": provenance.get("git_sha"),
        "git_dirty": provenance.get("git_dirty"),
        "results": {
            name: {
                "name": entry["name"],
                "throughput": float(entry["throughput"]),
                "wall_seconds": float(entry["wall_seconds"]),
                "unit": entry.get("unit", "ops/s"),
                "phases": dict(entry.get("phases", {})),
            }
            for name, entry in artifact.get("results", {}).items()
        },
    }


def validate_entry(entry: Dict[str, Any]) -> None:
    if not isinstance(entry, dict):
        raise ValueError("history entry must be a JSON object")
    if entry.get("schema") != HISTORY_SCHEMA:
        raise ValueError(
            f"expected schema {HISTORY_SCHEMA!r}, got {entry.get('schema')!r}"
        )
    results = entry.get("results")
    if not isinstance(results, dict):
        raise ValueError("history entry has no 'results' mapping")
    for name, case in results.items():
        if float(case["throughput"]) < 0:
            raise ValueError(f"history case {name!r} has negative throughput")


def append_history(path: str, entry: Dict[str, Any]) -> None:
    """Append one entry (the file is JSONL and append-only by contract)."""
    validate_entry(entry)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as sink:
        sink.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")


def load_history(path: str) -> List[Dict[str, Any]]:
    """Load and validate every entry, in file (= chronological) order."""
    target = Path(path)
    if not target.exists():
        return []
    entries = []
    for lineno, line in enumerate(target.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from exc
        validate_entry(entry)
        entries.append(entry)
    return entries


def _entry_provenance(entry: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "git_sha": entry.get("git_sha"),
        "git_dirty": entry.get("git_dirty"),
        "created": entry.get("created", ""),
    }


def _pseudo_artifact(entry: Dict[str, Any]) -> Dict[str, Any]:
    """A history entry re-shaped as a v2 artifact so :func:`compare` (and
    its phase attribution) applies unchanged."""
    return {
        "schema": BENCH_SCHEMA,
        "profile": entry.get("profile", ""),
        "seed": entry.get("seed"),
        "created": entry.get("created", ""),
        "provenance": _entry_provenance(entry),
        "results": entry["results"],
    }


def case_names(entries: List[Dict[str, Any]]) -> List[str]:
    names: List[str] = []
    for entry in entries:
        for name in entry["results"]:
            if name not in names:
                names.append(name)
    return names


def case_series(entries: List[Dict[str, Any]], case: str) -> List[float]:
    """Throughput of ``case`` across entries (entries missing it skipped)."""
    return [
        float(entry["results"][case]["throughput"])
        for entry in entries
        if case in entry["results"]
    ]


def render_history_lines(
    entries: List[Dict[str, Any]],
    case: Optional[str] = None,
    last: Optional[int] = None,
) -> List[str]:
    """One line per entry: sha, date, profile, per-case throughputs."""
    if not entries:
        return ["history: no entries"]
    if last is not None:
        entries = entries[-last:]
    names = [case] if case else case_names(entries)
    lines = [
        f"{'sha':<14} {'created':<21} {'profile':<8} "
        + " ".join(f"{name:>18}" for name in names)
    ]
    for entry in entries:
        cells = []
        for name in names:
            result = entry["results"].get(name)
            cells.append(
                f"{result['throughput']:>18.1f}" if result else f"{'-':>18}"
            )
        created = str(entry.get("created", ""))[:19]
        lines.append(
            f"{short_sha(_entry_provenance(entry)):<14} {created:<21} "
            f"{entry.get('profile', ''):<8} " + " ".join(cells)
        )
    return lines


def render_trend_lines(entries: List[Dict[str, Any]]) -> List[str]:
    """Per-case trajectory: sparkline, first→last ratio, extrema."""
    from repro.sim.reporting import sparkline

    if not entries:
        return ["trend: no history entries"]
    lines = []
    for name in case_names(entries):
        series = case_series(entries, name)
        if not series:
            continue
        first, latest = series[0], series[-1]
        ratio = latest / first if first > 0 else float("inf")
        lines.append(
            f"{name:<24} {sparkline(series):<20} "
            f"n={len(series)} first={first:.1f} last={latest:.1f} "
            f"last/first={ratio:.2f}"
        )
    return lines


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_history(
    entries: List[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = 5,
) -> Tuple[Optional[Comparison], List[str]]:
    """Judge the newest entry against its predecessors.

    The baseline for each case is the *median* throughput over the last
    ``window`` prior entries — one anomalously fast historical run cannot
    permanently fail the gate, and one anomalously slow one cannot mask a
    real regression.  Phase breakdowns are taken from the most recent
    prior entry that has them, so attribution works on the check output
    exactly like a baseline diff.  Returns ``(comparison, lines)``;
    ``comparison`` is None when fewer than two entries exist.
    """
    if len(entries) < 2:
        return None, ["check-history: fewer than two entries; nothing to judge"]
    *prior, newest = entries
    window_entries = prior[-window:]
    baseline_results: Dict[str, Any] = {}
    for name in case_names(window_entries):
        series = case_series(window_entries, name)
        if not series:
            continue
        phases: Dict[str, float] = {}
        wall = 0.0
        unit = "ops/s"
        for entry in reversed(window_entries):
            result = entry["results"].get(name)
            if result is None:
                continue
            wall = float(result.get("wall_seconds", 0.0))
            unit = result.get("unit", unit)
            if result.get("phases"):
                phases = dict(result["phases"])
                break
        baseline_results[name] = {
            "name": name,
            "throughput": _median(series),
            "wall_seconds": wall,
            "unit": unit,
            "phases": phases,
        }
    baseline = _pseudo_artifact(window_entries[-1])
    baseline["results"] = baseline_results
    comparison = compare(baseline, _pseudo_artifact(newest), threshold)
    lines = [
        f"check-history: newest entry vs median of last "
        f"{len(window_entries)} (threshold {threshold:.0%})"
    ]
    lines.extend(comparison.report_lines())
    return comparison, lines
