"""Cachet-style replication: user data stored inside the DHT.

Cachet [10] "replicates the data of users within a distributed hash table".
Availability is high (the DHT re-replicates), but — as Sec. 2 argues — the
approach pays for it in churn traffic: every departure transfers the
departing node's stored data to other DHT members, and the replica count is
not minimized, inflating the synchronization overhead.

The model captures exactly those costs: ``replication_factor`` DHT
replicas per data item, re-replication bytes proportional to churn events,
and availability limited only by simultaneous failure of all replica
holders during the repair window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class CachetModel:
    """Analytic simulation of DHT-resident replication."""

    #: DHT successor-list replication factor (Cachet uses Kademlia-style
    #: redundancy; a common setting is 5-10 replicas per item).
    replication_factor: int = 8
    #: Average profile size in bytes for churn-traffic accounting (the
    #: Sec. 7 measurement: ~10 MB per profile).
    profile_size_bytes: float = 10e6
    #: Epochs the DHT needs to detect a departure and re-replicate.
    repair_delay_epochs: int = 1

    def churn_traffic_bytes(
        self, online_matrix: np.ndarray, stored_per_node: float
    ) -> float:
        """Total re-replication traffic caused by churn.

        Every offline transition of a node holding ``stored_per_node``
        profiles moves that data to other members (Sec. 2: "data often has
        to be transferred from departing nodes to other DHT members").
        """
        transitions = np.logical_and(
            online_matrix[:, :-1], ~online_matrix[:, 1:]
        ).sum()
        return float(transitions) * stored_per_node * self.profile_size_bytes

    def availability_series(
        self, online_matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-epoch availability with DHT repair.

        Each user's item lives on ``replication_factor`` random members;
        after each repair window, offline holders are replaced by random
        online members.  Data is lost for an epoch only if all holders are
        simultaneously offline (rare — hence Cachet's high availability).
        """
        n, n_epochs = online_matrix.shape
        k = min(self.replication_factor, max(1, n - 1))
        holders = rng.integers(0, n, size=(n, k))
        series = np.zeros(n_epochs)
        for t in range(n_epochs):
            online = online_matrix[:, t]
            holder_online = online[holders]
            available = holder_online.any(axis=1) | online
            series[t] = available.mean()
            if t % max(1, self.repair_delay_epochs) == 0:
                online_ids = np.nonzero(online)[0]
                if len(online_ids):
                    # Repair: offline holders are replaced by online members.
                    dead = ~holder_online
                    replacements = rng.choice(online_ids, size=int(dead.sum()))
                    holders[dead] = replacements
        return series

    def summary(
        self,
        online_probabilities: np.ndarray,
        seed: int = 0,
        n_epochs: int = 24 * 7,
    ) -> Dict[str, float]:
        from repro.behavior.online import OnlineModel, sample_timezones

        rng = np.random.default_rng(seed)
        model = OnlineModel(
            base_probabilities=online_probabilities,
            timezone_offsets=sample_timezones(len(online_probabilities), rng),
        )
        matrix = model.generate_matrix(n_epochs, rng)
        series = self.availability_series(matrix, rng)
        stored_per_node = float(self.replication_factor)
        return {
            "availability": float(series.mean()),
            "replicas": float(self.replication_factor),
            "churn_traffic_gb": self.churn_traffic_bytes(matrix, stored_per_node)
            / 1e9,
        }
