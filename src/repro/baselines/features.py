"""Table 1: the DOSN feature matrix.

The paper's Table 1 summarizes which operational features each existing
DOSN provides and shows every competitor lacking in multiple categories
while SOUP supports all of them.  The assessments below encode Sec. 2's
analysis; the bench renders them as the table.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: The feature columns, in Table 1's spirit (Sec. 1's shortcoming list).
FEATURES: Tuple[str, ...] = (
    "high_availability",
    "no_user_discrimination",
    "no_dedicated_servers",
    "low_overhead",
    "adaptive_to_dynamics",
    "attack_resilient",
    "data_encryption",
    "mobile_support",
    "deployable_without_fees",
)

#: system -> set of features it provides, per Sec. 2's analysis.
SYSTEMS: Dict[str, frozenset] = {
    "Diaspora": frozenset(
        {"high_availability", "mobile_support", "low_overhead"}
    ),
    "Vis-a-Vis": frozenset(
        {"high_availability", "data_encryption", "low_overhead"}
    ),
    "Confidant": frozenset(
        {"high_availability", "data_encryption", "low_overhead"}
    ),
    "SuperNova": frozenset(
        {"high_availability", "mobile_support"}
    ),
    "Persona": frozenset(
        {"high_availability", "data_encryption", "low_overhead",
         "no_user_discrimination"}
    ),
    "PeerSoN": frozenset(
        {"no_dedicated_servers", "data_encryption", "deployable_without_fees"}
    ),
    "Cachet": frozenset(
        {"high_availability", "no_dedicated_servers", "data_encryption",
         "no_user_discrimination", "deployable_without_fees"}
    ),
    "Safebook": frozenset(
        {"no_dedicated_servers", "data_encryption", "deployable_without_fees"}
    ),
    "MyZone": frozenset(
        {"no_dedicated_servers", "data_encryption", "deployable_without_fees"}
    ),
    "ProofBook": frozenset(
        {"no_dedicated_servers", "deployable_without_fees"}
    ),
    "SOUP": frozenset(FEATURES),
}


def feature_matrix() -> Dict[str, Dict[str, bool]]:
    """system -> feature -> provided?"""
    return {
        system: {feature: feature in provided for feature in FEATURES}
        for system, provided in SYSTEMS.items()
    }


def table1_rows() -> List[Tuple[str, ...]]:
    """Render Table 1 as rows of (system, '+'/'-' per feature)."""
    rows = []
    for system in sorted(SYSTEMS, key=lambda s: (s == "SOUP", s)):
        provided = SYSTEMS[system]
        rows.append(
            (system,)
            + tuple("+" if feature in provided else "-" for feature in FEATURES)
        )
    return rows


def missing_feature_count(system: str) -> int:
    """How many Table-1 features a system lacks (SOUP: 0)."""
    if system not in SYSTEMS:
        raise KeyError(f"unknown system {system!r}")
    return len(FEATURES) - len(SYSTEMS[system] & frozenset(FEATURES))
