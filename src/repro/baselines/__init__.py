"""Related-work baselines (paper Sec. 2, Table 1, Table 4).

SOUP's evaluation compares against the DOSN replication strategies of
PeerSoN (mutual storage agreements), Safebook (friends-only mirrors) and
Cachet (data in the DHT).  These are analytic/simulation models of each
scheme's *replication behaviour* — enough to regenerate Table 4's
availability/overhead comparison and Table 1's feature matrix — not full
reimplementations of those systems.
"""

from repro.baselines.cachet import CachetModel
from repro.baselines.features import FEATURES, SYSTEMS, feature_matrix, table1_rows
from repro.baselines.peerson import PeerSonModel
from repro.baselines.safebook import SafebookModel

__all__ = [
    "CachetModel",
    "FEATURES",
    "SYSTEMS",
    "feature_matrix",
    "table1_rows",
    "PeerSonModel",
    "SafebookModel",
]
