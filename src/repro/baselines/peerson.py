"""PeerSoN-style replication: mutual storage agreements.

PeerSoN [9] lets "nodes with mutual agreements store data for each other"
with an optimized node-selection algorithm.  Its central weakness, which
Table 4 and Sec. 2 highlight, is that a user's availability depends on her
*own* online time: partners reciprocate, so well-connected/highly-online
users pair with similar peers while rarely-online users end up with
rarely-online partners — "users with an online time of less than eight
hours a day achieve less than 90 % availability".

The model: every node seeks ``replica_count`` mutual partners.  Matching is
assortative — nodes prefer partners of similar online time, as reciprocal
agreements between unequal peers do not form (the highly available side has
no incentive).  Availability is then the probability the owner or any
partner is online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass
class PeerSonModel:
    """Analytic simulation of PeerSoN's partner-based replication."""

    #: Mutual partners per node (the paper's comparison uses 6 replicas).
    replica_count: int = 6
    #: Width of the online-probability band within which agreements form.
    assortativity_band: float = 0.15

    def assign_partners(
        self, online_probabilities: np.ndarray, rng: np.random.Generator
    ) -> List[List[int]]:
        """Pair every node with up to ``replica_count`` similar-p partners.

        Nodes are sorted by online probability; each node's partners are
        drawn from the window of neighbours within the assortativity band
        (falling back to nearest-by-p when the band is sparse).
        """
        n = len(online_probabilities)
        order = np.argsort(online_probabilities, kind="stable")
        position = np.empty(n, dtype=int)
        position[order] = np.arange(n)

        partners: List[List[int]] = [[] for _ in range(n)]
        half_window = max(self.replica_count, int(n * self.assortativity_band / 2))
        for node in range(n):
            pos = position[node]
            lo = max(0, pos - half_window)
            hi = min(n, pos + half_window + 1)
            window = [int(order[i]) for i in range(lo, hi) if order[i] != node]
            count = min(self.replica_count, len(window))
            if count:
                chosen = rng.choice(len(window), size=count, replace=False)
                partners[node] = [window[i] for i in chosen]
        return partners

    def availability_series(
        self,
        online_matrix: np.ndarray,
        partners: List[List[int]],
    ) -> np.ndarray:
        """Per-epoch fraction of nodes whose data is reachable."""
        n, n_epochs = online_matrix.shape
        series = np.zeros(n_epochs)
        partner_index = [np.array(p, dtype=int) for p in partners]
        for t in range(n_epochs):
            online = online_matrix[:, t]
            available = online.copy()
            for node in range(n):
                if not available[node] and len(partner_index[node]):
                    available[node] = bool(online[partner_index[node]].any())
            series[t] = available.mean()
        return series

    def summary(
        self, online_probabilities: np.ndarray, seed: int = 0, n_epochs: int = 24 * 7
    ) -> Dict[str, float]:
        """Steady-state availability/overhead under a given population.

        Used for the Table 4 comparison rows.
        """
        from repro.behavior.online import OnlineModel, sample_timezones

        rng = np.random.default_rng(seed)
        partners = self.assign_partners(online_probabilities, rng)
        model = OnlineModel(
            base_probabilities=online_probabilities,
            timezone_offsets=sample_timezones(len(online_probabilities), rng),
        )
        matrix = model.generate_matrix(n_epochs, rng)
        series = self.availability_series(matrix, partners)
        per_node = np.array(
            [
                float(
                    np.logical_or(
                        matrix[node],
                        matrix[partners[node]].any(axis=0)
                        if partners[node]
                        else False,
                    ).mean()
                )
                for node in range(len(online_probabilities))
            ]
        )
        return {
            "availability": float(series.mean()),
            "availability_min": float(per_node.min()),
            "availability_max": float(per_node.max()),
            "replicas": float(np.mean([len(p) for p in partners])),
        }
