"""Safebook-style replication: mirrors only among direct friends.

Safebook [11] (like MyZone [12] and ProofBook [13]) mirrors each user's
data at a subset of her direct friends, "a user thus depends on her social
contacts for data storage".  Two structural costs limit its availability:

* users with few suitable friends cannot build a strong mirror set;
* data is served through Safebook's *matryoshka* shells — a request must
  traverse an online relay in an outer shell to reach an online mirror, so
  every replica path needs **two** concurrent online nodes.

With the uniform p = 0.3 assumption of Table 4, per-path success is
p² ≈ 0.09 and even 24 friend mirrors only reach ~90 % availability —
exactly the number the paper reports for Safebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx
import numpy as np


@dataclass
class SafebookModel:
    """Analytic simulation of friends-only mirroring."""

    #: Upper bound on mirrors per user (Safebook's shells hold 13-24).
    max_mirrors: int = 24
    #: Minimum online probability for a friend to qualify as a mirror at
    #: all (Safebook requires reachable, reasonably available contacts).
    min_mirror_probability: float = 0.05

    def assign_mirrors(
        self,
        graph: nx.Graph,
        online_probabilities: np.ndarray,
        rng: np.random.Generator,
    ) -> List[List[int]]:
        """Each node mirrors at up to ``max_mirrors`` of its best friends."""
        mirrors: List[List[int]] = []
        for node in range(graph.number_of_nodes()):
            friends = [
                f
                for f in graph.neighbors(node)
                if online_probabilities[f] >= self.min_mirror_probability
            ]
            friends.sort(key=lambda f: -online_probabilities[f])
            mirrors.append(friends[: self.max_mirrors])
        return mirrors

    def assign_relays(
        self, mirrors: List[List[int]], n: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """One matryoshka-shell relay per replica path (a random node —
        the outer-shell contact the request must traverse)."""
        return [
            rng.integers(0, n, size=len(ms)) if ms else np.zeros(0, dtype=int)
            for ms in mirrors
        ]

    def availability_series(
        self,
        online_matrix: np.ndarray,
        mirrors: List[List[int]],
        relays: List[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-epoch availability: a path works iff mirror AND relay are
        online; ``relays=None`` models direct mirror access (no shells)."""
        n, n_epochs = online_matrix.shape
        series = np.zeros(n_epochs)
        mirror_index = [np.array(m, dtype=int) for m in mirrors]
        for t in range(n_epochs):
            online = online_matrix[:, t]
            available = online.copy()
            for node in range(n):
                if available[node] or not len(mirror_index[node]):
                    continue
                paths = online[mirror_index[node]]
                if relays is not None:
                    paths = paths & online[relays[node]]
                available[node] = bool(paths.any())
            series[t] = available.mean()
        return series

    def summary(
        self,
        graph: nx.Graph,
        online_probabilities: np.ndarray,
        seed: int = 0,
        n_epochs: int = 24 * 7,
    ) -> Dict[str, float]:
        """Steady-state availability/overhead for the Table 4 rows."""
        from repro.behavior.online import OnlineModel, sample_timezones

        rng = np.random.default_rng(seed)
        mirrors = self.assign_mirrors(graph, online_probabilities, rng)
        relays = self.assign_relays(mirrors, len(online_probabilities), rng)
        model = OnlineModel(
            base_probabilities=online_probabilities,
            timezone_offsets=sample_timezones(len(online_probabilities), rng),
        )
        matrix = model.generate_matrix(n_epochs, rng)
        series = self.availability_series(matrix, mirrors, relays)
        counts = [len(m) for m in mirrors]
        return {
            "availability": float(series.mean()),
            "replicas": float(np.mean(counts)),
            "replicas_min": float(np.min(counts)),
            "replicas_max": float(np.max(counts)),
            "nodes_without_mirrors": int(sum(1 for c in counts if c == 0)),
        }
