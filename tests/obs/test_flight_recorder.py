"""Flight recorders: Lamport stamping, ring bounds, and crash-safety.

The headline claim under test (the PR's satellite #3): a flight recorder
whose process is SIGKILLed mid-run leaves a file that is still readable,
schema-valid, and missing **at most the one in-flight record** — no gaps,
no corrupted earlier lines.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.obs import (
    FlightRecorder,
    HARNESS_NODE_ID,
    LamportClock,
    LiveObservability,
)
from repro.obs.analysis import TraceReadReport, iter_trace


class TestLamportClock:
    def test_tick_is_monotonic(self):
        clock = LamportClock()
        values = [clock.tick() for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_observe_takes_max_without_incrementing(self):
        clock = LamportClock()
        clock.tick()  # 1
        assert clock.observe(10) == 10
        assert clock.observe(3) == 10  # stale remote never rewinds
        # The next local event is strictly after everything observed.
        assert clock.tick() == 11


class TestFlightRecorder:
    def test_first_record_is_identity_header(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        recorder = FlightRecorder(7, path)
        recorder.close()
        with open(path, "r", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
        assert first["event"] == "node_lifecycle"
        assert first["state"] == "recorder_opened"
        assert first["node"] == 7

    def test_records_are_schema_valid_and_lamport_ordered(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        recorder = FlightRecorder(3, path)
        recorder.emit("retry", kind="push", dest=9)
        recorder.emit("circuit_open", dest=9)
        recorder.close()
        report = TraceReadReport()
        events = list(iter_trace(path, validate=True, report=report))
        assert report.errors == []
        lamports = [event["lamport"] for event in events]
        assert lamports == sorted(lamports)
        assert len(set(lamports)) == len(lamports)
        assert all(event["node"] == 3 for event in events)

    def test_caller_fields_override_recorder_stamp(self, tmp_path):
        # chaos_action / node_lifecycle events name a *subject* node that
        # is not the recorder: the caller's value must win.
        recorder = FlightRecorder(
            HARNESS_NODE_ID, str(tmp_path / "harness.jsonl")
        )
        record = recorder.emit("node_lifecycle", node=42, state="killed")
        recorder.close()
        assert record["node"] == 42

    def test_ring_is_bounded_file_is_not(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        recorder = FlightRecorder(1, path, capacity=8)
        for attempt in range(50):
            recorder.emit("retry", kind="push", attempt=attempt)
        recent = recorder.recent()
        recorder.close()
        assert len(recent) == 8
        assert recent[-1]["attempt"] == 49
        with open(path, "r", encoding="utf-8") as handle:
            assert sum(1 for _ in handle) == 51  # header + every emit


_CHILD_SCRIPT = """
import sys
from repro.obs import FlightRecorder

recorder = FlightRecorder(5, sys.argv[1])
attempt = 0
while True:
    recorder.emit("retry", kind="flood", attempt=attempt)
    attempt += 1
"""


class TestSigkillSurvival:
    def test_kill_mid_run_loses_at_most_one_record(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        env = dict(os.environ)
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, path], env=env
        )
        try:
            # Let it write a meaningful amount, then kill it mid-write.
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if os.path.exists(path) and os.path.getsize(path) > 20_000:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("child never produced flight records")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        # The file is readable and every complete line is schema-valid.
        report = TraceReadReport()
        events = list(iter_trace(path, validate=True, report=report))
        assert len(events) > 50
        assert report.errors == [], report.errors

        # No gaps: record seq is contiguous from the header onward, so
        # nothing in the middle of the file was lost or corrupted.
        seqs = [event["seq"] for event in events]
        assert seqs == list(range(len(events)))

        # At most ONE record is missing: the raw tail is either a clean
        # newline (nothing lost) or a single partial line (the in-flight
        # record), which the reader reports as truncation, not an error.
        with open(path, "rb") as handle:
            raw = handle.read()
        partial_tail = not raw.endswith(b"\n")
        assert partial_tail == report.truncated
        complete_lines = raw.count(b"\n")
        assert len(events) == complete_lines


class TestLiveObservabilityPlane:
    def test_send_recv_pair_orders_across_nodes(self, tmp_path):
        plane = LiveObservability(str(tmp_path), [1, 2])
        ctx = plane.on_send(1, 2, kind="Envelope", size=128)
        plane.on_receive(2, 1, ctx, kind="Envelope")
        plane.close()
        msg_id, send_lamport, _ = ctx
        recv = next(
            event
            for event in iter_trace(plane.recorder_for(2).path)
            if event["event"] == "live_msg_recv"
        )
        assert recv["msg_id"] == msg_id
        assert recv["lamport"] > send_lamport

    def test_scope_routes_tracer_emissions(self, tmp_path):
        plane = LiveObservability(str(tmp_path), [1, 2])
        with plane.scope(2):
            plane.tracer.emit("circuit_open", dest=9)
        plane.tracer.emit("retry", kind="push")  # unscoped -> harness
        plane.close()
        node2 = [e["event"] for e in iter_trace(plane.recorder_for(2).path)]
        harness = [e["event"] for e in iter_trace(plane.harness.path)]
        assert "circuit_open" in node2
        assert "retry" in harness

    def test_epoch_sync_bounds_clock_skew(self, tmp_path):
        plane = LiveObservability(str(tmp_path), [1, 2])
        for _ in range(20):
            plane.recorder_for(1).clock.tick()
        plane.epoch_sync(0)
        assert (
            plane.recorder_for(2).clock.value
            == plane.recorder_for(1).clock.value
        )
        plane.close()
