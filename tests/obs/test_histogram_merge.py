"""Property: metric-snapshot merging is order-independent.

The live observability plane keeps one registry per node and folds the
per-node ``state_dict()`` snapshots into the cluster view at heartbeat
time (satellite #4).  Nodes report in arbitrary order — so the merge must
be a commutative monoid fold: any permutation of the same snapshots
yields identical bucket counts, totals, extrema, and therefore identical
percentiles.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.registry import MetricsRegistry

BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

samples_per_node = st.lists(
    st.floats(min_value=0.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
    max_size=30,
)
node_samples = st.lists(samples_per_node, min_size=1, max_size=6)


def _registry_for(samples):
    registry = MetricsRegistry()
    histogram = registry.histogram("live.msg.latency_s", buckets=BUCKETS)
    for value in samples:
        histogram.observe(value)
        registry.counter("live.msgs.recv").inc()
    return registry


def assert_states_equal(actual, expected):
    """Structural equality of two registry ``state_dict``s, except that a
    histogram's ``total`` (a float sum, whose rounding depends on addition
    order) only needs ulp-level agreement.  Everything quantiles are
    computed from — bucket counts, count, min, max — must match exactly."""
    assert actual["counters"] == expected["counters"]
    assert actual["gauges"] == expected["gauges"]
    assert actual["histograms"].keys() == expected["histograms"].keys()
    for name, histogram in actual["histograms"].items():
        reference = expected["histograms"][name]
        for key in ("buckets", "bucket_counts", "count", "min", "max"):
            assert histogram[key] == reference[key], (name, key)
        assert histogram["total"] == pytest.approx(
            reference["total"], rel=1e-12, abs=1e-12
        )


@settings(max_examples=120, deadline=None)
@given(per_node=node_samples, seed=st.integers(0, 2**32 - 1))
def test_merge_is_order_independent(per_node, seed):
    states = [_registry_for(samples).state_dict() for samples in per_node]
    shuffled = list(states)
    random.Random(seed).shuffle(shuffled)

    forward = MetricsRegistry.merged(states)
    backward = MetricsRegistry.merged(reversed(states))
    permuted = MetricsRegistry.merged(shuffled)

    # The full internal state — bucket counts included — is identical, so
    # *every* derived statistic is too, not just the ones sampled below.
    assert_states_equal(backward.state_dict(), forward.state_dict())
    assert_states_equal(permuted.state_dict(), forward.state_dict())

    reference = forward.histogram("live.msg.latency_s", buckets=BUCKETS)
    for other in (backward, permuted):
        histogram = other.histogram("live.msg.latency_s", buckets=BUCKETS)
        assert histogram.bucket_counts == reference.bucket_counts
        for q in (0.5, 0.9, 0.95, 0.99):
            assert histogram.quantile(q) == reference.quantile(q)


@settings(max_examples=60, deadline=None)
@given(per_node=node_samples)
def test_merge_equals_single_registry_over_union(per_node):
    # Merging per-node snapshots is exact: the same result as observing
    # every sample in one registry (no approximation introduced by the
    # per-node split).
    states = [_registry_for(samples).state_dict() for samples in per_node]
    merged = MetricsRegistry.merged(states)
    union = _registry_for([v for samples in per_node for v in samples])
    assert_states_equal(merged.state_dict(), union.state_dict())
