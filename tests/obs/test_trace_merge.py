"""Merging per-node flight-recorder files into one causal trace.

Satellite #2's contract: the reader merges interleaved per-node files
into a single stream ordered by ``(lamport, node)``, every receive lands
after its matching send, and two files claiming the same node id are
rejected with a clear error rather than silently interleaved.
"""

import shutil

import pytest

from repro.obs import FlightRecorder, LiveObservability, TraceMergeError
from repro.obs.analysis import TraceReadReport, merge_trace_files


def _merged(paths, **kwargs):
    return list(merge_trace_files(paths, **kwargs))


class TestCausalMergeOrder:
    def test_merge_is_sorted_by_lamport_then_node(self, tmp_path):
        plane = LiveObservability(str(tmp_path), [1, 2, 3])
        # Interleave: 1 -> 2 -> 3 -> 1 message chain plus local chatter.
        ctx = plane.on_send(1, 2, kind="A", size=10)
        plane.on_receive(2, 1, ctx, kind="A")
        with plane.scope(3):
            plane.tracer.emit("retry", kind="push")
        ctx = plane.on_send(2, 3, kind="B", size=10)
        plane.on_receive(3, 2, ctx, kind="B")
        ctx = plane.on_send(3, 1, kind="C", size=10)
        plane.on_receive(1, 3, ctx, kind="C")
        plane.close()

        events = _merged(plane.trace_paths())
        keys = [(event["lamport"], event["node"]) for event in events]
        assert keys == sorted(keys)

    def test_every_receive_follows_its_send(self, tmp_path):
        plane = LiveObservability(str(tmp_path), [1, 2])
        for i in range(10):
            sender, receiver = (1, 2) if i % 2 == 0 else (2, 1)
            ctx = plane.on_send(sender, receiver, kind="ping", size=8)
            plane.on_receive(receiver, sender, ctx, kind="ping")
        plane.close()

        position = {}
        for index, event in enumerate(_merged(plane.trace_paths())):
            if event["event"] in ("live_msg_send", "live_msg_recv"):
                position.setdefault(event["msg_id"], {})[event["event"]] = index
        assert len(position) == 10
        for msg_id, spots in position.items():
            assert spots["live_msg_send"] < spots["live_msg_recv"], msg_id

    def test_merge_validates_and_shares_read_report(self, tmp_path):
        plane = LiveObservability(str(tmp_path), [1])
        plane.on_send(1, 9, kind="x", size=1)
        plane.close()
        report = TraceReadReport()
        events = _merged(plane.trace_paths(), validate=True, report=report)
        assert report.events == len(events)
        assert report.errors == []


class TestDuplicateNodeClaims:
    def test_two_files_claiming_one_node_are_rejected(self, tmp_path):
        recorder = FlightRecorder(7, str(tmp_path / "a.jsonl"))
        recorder.emit("retry", kind="push")
        recorder.close()
        shutil.copyfile(tmp_path / "a.jsonl", tmp_path / "b.jsonl")

        with pytest.raises(TraceMergeError) as excinfo:
            _merged([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
        message = str(excinfo.value)
        assert "node id 7" in message
        assert "a.jsonl" in message and "b.jsonl" in message

    def test_headerless_files_never_collide(self, tmp_path):
        # Hand-built / sim traces carry no recorder header: they make no
        # node claim and merge fine even when byte-identical.
        line = '{"v": 1, "seq": 0, "event": "retry", "kind": "push"}\n'
        for name in ("x.jsonl", "y.jsonl"):
            (tmp_path / name).write_text(line, encoding="utf-8")
        events = _merged(
            [str(tmp_path / "x.jsonl"), str(tmp_path / "y.jsonl")]
        )
        assert len(events) == 2

    def test_empty_files_are_skipped(self, tmp_path):
        recorder = FlightRecorder(1, str(tmp_path / "a.jsonl"))
        recorder.close()
        (tmp_path / "empty.jsonl").write_text("", encoding="utf-8")
        events = _merged(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "empty.jsonl")]
        )
        assert [event["node"] for event in events] == [1]
