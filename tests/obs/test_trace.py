"""Tests for the structured event tracer and schema validation."""

import io
import json

import pytest

from repro.obs import (
    EVENT_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    validate_event,
    validate_trace_file,
)


def _lines(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit("replica_pushed", owner=1, mirror=2)  # must not raise

    def test_emit_writes_jsonl(self):
        buf = io.StringIO()
        tracer = Tracer(buf)
        tracer.emit("replica_pushed", owner=1, mirror=2, epoch=3)
        tracer.emit("replica_dropped", owner=1, mirror=2, reason="capacity")
        records = _lines(buf)
        assert len(records) == 2
        assert records[0]["event"] == "replica_pushed"
        assert records[0]["v"] == TRACE_SCHEMA_VERSION
        assert records[0]["seq"] == 0
        assert records[1]["seq"] == 1

    def test_output_is_key_sorted_and_compact(self):
        buf = io.StringIO()
        Tracer(buf).emit("replica_pushed", owner=1, mirror=2)
        line = buf.getvalue().splitlines()[0]
        assert ": " not in line and ", " not in line
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_filter_restricts_events(self):
        buf = io.StringIO()
        tracer = Tracer(buf, event_filter=["retry"])
        tracer.emit("replica_pushed", owner=1, mirror=2)
        tracer.emit("retry", kind="send", dest=9)
        records = _lines(buf)
        assert [r["event"] for r in records] == ["retry"]

    def test_filter_rejects_unknown_event_name(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            Tracer(io.StringIO(), event_filter=["not_an_event"])

    def test_strict_mode_raises_on_bad_event(self):
        tracer = Tracer(io.StringIO(), strict=True)
        with pytest.raises(ValueError, match="missing required field"):
            tracer.emit("replica_pushed", owner=1)  # mirror missing

    def test_close_disables(self):
        buf = io.StringIO()
        tracer = Tracer(buf)
        tracer.close()
        assert not tracer.enabled

    def test_tracing_context_installs_and_restores(self):
        buf = io.StringIO()
        before = get_tracer()
        with tracing(buf) as tracer:
            assert get_tracer() is tracer
            get_tracer().emit("retry", kind="send")
        assert get_tracer() is before
        assert len(_lines(buf)) == 1

    def test_set_tracer_none_installs_disabled(self):
        old = set_tracer(None)
        try:
            assert not get_tracer().enabled
        finally:
            set_tracer(old)

    def test_to_path_writes_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path))
        tracer.emit("circuit_open", dest=5)
        tracer.close()
        assert validate_trace_file(str(path)) == []


class TestValidateEvent:
    def _ok(self, event, **fields):
        record = {"v": TRACE_SCHEMA_VERSION, "seq": 0, "event": event}
        record.update(fields)
        return validate_event(record)

    def test_every_schema_has_required_and_optional(self):
        for name, schema in EVENT_SCHEMAS.items():
            assert set(schema) == {"required", "optional"}, name

    def test_valid_events_for_each_type(self):
        samples = {
            "mirror_selected": dict(owner=1, mirrors=[2, 3], epoch=0),
            "replica_pushed": dict(owner=1, mirror=2, bytes=10, t=1.5),
            "replica_dropped": dict(owner=1, mirror=2, reason="mismatch"),
            "dht_lookup": dict(key=1, responsible=2, hops=[1, 2], delivered=True),
            "retry": dict(kind="send", dest=3, attempt=2),
            "circuit_open": dict(dest=4),
            "failure_declared": dict(peer=5, by=6),
            "repair_round": dict(owner=7, dead=[1], replacements=1),
            "invariant_checked": dict(epoch=3, ok=True, checks=4),
            "update_dropped": dict(target=1, origin=2, reason="buffer-full"),
            "availability_sample": dict(
                epoch=3, population=10, available=9, unavailable=[4]
            ),
            "sweep_task_started": dict(
                task="t0001", key="ab12", pending=3, total=5
            ),
            "sweep_task_finished": dict(
                task="t0001", key="ab12", status="ok", seconds=1.25,
                done=3, total=5,
            ),
            "sweep_interrupted": dict(
                done=3, total=5, running=2, reason="signal"
            ),
            "live_msg_send": dict(
                peer=2, msg_id="m0001", node=1, lamport=4, kind="put",
                bytes=128, t=0.5,
            ),
            "live_msg_recv": dict(
                peer=1, msg_id="m0001", node=2, lamport=5, latency_s=0.002,
                kind="put", t=0.502,
            ),
            "chaos_action": dict(
                kind="kill", epoch=3, nodes=[4, 7], scheduled_epoch=3, t=1.2
            ),
            "node_lifecycle": dict(
                node=4, state="killed", epoch=3, reason="chaos", lamport=9
            ),
            "perf_profile": dict(
                phases={"selection": 0.012, "dropping": 0.003}, epoch=3
            ),
        }
        assert set(samples) == set(EVENT_SCHEMAS)
        for event, fields in samples.items():
            assert self._ok(event, **fields) is None, event

    def test_missing_envelope_field(self):
        assert "envelope" in validate_event({"seq": 0, "event": "retry"})

    def test_unknown_event_type(self):
        assert "unknown event" in self._ok("definitely_not_real")

    def test_wrong_schema_version(self):
        problem = validate_event(
            {"v": 999, "seq": 0, "event": "retry", "kind": "send"}
        )
        assert "version" in problem

    def test_missing_required_field(self):
        assert "missing required field" in self._ok("replica_dropped", owner=1, mirror=2)

    def test_wrong_required_type(self):
        problem = self._ok("replica_dropped", owner="x", mirror=2, reason="r")
        assert "wrong type" in problem

    def test_bool_does_not_pass_as_int(self):
        problem = self._ok("replica_pushed", owner=True, mirror=2)
        assert "wrong type" in problem

    def test_non_object_line(self):
        assert validate_event([1, 2]) is not None


def test_validate_trace_file_reports_line_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    good = json.dumps(
        {"v": TRACE_SCHEMA_VERSION, "seq": 0, "event": "circuit_open", "dest": 1}
    )
    path.write_text(good + "\nnot json\n" + good + "\n")
    errors = validate_trace_file(str(path))
    assert len(errors) == 1
    assert errors[0].startswith("line 2:")
