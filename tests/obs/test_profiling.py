"""Tests for the profiling hooks."""

import time

from repro.obs.profiling import PROFILER, Profiler, _NULL_SPAN


class TestProfiler:
    def test_disabled_span_is_shared_null_span(self):
        profiler = Profiler()
        assert profiler.span("anything") is _NULL_SPAN
        with profiler.span("anything"):
            pass
        assert profiler.totals() == {}

    def test_enabled_span_records_time(self):
        profiler = Profiler()
        profiler.enable()
        with profiler.span("work"):
            time.sleep(0.002)
        totals = profiler.totals()
        assert totals["work"] >= 0.002
        assert profiler.counts()["work"] == 1

    def test_record_accumulates(self):
        profiler = Profiler()
        profiler.record("phase", 0.5)
        profiler.record("phase", 0.25)
        assert profiler.totals()["phase"] == 0.75
        assert profiler.counts()["phase"] == 2

    def test_reset(self):
        profiler = Profiler()
        profiler.record("phase", 1.0)
        profiler.reset()
        assert profiler.totals() == {}

    def test_report_lines_empty(self):
        assert Profiler().report_lines() == ["profile: no spans recorded"]

    def test_report_lines_shares(self):
        profiler = Profiler()
        profiler.record("outer", 2.0)
        profiler.record("inner", 1.0)
        lines = profiler.report_lines(top_level="outer")
        assert "outer" in lines[1]  # sorted widest first
        assert "100.0%" in lines[1]
        assert "50.0%" in lines[2]

    def test_report_lines_unknown_top_level_falls_back(self):
        profiler = Profiler()
        profiler.record("only", 1.0)
        lines = profiler.report_lines(top_level="missing")
        assert "100.0%" in lines[1]

    def test_global_profiler_disabled_by_default(self):
        assert not PROFILER.enabled
