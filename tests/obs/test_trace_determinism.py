"""Trace determinism and schema coverage over real simulator runs.

The tracing contract: traces are pure functions of (scenario, seed) —
two runs with the same seed must produce byte-identical JSONL, and every
emitted line must validate against the event schemas.
"""

import io
import json

from repro.obs import EVENT_SCHEMAS, tracing, validate_event
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig


def _traced_run(**overrides) -> str:
    params = dict(scale=0.02, n_days=1, seed=11, check_invariants=True)
    params.update(overrides)
    config = ScenarioConfig(**params)
    buf = io.StringIO()
    with tracing(buf, strict=True):
        run_scenario(config)
    return buf.getvalue()


def test_same_seed_runs_are_byte_identical():
    first = _traced_run()
    second = _traced_run()
    assert first == second
    assert len(first) > 0


def test_different_seeds_diverge():
    assert _traced_run() != _traced_run(seed=12)


def test_every_line_validates_and_seq_is_monotonic():
    lines = _traced_run().splitlines()
    assert lines
    for number, line in enumerate(lines):
        record = json.loads(line)
        assert validate_event(record) is None, f"line {number}: {line[:120]}"
        assert record["seq"] == number


def test_smoke_scenario_covers_engine_event_types():
    # A repair-enabled run with faults exercises the engine-side emitters:
    # selection, placement, drops, failure declarations, repair rounds,
    # retries and invariant checks.
    trace = _traced_run(
        n_days=2,
        repair=True,
        faults="drop_transfer:rate=0.5:from_epoch=4",
    )
    seen = {json.loads(line)["event"] for line in trace.splitlines()}
    expected = {
        "mirror_selected",
        "replica_pushed",
        "replica_dropped",
        "failure_declared",
        "repair_round",
        "retry",
        "invariant_checked",
    }
    missing = expected - seen
    assert not missing, f"events never emitted: {sorted(missing)}"
    assert seen <= set(EVENT_SCHEMAS)


def test_trace_filter_is_deterministic_subset():
    config = ScenarioConfig(scale=0.02, n_days=1, seed=11)
    full_buf, filtered_buf = io.StringIO(), io.StringIO()
    with tracing(full_buf):
        run_scenario(config)
    with tracing(filtered_buf, event_filter=["mirror_selected"]):
        run_scenario(config)
    filtered_events = [
        json.loads(line) for line in filtered_buf.getvalue().splitlines()
    ]
    assert filtered_events
    assert all(r["event"] == "mirror_selected" for r in filtered_events)
    full_selected = [
        json.loads(line)
        for line in full_buf.getvalue().splitlines()
        if json.loads(line)["event"] == "mirror_selected"
    ]
    # Same events in the same order; seq differs (filter renumbers).
    strip = lambda r: {k: v for k, v in r.items() if k != "seq"}
    assert [strip(r) for r in filtered_events] == [strip(r) for r in full_selected]
