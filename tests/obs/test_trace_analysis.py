"""Trace analytics: streaming reader, lifecycles, attribution, anomalies.

The acceptance contract of ``repro.obs.analysis``:

* the streaming reader is gzip-aware, bounded-memory, and tolerant of
  the truncated final line a killed run leaves behind;
* per-(owner, mirror) lifecycle machines reconstruct every transition;
* per-owner unavailability attribution reconciles *exactly* with the
  engine's own availability metric over the same run;
* each anomaly rule fires on its crafted fixture and stays quiet below
  threshold.
"""

import gzip
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.analysis import (
    AnomalyConfig,
    TraceReadReport,
    analyze_trace,
    detect_churn_storms,
    detect_mirror_flapping,
    detect_repair_loops,
    iter_trace,
    owner_timeline,
    render_analysis,
)
from repro.obs.trace import Tracer, validate_trace_file


def lines(*events):
    """Render event dicts as the JSONL lines a Tracer would write."""
    return [
        json.dumps({"v": 1, "seq": seq, **event}, sort_keys=True) + "\n"
        for seq, event in enumerate(events)
    ]


def sample(epoch, unavailable, population=10):
    return {
        "event": "availability_sample",
        "epoch": epoch,
        "population": population,
        "available": population - len(unavailable),
        "unavailable": list(unavailable),
    }


# ----------------------------------------------------------------------
# streaming reader
# ----------------------------------------------------------------------
class TestStreamingReader:
    def test_reads_iterables_paths_and_handles(self, tmp_path):
        text = lines({"event": "retry", "kind": "x", "attempt": 1})
        path = tmp_path / "t.jsonl"
        path.write_text("".join(text))
        for source in (text, str(path), open(path, "r", encoding="utf-8")):
            assert [o["event"] for o in iter_trace(source)] == ["retry"]

    def test_truncated_final_line_is_tolerated_not_an_error(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        body = "".join(lines(sample(0, [1]), sample(1, [1])))
        path.write_text(body + '{"v": 1, "seq": 2, "eve')  # no newline
        report = TraceReadReport()
        events = list(iter_trace(str(path), report=report))
        assert len(events) == 2
        assert report.truncated
        assert report.errors == []

    def test_validate_trace_file_streams_and_flags_truncation(self, tmp_path):
        # Satellite 2 regression: strict validation must run through the
        # streaming reader and report the partial final line as an error.
        path = tmp_path / "killed.jsonl"
        path.write_text("".join(lines(sample(0, []))) + '{"v": 1, "se')
        errors = validate_trace_file(str(path))
        assert len(errors) == 1
        assert "truncated" in errors[0]

    def test_midfile_garbage_is_always_an_error(self):
        source = lines(sample(0, [])) + ["not json\n"] + lines(sample(1, []))
        report = TraceReadReport()
        events = list(iter_trace(source, report=report))
        assert len(events) == 2
        assert not report.truncated
        assert len(report.errors) == 1 and "invalid JSON" in report.errors[0]

    def test_streams_large_trace_from_generator(self):
        # 100k lines through a generator: nothing is materialized, so this
        # passing at all demonstrates the bounded-memory contract.
        def generate():
            for epoch in range(100_000):
                yield json.dumps(sample(epoch, [epoch % 7])) + "\n"

        analysis = analyze_trace(generate())
        assert analysis.report.events == 100_000
        assert analysis.total_unavailable_epochs == 100_000


class TestGzip:
    def _emit(self, path):
        tracer = Tracer.to_path(str(path), strict=True)
        tracer.emit("replica_pushed", owner=1, mirror=2, bytes=10)
        tracer.emit("replica_dropped", owner=1, mirror=2, reason="capacity")
        tracer.close()

    def test_gzip_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        self._emit(path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        events = [o["event"] for o in iter_trace(str(path))]
        assert events == ["replica_pushed", "replica_dropped"]
        assert validate_trace_file(str(path)) == []

    def test_gzip_is_byte_identical_across_writes(self, tmp_path):
        # Satellite 1: same events -> byte-identical .gz (mtime pinned),
        # and decompressing yields exactly the plain-encoding bytes.
        a, b, plain = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz", tmp_path / "c.jsonl"
        self._emit(a)
        self._emit(b)
        self._emit(plain)
        assert a.read_bytes() == b.read_bytes()
        assert gzip.decompress(a.read_bytes()) == plain.read_bytes()

    def test_truncated_gzip_stream_sets_truncated(self, tmp_path):
        whole = tmp_path / "whole.jsonl.gz"
        self._emit(whole)
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(whole.read_bytes()[:-8])  # chop the gzip trailer
        report = TraceReadReport()
        list(iter_trace(str(cut), report=report))
        assert report.truncated


# ----------------------------------------------------------------------
# lifecycle state machines
# ----------------------------------------------------------------------
class TestLifecycles:
    def test_each_transition_is_reconstructed(self):
        analysis = analyze_trace(lines(
            {"event": "replica_pushed", "owner": 1, "mirror": 2, "epoch": 0},
            {"event": "replica_dropped", "owner": 1, "mirror": 2,
             "reason": "capacity", "epoch": 3},
            {"event": "replica_pushed", "owner": 1, "mirror": 2, "epoch": 4},
            {"event": "failure_declared", "by": 1, "peer": 2, "epoch": 7},
            {"event": "repair_round", "owner": 1, "dead": [2],
             "replacements": 1, "epoch": 8},
        ))
        cycle = analysis.lifecycles[(1, 2)]
        assert [t.state for t in cycle.transitions] == [
            "pushed", "dropped", "pushed", "failure_declared", "repaired",
        ]
        assert cycle.state == "repaired"
        assert (cycle.pushes, cycle.drops, cycle.failures, cycle.repairs) == (2, 1, 1, 1)
        assert cycle.drop_reasons == {"capacity": 1}

    def test_counters_stay_exact_when_history_caps(self):
        events = [
            {"event": "replica_pushed", "owner": 1, "mirror": 2, "epoch": e}
            for e in range(300)
        ]
        analysis = analyze_trace(lines(*events))
        cycle = analysis.lifecycles[(1, 2)]
        assert cycle.pushes == 300
        assert len(cycle.transitions) == 256
        assert cycle.truncated_history


# ----------------------------------------------------------------------
# unavailability windows + causal attribution
# ----------------------------------------------------------------------
class TestAttribution:
    def test_window_with_preceding_drop_is_replica_loss(self):
        analysis = analyze_trace(lines(
            {"event": "mirror_selected", "owner": 4, "mirrors": [7], "epoch": 0},
            {"event": "replica_dropped", "owner": 4, "mirror": 7,
             "reason": "withdrawn", "epoch": 1},
            sample(2, [4]),
            sample(3, [4]),
            sample(4, []),
        ))
        windows = analysis.windows_by_owner[4]
        assert len(windows) == 1
        window = windows[0]
        assert (window.start_epoch, window.end_epoch, window.length) == (2, 3, 2)
        assert window.cause == "replica_loss"
        assert [c.event for c in window.causes] == ["replica_dropped"]
        assert analysis.unavailable_epochs_by_owner == {4: 2}

    def test_window_without_events_gets_typed_fallback(self):
        analysis = analyze_trace(lines(
            {"event": "mirror_selected", "owner": 4, "mirrors": [7], "epoch": 0},
            sample(1, [4]),   # selected, nothing dropped -> mirrors_offline
            sample(1, [9]),   # never selected -> no_mirrors_yet
        ))
        assert analysis.windows_by_owner[4][0].cause == "mirrors_offline"
        assert analysis.windows_by_owner[9][0].cause == "no_mirrors_yet"

    def test_lookback_expires_stale_causes(self):
        analysis = analyze_trace(lines(
            {"event": "replica_dropped", "owner": 4, "mirror": 7,
             "reason": "withdrawn", "epoch": 0},
            {"event": "mirror_selected", "owner": 4, "mirrors": [7], "epoch": 1},
            sample(50, [4]),
        ), lookback=10)
        window = analysis.windows_by_owner[4][0]
        assert window.cause == "mirrors_offline"
        assert window.causes == []

    def test_attribution_rows_sorted_worst_first(self):
        analysis = analyze_trace(lines(
            sample(0, [1, 2]), sample(1, [2]), sample(2, [2]),
        ))
        rows = analysis.attribution_rows()
        assert [row.owner for row in rows] == [2, 1]
        assert rows[0].unavailable_epochs == 3
        assert rows[0].windows == 1 and rows[0].longest_window == 3
        assert analysis.total_unavailable_epochs == 4


# ----------------------------------------------------------------------
# anomaly rules
# ----------------------------------------------------------------------
class TestAnomalyRules:
    def test_repair_loop_fires_on_crafted_fixture(self):
        findings = detect_repair_loops({5: [10, 14, 18], 6: [0, 40, 80]})
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "repair_loop"
        assert finding.data["owner"] == 5 and finding.data["repairs"] == 3
        assert finding.epoch == 10

    def test_repair_loop_quiet_below_threshold(self):
        assert detect_repair_loops({5: [0, 11]}) == []
        assert detect_repair_loops({5: [0, 12, 24]}) == []  # too spread out

    def test_churn_storm_merges_overlapping_bursts(self):
        config = AnomalyConfig(churn_storm_drops=10, churn_storm_window=2)
        findings = detect_churn_storms(
            {0: 6, 1: 6, 2: 6, 50: 1, 90: 12}, config
        )
        assert [f.epoch for f in findings] == [0, 90]
        assert findings[0].data["end_epoch"] >= 2
        assert detect_churn_storms({0: 9}, config) == []

    def test_mirror_flapping_threshold(self):
        findings = detect_mirror_flapping({(1, 2): 4, (1, 3): 3})
        assert len(findings) == 1
        assert findings[0].data == {"owner": 1, "mirror": 2, "toggles": 4}

    def test_analyze_trace_fires_repair_loop_end_to_end(self):
        events = [
            {"event": "repair_round", "owner": 5, "dead": [9],
             "replacements": 1, "epoch": epoch}
            for epoch in (10, 14, 18)
        ]
        analysis = analyze_trace(lines(*events))
        assert [f.rule for f in analysis.findings] == ["repair_loop"]

    def test_flapping_counted_from_mirror_selected_toggles(self):
        selections = [[2], [3], [2], [3], [2]]  # mirror 2 toggles 4x
        events = [
            {"event": "mirror_selected", "owner": 1, "mirrors": m, "epoch": i}
            for i, m in enumerate(selections)
        ]
        analysis = analyze_trace(lines(*events))
        flaps = [f for f in analysis.findings if f.rule == "mirror_flapping"]
        assert {f.data["mirror"] for f in flaps} == {2, 3}


# ----------------------------------------------------------------------
# reconciliation against the engine (the headline acceptance criterion)
# ----------------------------------------------------------------------
def _traced_scenario(tmp_path, seed):
    from repro.obs import set_tracer
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    path = tmp_path / f"run-{seed}.jsonl"
    tracer = Tracer.to_path(str(path), strict=True)
    previous = set_tracer(tracer)
    try:
        result = run_scenario(ScenarioConfig(
            dataset="facebook", scale=0.003, n_days=3, seed=seed,
            repair=True, check_invariants=True,
            faults="drop_transfer:rate=0.5:from_epoch=6:until_epoch=30",
        ))
    finally:
        set_tracer(previous)
        tracer.close()
    return path, result


class TestEngineReconciliation:
    def test_attribution_matches_engine_availability_metric(self, tmp_path):
        path, result = _traced_scenario(tmp_path, seed=5)
        analysis = analyze_trace(str(path))
        engine = {int(k): v for k, v in result.unavailable_owner_epochs.items()}
        assert analysis.unavailable_epochs_by_owner == engine
        assert analysis.total_unavailable_epochs == sum(engine.values())
        # The engine ran the same detectors over its in-memory stream.
        trace_counts = {}
        for finding in analysis.findings:
            trace_counts[finding.rule] = trace_counts.get(finding.rule, 0) + 1
        assert trace_counts == result.anomalies
        # And the samples cover every epoch of the availability series,
        # with population - available summing to the attributed total.
        assert analysis.samples == len(result.availability)
        assert (
            analysis.population_epochs - analysis.available_epochs
            == analysis.total_unavailable_epochs
        )

    def test_timeline_and_rendering_cover_the_run(self, tmp_path):
        path, result = _traced_scenario(tmp_path, seed=6)
        analysis = analyze_trace(str(path))
        rendered = "\n".join(render_analysis(analysis))
        assert "unavailability attribution" in rendered
        assert "replica lifecycles" in rendered
        worst = analysis.attribution_rows()[0].owner
        entries = owner_timeline(str(path), worst)
        assert any(e.event == "unavailable" for e in entries)
        unavailable_epochs = sum(
            int(e.summary.split("(")[1].split(" ")[0])
            for e in entries if e.event == "unavailable"
        )
        assert unavailable_epochs == analysis.unavailable_epochs_by_owner[worst]

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_every_window_has_events_or_typed_cause(self, tmp_path_factory, seed):
        # Property: analyze never reports an unavailability window without
        # either a causal event chain or a typed fallback cause.
        tmp_path = tmp_path_factory.mktemp("prop")
        path, _ = _traced_scenario(tmp_path, seed=seed)
        analysis = analyze_trace(str(path))
        for owner, windows in analysis.windows_by_owner.items():
            for window in windows:
                assert window.length >= 1
                if window.causes:
                    assert window.cause == "replica_loss"
                else:
                    assert window.cause in ("mirrors_offline", "no_mirrors_yet")
