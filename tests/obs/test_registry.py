"""Tests for the metrics registry (counters, gauges, histograms, stack)."""

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_registry,
    pop_registry,
    push_registry,
    use_registry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("a.b").value == 3.5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        registry.gauge("g").set(2)
        assert registry.gauge("g").value == 2.0

    def test_create_on_miss_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="another type"):
            registry.gauge("name")
        with pytest.raises(ValueError, match="another type"):
            registry.histogram("name")


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        hist = Histogram("h")
        for value in (1, 5, 10):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 16.0
        assert hist.minimum == 1
        assert hist.maximum == 10
        assert hist.mean == pytest.approx(16 / 3)

    def test_quantile_from_buckets(self):
        hist = Histogram("h", buckets=(1, 2, 4, 8))
        for value in (1, 1, 2, 3, 7):
            hist.observe(value)
        assert hist.quantile(0.5) == 2
        assert hist.quantile(1.0) == 8

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(100.0)
        assert hist.bucket_counts[-1] == 1
        assert hist.quantile(0.5) == 100.0  # falls back to the observed max

    def test_empty_summary(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0.0
        assert summary["mean"] == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=(3, 1))


class TestSnapshots:
    def test_snapshot_scalars_includes_histogram_count_mean(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(4)
        snap = registry.snapshot_scalars()
        assert snap["c"] == 2.0
        assert snap["g"] == 0.5
        assert snap["h.count"] == 1.0
        assert snap["h.mean"] == 4.0

    def test_full_snapshot_has_histogram_summary(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(4)
        snap = registry.snapshot()
        assert snap["h"]["count"] == 1.0
        assert snap["h"]["p50"] == 5.0  # first default bucket bound >= 4

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        for name in ("z", "a", "m"):
            registry.counter(name).inc()
        assert list(registry.snapshot_scalars()) == ["a", "m", "z"]

    def test_names_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        assert registry.names() == ["c", "g"]
        registry.reset()
        assert registry.names() == []


class TestStateDictMerge:
    def test_histogram_state_round_trip(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        for value in (0.5, 3, 100):
            hist.observe(value)
        state = hist.state_dict()
        assert state["count"] == 3
        assert state["total"] == 103.5
        assert state["buckets"] == [1.0, 2.0, 4.0]
        assert sum(state["bucket_counts"]) == 3

        other = Histogram("h", buckets=(1, 2, 4))
        other.merge_state(state)
        assert other.count == hist.count
        assert other.total == hist.total
        assert other.minimum == 0.5 and other.maximum == 100
        assert other.bucket_counts == hist.bucket_counts

    def test_histogram_merge_preserves_quantiles(self):
        # Bucket-level merge keeps quantile fidelity a scalar summary
        # (count/mean) would lose.
        left = Histogram("h", buckets=(1, 2, 4, 8))
        right = Histogram("h", buckets=(1, 2, 4, 8))
        for value in (1, 1, 2):
            left.observe(value)
        for value in (3, 7):
            right.observe(value)
        left.merge_state(right.state_dict())
        assert left.count == 5
        assert left.quantile(0.5) == 2

    def test_histogram_merge_rejects_bucket_mismatch(self):
        left = Histogram("h", buckets=(1, 2))
        right = Histogram("h", buckets=(1, 2, 4))
        with pytest.raises(ValueError, match="bucket"):
            left.merge_state(right.state_dict())

    def test_registry_state_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.25)
        registry.histogram("h", buckets=(1, 2)).observe(1.5)
        state = registry.state_dict()
        assert state["counters"] == {"c": 2.0}
        assert state["gauges"] == {"g": 0.25}
        assert state["histograms"]["h"]["count"] == 1

    def test_registry_merge_accumulates_across_workers(self):
        # Simulates the sweep executor folding per-process metric state
        # back into one registry: counters add, gauges last-write-wins,
        # histograms merge bucket counts.
        merged = MetricsRegistry()
        for seed, gauge_value in ((1, 0.5), (2, 0.75)):
            worker = MetricsRegistry()
            worker.counter("epochs").inc(10)
            worker.gauge("last_seed").set(gauge_value)
            worker.histogram("latency", buckets=(1, 2, 4)).observe(seed)
            merged.merge_state(worker.state_dict())
        assert merged.counter("epochs").value == 20.0
        assert merged.gauge("last_seed").value == 0.75
        assert merged.histogram("latency", buckets=(1, 2, 4)).count == 2

    def test_merge_empty_state_is_noop(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.merge_state({})
        assert registry.counter("c").value == 1.0

    def test_state_dict_round_trips_through_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(2)
        rehydrated = MetricsRegistry()
        rehydrated.merge_state(json.loads(json.dumps(registry.state_dict())))
        assert rehydrated.state_dict() == registry.state_dict()


class TestRegistryStack:
    def test_push_pop_isolates_runs(self):
        base = get_registry()
        pushed = push_registry()
        try:
            assert get_registry() is pushed
            get_registry().counter("only.here").inc()
        finally:
            assert pop_registry() is pushed
        assert get_registry() is base
        assert "only.here" not in base.names()

    def test_cannot_pop_process_registry(self):
        with pytest.raises(RuntimeError):
            while True:  # drain anything leaked, then hit the bottom
                pop_registry()

    def test_use_registry_context(self):
        with use_registry() as registry:
            assert get_registry() is registry
        assert get_registry() is not registry

    def test_use_registry_accepts_existing(self):
        mine = MetricsRegistry()
        with use_registry(mine) as registry:
            assert registry is mine
            get_registry().counter("k").inc()
        assert mine.counter("k").value == 1.0
