"""Tests for the metrics registry (counters, gauges, histograms, stack)."""

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_registry,
    pop_registry,
    push_registry,
    use_registry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("a.b").value == 3.5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        registry.gauge("g").set(2)
        assert registry.gauge("g").value == 2.0

    def test_create_on_miss_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="another type"):
            registry.gauge("name")
        with pytest.raises(ValueError, match="another type"):
            registry.histogram("name")


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        hist = Histogram("h")
        for value in (1, 5, 10):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 16.0
        assert hist.minimum == 1
        assert hist.maximum == 10
        assert hist.mean == pytest.approx(16 / 3)

    def test_quantile_from_buckets(self):
        hist = Histogram("h", buckets=(1, 2, 4, 8))
        for value in (1, 1, 2, 3, 7):
            hist.observe(value)
        assert hist.quantile(0.5) == 2
        assert hist.quantile(1.0) == 8

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(100.0)
        assert hist.bucket_counts[-1] == 1
        assert hist.quantile(0.5) == 100.0  # falls back to the observed max

    def test_empty_summary(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0.0
        assert summary["mean"] == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=(3, 1))


class TestSnapshots:
    def test_snapshot_scalars_includes_histogram_count_mean(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(4)
        snap = registry.snapshot_scalars()
        assert snap["c"] == 2.0
        assert snap["g"] == 0.5
        assert snap["h.count"] == 1.0
        assert snap["h.mean"] == 4.0

    def test_full_snapshot_has_histogram_summary(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(4)
        snap = registry.snapshot()
        assert snap["h"]["count"] == 1.0
        assert snap["h"]["p50"] == 5.0  # first default bucket bound >= 4

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        for name in ("z", "a", "m"):
            registry.counter(name).inc()
        assert list(registry.snapshot_scalars()) == ["a", "m", "z"]

    def test_names_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        assert registry.names() == ["c", "g"]
        registry.reset()
        assert registry.names() == []


class TestRegistryStack:
    def test_push_pop_isolates_runs(self):
        base = get_registry()
        pushed = push_registry()
        try:
            assert get_registry() is pushed
            get_registry().counter("only.here").inc()
        finally:
            assert pop_registry() is pushed
        assert get_registry() is base
        assert "only.here" not in base.names()

    def test_cannot_pop_process_registry(self):
        with pytest.raises(RuntimeError):
            while True:  # drain anything leaked, then hit the bottom
                pop_registry()

    def test_use_registry_context(self):
        with use_registry() as registry:
            assert get_registry() is registry
        assert get_registry() is not registry

    def test_use_registry_accepts_existing(self):
        mine = MetricsRegistry()
        with use_registry(mine) as registry:
            assert registry is mine
            get_registry().counter("k").inc()
        assert mine.counter("k").value == 1.0
