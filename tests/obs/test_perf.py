"""The performance observability plane: nesting, exports, merge, tracing.

Covers the phase-timer contracts the rest of the PR leans on:

* spans nest into folded paths, and leaf/exclusive aggregations are
  consistent with each other;
* accumulator merging is an order-independent fold (property-tested, the
  same invariant the metrics registry guarantees);
* the exporters (folded stacks, Chrome trace, phase breakdown) emit the
  formats their consumers parse;
* enabling phase timers without ``PROFILER.trace`` leaves a structured
  trace byte-identical, while opting in emits schema-valid
  ``perf_profile`` events.
"""

import json
import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Tracer, set_tracer, validate_trace_file
from repro.obs.perf import (
    PhaseReport,
    capture_phases,
    chrome_trace,
    folded_lines,
    phase_breakdown,
    phase_shares,
)
from repro.obs.profiling import PROFILER, Profiler


def _busy(seconds: float = 0.0) -> None:
    if seconds:
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            pass


def _nested_profiler() -> Profiler:
    profiler = Profiler()
    profiler.enable()
    with profiler.span("engine.epoch"):
        with profiler.span("engine.selection_round"):
            with profiler.span("engine.scoring"):
                _busy(0.001)
            with profiler.span("engine.dropping"):
                _busy(0.002)
        with profiler.span("engine.measure"):
            _busy(0.0005)
    profiler.disable()
    return profiler


class TestNesting:
    def test_folded_paths_follow_the_span_stack(self):
        profiler = _nested_profiler()
        folded = profiler.folded()
        assert set(folded) == {
            "engine.epoch",
            "engine.epoch;engine.selection_round",
            "engine.epoch;engine.selection_round;engine.scoring",
            "engine.epoch;engine.selection_round;engine.dropping",
            "engine.epoch;engine.measure",
        }
        assert all(wall > 0.0 for wall in folded.values())

    def test_totals_aggregate_by_leaf(self):
        profiler = _nested_profiler()
        totals = profiler.totals()
        assert set(totals) == {
            "engine.epoch",
            "engine.selection_round",
            "engine.scoring",
            "engine.dropping",
            "engine.measure",
        }
        # The root span contains everything else.
        assert totals["engine.epoch"] >= totals["engine.selection_round"]
        assert profiler.counts()["engine.epoch"] == 1

    def test_self_times_sum_to_root_total(self):
        profiler = _nested_profiler()
        self_times = profiler.self_times()
        root = profiler.folded()["engine.epoch"]
        assert sum(self_times.values()) == pytest.approx(root, rel=1e-9)
        # Exclusive time of a leaf equals its inclusive time.
        leaf = "engine.epoch;engine.selection_round;engine.dropping"
        assert self_times[leaf] == pytest.approx(
            profiler.folded()[leaf], rel=1e-9
        )

    def test_disabled_span_records_nothing(self):
        profiler = Profiler()
        with profiler.span("never"):
            pass
        assert profiler.folded() == {}

    def test_epoch_buckets(self):
        profiler = Profiler()
        profiler.enable()
        for epoch in (0, 1):
            profiler.set_epoch(epoch)
            with profiler.span("engine.epoch"):
                with profiler.span("engine.dropping"):
                    _busy(0.0005)
        profiler.set_epoch(None)
        with profiler.span("engine.epoch"):
            pass  # unbucketed
        profiler.disable()
        assert profiler.epochs() == [0, 1]
        phases = profiler.epoch_phases(0)
        assert set(phases) == {"engine.epoch", "engine.dropping"}
        assert phases["engine.dropping"] > 0.0
        assert profiler.epoch_phases(7) == {}


class TestExports:
    def test_folded_lines_parse_as_path_and_micros(self):
        lines = folded_lines(_nested_profiler())
        assert lines
        for line in lines:
            path, micros = line.rsplit(" ", 1)
            assert path
            assert int(micros) > 0
        paths = [line.rsplit(" ", 1)[0] for line in lines]
        assert "engine.epoch;engine.selection_round;engine.dropping" in paths

    def test_chrome_trace_from_recorded_events(self):
        profiler = Profiler()
        profiler.enable()
        profiler.record_events = True
        with profiler.span("engine.epoch"):
            with profiler.span("engine.scoring"):
                _busy(0.0005)
        profiler.disable()
        document = chrome_trace(profiler)
        events = document["traceEvents"]
        assert len(events) == 2
        # Children finish (and are recorded) before their parents.
        assert events[0]["name"] == "engine.scoring"
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert event["args"]["stack"].endswith(event["name"])
        # The document survives a JSON round-trip (what the file export does).
        assert json.loads(json.dumps(document)) == document

    def test_chrome_trace_without_events_is_valid_and_empty(self):
        assert chrome_trace(Profiler()) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_phase_breakdown_uses_short_names_and_self_times(self):
        profiler = _nested_profiler()
        phases = phase_breakdown(profiler)
        assert set(phases) == {
            "epoch", "selection_round", "scoring", "dropping", "measure",
        }
        assert sum(phases.values()) == pytest.approx(
            profiler.folded()["engine.epoch"], rel=1e-9
        )

    def test_phase_shares_normalize(self):
        shares = phase_shares({"a": 1.0, "b": 3.0})
        assert shares == {"a": 0.25, "b": 0.75}
        assert phase_shares({}) == {}
        assert phase_shares({"a": 0.0}) == {}


class TestCapturePhases:
    def test_report_is_populated(self):
        with capture_phases() as report:
            assert isinstance(report, PhaseReport)
            with PROFILER.span("engine.epoch"):
                with PROFILER.span("engine.dropping"):
                    _busy(0.0005)
        assert set(report.phases) == {"epoch", "dropping"}
        assert "engine.epoch;engine.dropping" in report.folded
        assert report.state["counts"]["engine.epoch"] == 1

    def test_outer_session_is_isolated_and_restored(self):
        PROFILER.reset()
        PROFILER.enable()
        PROFILER.trace = True
        try:
            with PROFILER.span("outer.phase"):
                _busy(0.0002)
            with capture_phases() as report:
                assert not PROFILER.trace
                assert PROFILER.folded() == {}  # clean slate inside
                with PROFILER.span("inner.phase"):
                    _busy(0.0002)
            # Inner spans stayed out of the outer session and vice versa.
            assert set(report.phases) == {"phase"}
            assert "inner.phase" not in PROFILER.folded()
            assert "outer.phase" in PROFILER.folded()
            assert PROFILER.enabled and PROFILER.trace
        finally:
            PROFILER.disable()
            PROFILER.trace = False
            PROFILER.reset()


# --- order-independent merge (sweep workers report in any order) ----------

PHASE_NAMES = ("engine.epoch", "engine.dropping", "net.deliver", "crypto.sign")

worker_records = st.lists(
    st.tuples(
        st.sampled_from(PHASE_NAMES),
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=20,
)
sweep_states = st.lists(worker_records, min_size=1, max_size=6)


def _worker_state(records):
    profiler = Profiler()
    for name, elapsed in records:
        profiler.record(name, elapsed)
    return profiler.state_dict()


def assert_profiler_states_equal(actual, expected):
    """Counts merge exactly; wall/CPU are float sums whose rounding depends
    on addition order, so they only need ulp-level agreement."""
    assert actual["counts"] == expected["counts"]
    for key in ("wall", "cpu"):
        assert actual[key].keys() == expected[key].keys(), key
        for path, value in actual[key].items():
            assert value == pytest.approx(
                expected[key][path], rel=1e-12, abs=1e-12
            ), (key, path)


@settings(max_examples=120, deadline=None)
@given(per_worker=sweep_states, seed=st.integers(0, 2**32 - 1))
def test_merge_is_order_independent(per_worker, seed):
    states = [_worker_state(records) for records in per_worker]
    shuffled = list(states)
    random.Random(seed).shuffle(shuffled)

    forward = Profiler.merged(states)
    backward = Profiler.merged(reversed(states))
    permuted = Profiler.merged(shuffled)

    assert_profiler_states_equal(backward.state_dict(), forward.state_dict())
    assert_profiler_states_equal(permuted.state_dict(), forward.state_dict())


@settings(max_examples=60, deadline=None)
@given(per_worker=sweep_states)
def test_merge_equals_single_profiler_over_union(per_worker):
    states = [_worker_state(records) for records in per_worker]
    merged = Profiler.merged(states)
    union = _worker_state(
        [record for records in per_worker for record in records]
    )
    assert_profiler_states_equal(merged.state_dict(), union)


# --- the perf_profile trace event -----------------------------------------


def _run_traced(trace_path, enable_profiler=False, profile_trace=False):
    from repro.graphs.datasets import generate_dataset
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(scale=0.004, n_days=1, seed=5)
    graph = generate_dataset(
        config.dataset, scale=config.scale, seed=config.seed
    )
    if enable_profiler:
        PROFILER.reset()
        PROFILER.enable()
        PROFILER.trace = profile_trace
    tracer = Tracer.to_path(str(trace_path))
    set_tracer(tracer)
    try:
        run_scenario(config, graph)
    finally:
        set_tracer(None)
        tracer.close()
        if enable_profiler:
            PROFILER.disable()
            PROFILER.trace = False
            PROFILER.reset()


def test_phase_timers_without_trace_flag_leave_trace_bytes_identical(tmp_path):
    plain = tmp_path / "plain.jsonl"
    timed = tmp_path / "timed.jsonl"
    _run_traced(plain)
    _run_traced(timed, enable_profiler=True)
    assert plain.read_bytes(), "baseline run produced an empty trace"
    assert plain.read_bytes() == timed.read_bytes()


def test_profile_trace_emits_schema_valid_perf_profile_events(tmp_path):
    path = tmp_path / "profiled.jsonl"
    _run_traced(path, enable_profiler=True, profile_trace=True)
    assert validate_trace_file(str(path)) == []
    events = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if '"perf_profile"' in line
    ]
    assert events, "no perf_profile events emitted"
    epochs = [event["epoch"] for event in events]
    assert epochs == sorted(set(epochs)), "one event per epoch, in order"
    for event in events:
        assert event["phases"]
        assert all(wall >= 0.0 for wall in event["phases"].values())
