"""The perf-regression harness: artifacts, baseline diffs, and the CLI.

The timing-sensitive test injects a sleep into a synthetic benchmark and
asserts ``soup bench --check`` trips on it — real benchmarks are too slow
(and too noisy) to regress on purpose in CI.
"""

import json
import time

import pytest

from repro import cli
from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    BenchResult,
    attribute_phases,
    build_artifact,
    compare,
    load_artifact,
    register,
    resolve_profile,
    run_suite,
    validate_artifact,
    write_artifact,
)
from repro.bench import suite as suite_module


def _result(name, throughput, wall=1.0, phases=None):
    return BenchResult(
        name=name, wall_seconds=wall, throughput=throughput, unit="ops/s",
        phases=phases or {},
    )


# --- artifacts ------------------------------------------------------------


def test_artifact_round_trip(tmp_path):
    artifact = build_artifact(
        [_result("a", 100.0), _result("b", 5.0, wall=0.25)],
        profile="smoke",
        seed=5,
        created="2026-08-08T00:00:00+00:00",
    )
    path = tmp_path / "BENCH_smoke.json"
    write_artifact(artifact, str(path))
    loaded = load_artifact(str(path))
    assert loaded == artifact
    assert loaded["schema"] == BENCH_SCHEMA
    assert set(loaded["results"]) == {"a", "b"}
    assert loaded["results"]["b"]["wall_seconds"] == 0.25


@pytest.mark.parametrize(
    "mutate",
    [
        lambda a: a.__setitem__("schema", "soup-bench/v0"),
        lambda a: a.pop("results"),
        lambda a: a["results"]["a"].pop("throughput"),
        lambda a: a["results"]["a"].__setitem__("wall_seconds", -1.0),
    ],
)
def test_validate_rejects_malformed_artifacts(mutate):
    artifact = build_artifact([_result("a", 100.0)], profile="smoke", seed=5)
    mutate(artifact)
    with pytest.raises(ValueError):
        validate_artifact(artifact)


def test_compare_flags_only_regressions_beyond_threshold():
    baseline = build_artifact(
        [_result("fast", 100.0), _result("slow", 10.0), _result("gone", 1.0)],
        profile="smoke",
        seed=5,
    )
    current = build_artifact(
        # fast dropped 25% (within a 30% threshold), slow dropped 50%.
        [_result("fast", 75.0), _result("slow", 5.0), _result("new", 2.0)],
        profile="smoke",
        seed=5,
    )
    comparison = compare(baseline, current, threshold=0.30)
    assert [row.name for row in comparison.regressions] == ["slow"]
    assert not comparison.ok
    assert comparison.only_in_baseline == ["gone"]
    assert comparison.only_in_current == ["new"]
    # At a looser threshold the same diff is clean.
    assert compare(baseline, current, threshold=0.60).ok
    with pytest.raises(ValueError):
        compare(baseline, current, threshold=1.5)


def test_v1_artifact_still_loads(tmp_path):
    """Committed full-size baselines stay on v1; they must keep loading
    and comparing (without phases/provenance, attribution simply stays
    empty)."""
    v1 = {
        "schema": BENCH_SCHEMA_V1,
        "profile": "smoke",
        "seed": 5,
        "created": "2026-01-01T00:00:00+00:00",
        "host": {},
        "results": {
            "epoch_loop": {
                "name": "epoch_loop",
                "wall_seconds": 1.0,
                "throughput": 100.0,
                "unit": "node-epochs/s",
                "detail": {},
            }
        },
    }
    path = tmp_path / "BENCH_v1.json"
    path.write_text(json.dumps(v1))
    loaded = load_artifact(str(path))
    current = build_artifact([_result("epoch_loop", 40.0)], profile="smoke", seed=5)
    comparison = compare(loaded, current, threshold=0.30)
    assert not comparison.ok
    assert comparison.regressions[0].attributed_phases == ()
    assert comparison.baseline_provenance is None


def test_artifact_carries_git_provenance():
    artifact = build_artifact([_result("a", 1.0)], profile="smoke", seed=5)
    provenance = artifact["provenance"]
    assert set(provenance) >= {"git_sha", "git_dirty", "created"}
    # The test suite runs inside the repo's git checkout.
    assert provenance["git_sha"] is None or len(provenance["git_sha"]) == 40


def test_report_lines_name_the_commits_compared():
    baseline = build_artifact(
        [_result("a", 100.0)], profile="smoke", seed=5,
        provenance={"git_sha": "a" * 40, "git_dirty": False, "created": ""},
    )
    current = build_artifact(
        [_result("a", 90.0)], profile="smoke", seed=5,
        provenance={"git_sha": "b" * 40, "git_dirty": True, "created": ""},
    )
    lines = compare(baseline, current).report_lines()
    assert lines[0] == "baseline aaaaaaa vs current bbbbbbb+dirty"


# --- phase attribution ----------------------------------------------------


def test_attribute_phases_names_the_grown_share():
    attributed, shares = attribute_phases(
        {"dropping": 0.1, "selection": 0.9},
        {"dropping": 1.1, "selection": 0.9},
    )
    assert attributed == ("dropping",)
    base_share, cur_share = shares["dropping"]
    assert base_share == pytest.approx(0.1)
    assert cur_share == pytest.approx(0.55)


def test_attribute_phases_ignores_uniform_slowdown():
    # Everything 3x slower: shares unchanged, nothing clears the bar, and
    # the fallback has no positive growth to name.
    attributed, _ = attribute_phases(
        {"a": 0.2, "b": 0.8}, {"a": 0.6, "b": 2.4}
    )
    assert attributed == ()


def test_attribute_phases_falls_back_to_largest_growth():
    attributed, _ = attribute_phases(
        {"a": 0.50, "b": 0.50}, {"a": 0.52, "b": 0.48}, points=0.5
    )
    assert attributed == ("a",)


def test_attribute_phases_empty_without_breakdowns():
    assert attribute_phases({}, {"a": 1.0}) == ((), {})
    assert attribute_phases({"a": 1.0}, {}) == ((), {})


def test_compare_attributes_only_regressed_rows():
    baseline = build_artifact(
        [
            _result("slow", 100.0, phases={"dropping": 0.1, "selection": 0.9}),
            _result("fine", 100.0, phases={"dropping": 0.1, "selection": 0.9}),
        ],
        profile="smoke",
        seed=5,
    )
    current = build_artifact(
        [
            _result("slow", 40.0, phases={"dropping": 1.6, "selection": 0.9}),
            _result("fine", 99.0, phases={"dropping": 1.6, "selection": 0.9}),
        ],
        profile="smoke",
        seed=5,
    )
    comparison = compare(baseline, current, threshold=0.30)
    by_name = {row.name: row for row in comparison.rows}
    assert by_name["slow"].attributed_phases == ("dropping",)
    assert by_name["fine"].attributed_phases == ()
    joined = "\n".join(comparison.report_lines())
    assert "attributed phase(s): dropping" in joined


# --- suite registry -------------------------------------------------------


def test_standing_suite_is_registered():
    from repro.bench import benchmark_names

    names = benchmark_names()
    for expected in (
        "epoch_loop",
        "simnet_messages",
        "sweep_overhead",
        "crypto_modes",
    ):
        assert expected in names


def test_unknown_benchmark_and_profile_rejected():
    with pytest.raises(KeyError):
        run_suite(resolve_profile("smoke"), ["no_such_bench"])
    with pytest.raises(KeyError):
        resolve_profile("gigantic")


# --- the CLI, end to end --------------------------------------------------


@pytest.fixture
def toy_benchmark():
    """Register a synthetic 'toy' benchmark whose speed the test controls."""
    state = {"sleep": 0.0}

    @register("toy")
    def bench_toy(profile):
        ops = 200
        start = time.perf_counter()
        for _ in range(ops):
            if state["sleep"]:
                time.sleep(state["sleep"] / ops)
        wall = time.perf_counter() - start
        # Guard against a zero-length measurement on the fast path.
        wall = max(wall, 1e-6)
        return BenchResult(
            name="toy", wall_seconds=wall, throughput=ops / wall, unit="ops/s"
        )

    try:
        yield state
    finally:
        suite_module._REGISTRY.pop("toy", None)


def test_bench_cli_check_trips_on_injected_sleep(tmp_path, toy_benchmark, capsys):
    baseline_path = tmp_path / "BENCH_baseline.json"
    current_path = tmp_path / "BENCH_current.json"

    assert cli.main(["bench", "toy", "--out", str(baseline_path)]) == 0
    validate_artifact(json.loads(baseline_path.read_text()))

    # Clean re-run: no regression.
    assert (
        cli.main(
            [
                "bench", "toy",
                "--out", str(current_path),
                "--baseline", str(baseline_path),
                "--check",
            ]
        )
        == 0
    )

    # Inject a sleep; throughput collapses and --check must fail.
    toy_benchmark["sleep"] = 0.2
    assert (
        cli.main(
            [
                "bench", "toy",
                "--out", str(current_path),
                "--baseline", str(baseline_path),
                "--check",
                "--threshold", "0.5",
            ]
        )
        == 4
    )
    out = capsys.readouterr()
    assert "REGRESSION" in out.out


def test_bench_cli_check_requires_baseline(tmp_path, toy_benchmark):
    assert (
        cli.main(
            ["bench", "toy", "--out", str(tmp_path / "b.json"), "--check"]
        )
        == 2
    )


def test_bench_cli_list(capsys):
    assert cli.main(["bench", "--list"]) == 0
    assert "epoch_loop" in capsys.readouterr().out


def test_committed_baseline_is_valid():
    payload = load_artifact("benchmarks/baselines/BENCH_baseline.json")
    assert payload["profile"] == "smoke"
    assert "epoch_loop" in payload["results"]
    assert payload["results"]["epoch_loop"]["phases"], (
        "the committed baseline must carry a phase breakdown so "
        "regressions attribute"
    )


def test_bench_check_attributes_injected_dropping_slowdown(tmp_path, capsys):
    """The acceptance path end to end: slow down only the dropping phase
    (a sleep inside ``ReplicaStore.dropping_score``, which runs inside the
    ``engine.dropping`` span) and ``soup bench --check`` must exit 4
    naming both the case and the phase."""
    from repro.core.dropping import ReplicaStore

    baseline_path = tmp_path / "BENCH_baseline.json"
    current_path = tmp_path / "BENCH_current.json"
    assert cli.main(["bench", "epoch_loop", "--out", str(baseline_path)]) == 0

    original = ReplicaStore.dropping_score

    def slowed(self, owner):
        time.sleep(0.0002)
        return original(self, owner)

    ReplicaStore.dropping_score = slowed
    try:
        code = cli.main(
            [
                "bench", "epoch_loop",
                "--out", str(current_path),
                "--baseline", str(baseline_path),
                "--check",
                "--threshold", "0.5",
            ]
        )
    finally:
        ReplicaStore.dropping_score = original
    captured = capsys.readouterr()
    assert code == 4, captured.out + captured.err
    assert "perf regression: epoch_loop [dropping]" in captured.err
    assert "attributed phase(s): dropping" in captured.out

    current = json.loads(current_path.read_text())
    phases = current["results"]["epoch_loop"]["phases"]
    baseline_phases = json.loads(baseline_path.read_text())[
        "results"]["epoch_loop"]["phases"]
    dropping_share = phases["dropping"] / sum(phases.values())
    baseline_share = baseline_phases["dropping"] / sum(baseline_phases.values())
    assert dropping_share > baseline_share + 0.05
