"""The perf-regression harness: artifacts, baseline diffs, and the CLI.

The timing-sensitive test injects a sleep into a synthetic benchmark and
asserts ``soup bench --check`` trips on it — real benchmarks are too slow
(and too noisy) to regress on purpose in CI.
"""

import json
import time

import pytest

from repro import cli
from repro.bench import (
    BENCH_SCHEMA,
    BenchResult,
    build_artifact,
    compare,
    load_artifact,
    register,
    resolve_profile,
    run_suite,
    validate_artifact,
    write_artifact,
)
from repro.bench import suite as suite_module


def _result(name, throughput, wall=1.0):
    return BenchResult(
        name=name, wall_seconds=wall, throughput=throughput, unit="ops/s"
    )


# --- artifacts ------------------------------------------------------------


def test_artifact_round_trip(tmp_path):
    artifact = build_artifact(
        [_result("a", 100.0), _result("b", 5.0, wall=0.25)],
        profile="smoke",
        seed=5,
        created="2026-08-08T00:00:00+00:00",
    )
    path = tmp_path / "BENCH_smoke.json"
    write_artifact(artifact, str(path))
    loaded = load_artifact(str(path))
    assert loaded == artifact
    assert loaded["schema"] == BENCH_SCHEMA
    assert set(loaded["results"]) == {"a", "b"}
    assert loaded["results"]["b"]["wall_seconds"] == 0.25


@pytest.mark.parametrize(
    "mutate",
    [
        lambda a: a.__setitem__("schema", "soup-bench/v0"),
        lambda a: a.pop("results"),
        lambda a: a["results"]["a"].pop("throughput"),
        lambda a: a["results"]["a"].__setitem__("wall_seconds", -1.0),
    ],
)
def test_validate_rejects_malformed_artifacts(mutate):
    artifact = build_artifact([_result("a", 100.0)], profile="smoke", seed=5)
    mutate(artifact)
    with pytest.raises(ValueError):
        validate_artifact(artifact)


def test_compare_flags_only_regressions_beyond_threshold():
    baseline = build_artifact(
        [_result("fast", 100.0), _result("slow", 10.0), _result("gone", 1.0)],
        profile="smoke",
        seed=5,
    )
    current = build_artifact(
        # fast dropped 25% (within a 30% threshold), slow dropped 50%.
        [_result("fast", 75.0), _result("slow", 5.0), _result("new", 2.0)],
        profile="smoke",
        seed=5,
    )
    comparison = compare(baseline, current, threshold=0.30)
    assert [row.name for row in comparison.regressions] == ["slow"]
    assert not comparison.ok
    assert comparison.only_in_baseline == ["gone"]
    assert comparison.only_in_current == ["new"]
    # At a looser threshold the same diff is clean.
    assert compare(baseline, current, threshold=0.60).ok
    with pytest.raises(ValueError):
        compare(baseline, current, threshold=1.5)


# --- suite registry -------------------------------------------------------


def test_standing_suite_is_registered():
    from repro.bench import benchmark_names

    names = benchmark_names()
    for expected in (
        "epoch_loop",
        "simnet_messages",
        "sweep_overhead",
        "crypto_modes",
    ):
        assert expected in names


def test_unknown_benchmark_and_profile_rejected():
    with pytest.raises(KeyError):
        run_suite(resolve_profile("smoke"), ["no_such_bench"])
    with pytest.raises(KeyError):
        resolve_profile("gigantic")


# --- the CLI, end to end --------------------------------------------------


@pytest.fixture
def toy_benchmark():
    """Register a synthetic 'toy' benchmark whose speed the test controls."""
    state = {"sleep": 0.0}

    @register("toy")
    def bench_toy(profile):
        ops = 200
        start = time.perf_counter()
        for _ in range(ops):
            if state["sleep"]:
                time.sleep(state["sleep"] / ops)
        wall = time.perf_counter() - start
        # Guard against a zero-length measurement on the fast path.
        wall = max(wall, 1e-6)
        return BenchResult(
            name="toy", wall_seconds=wall, throughput=ops / wall, unit="ops/s"
        )

    try:
        yield state
    finally:
        suite_module._REGISTRY.pop("toy", None)


def test_bench_cli_check_trips_on_injected_sleep(tmp_path, toy_benchmark, capsys):
    baseline_path = tmp_path / "BENCH_baseline.json"
    current_path = tmp_path / "BENCH_current.json"

    assert cli.main(["bench", "toy", "--out", str(baseline_path)]) == 0
    validate_artifact(json.loads(baseline_path.read_text()))

    # Clean re-run: no regression.
    assert (
        cli.main(
            [
                "bench", "toy",
                "--out", str(current_path),
                "--baseline", str(baseline_path),
                "--check",
            ]
        )
        == 0
    )

    # Inject a sleep; throughput collapses and --check must fail.
    toy_benchmark["sleep"] = 0.2
    assert (
        cli.main(
            [
                "bench", "toy",
                "--out", str(current_path),
                "--baseline", str(baseline_path),
                "--check",
                "--threshold", "0.5",
            ]
        )
        == 4
    )
    out = capsys.readouterr()
    assert "REGRESSION" in out.out


def test_bench_cli_check_requires_baseline(tmp_path, toy_benchmark):
    assert (
        cli.main(
            ["bench", "toy", "--out", str(tmp_path / "b.json"), "--check"]
        )
        == 2
    )


def test_bench_cli_list(capsys):
    assert cli.main(["bench", "--list"]) == 0
    assert "epoch_loop" in capsys.readouterr().out


def test_committed_baseline_is_valid():
    payload = load_artifact("benchmarks/baselines/BENCH_baseline.json")
    assert payload["profile"] == "smoke"
    assert "epoch_loop" in payload["results"]
